use crate::LinalgError;

/// A dense row-major `f64` matrix.
///
/// This is the workhorse type for explicit sensing matrices (`Φ`, `ΦΨ`) in
/// the greedy solvers and for the small Gram systems solved during
/// least-squares refits. Operator-form solvers (PDHG/ADMM) avoid explicit
/// matrices where possible; `Matrix` exists for the cases where they cannot.
///
/// # Example
///
/// ```
/// use hybridcs_linalg::Matrix;
///
/// # fn main() -> Result<(), hybridcs_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
/// assert_eq!(a.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    ///
    /// # Example
    ///
    /// ```
    /// let z = hybridcs_linalg::Matrix::zeros(2, 3);
    /// assert_eq!(z.shape(), (2, 3));
    /// assert_eq!(z.get(1, 2), 0.0);
    /// ```
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from explicit rows.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] when no rows (or zero-width rows) are
    /// supplied and [`LinalgError::RaggedRows`] when rows differ in length.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self, LinalgError> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(LinalgError::Empty);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != cols {
                return Err(LinalgError::RaggedRows {
                    first: cols,
                    row: i,
                    len: r.len(),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `data.len() != rows*cols`
    /// and [`LinalgError::Empty`] if either dimension is zero.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, LinalgError> {
        if rows == 0 || cols == 0 {
            return Err(LinalgError::Empty);
        }
        if data.len() != rows * cols {
            return Err(LinalgError::DimensionMismatch {
                operation: "from_vec",
                expected: rows * cols,
                actual: data.len(),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Builds a matrix by evaluating `f(row, col)` at every position.
    #[must_use]
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m.set(i, j, f(i, j));
            }
        }
        m
    }

    /// Number of rows.
    #[must_use]
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[must_use]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[must_use]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col]
    }

    /// Sets the element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        self.data[row * self.cols + col] = value;
    }

    /// Borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= nrows()`.
    #[must_use]
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index out of bounds");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= nrows()`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row index out of bounds");
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `j >= ncols()`.
    #[must_use]
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "column index out of bounds");
        (0..self.rows).map(|i| self.get(i, j)).collect()
    }

    /// Flat row-major view of the data.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Matrix–vector product `Ax`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != ncols()`.
    #[must_use]
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.rows];
        self.matvec_into(x, &mut y);
        y
    }

    /// Allocation-free matrix–vector product `out = Ax`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != ncols()` or `out.len() != nrows()`.
    pub fn matvec_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "matvec: length mismatch");
        assert_eq!(out.len(), self.rows, "matvec: output length mismatch");
        for (i, yi) in out.iter_mut().enumerate() {
            *yi = crate::vector::dot(self.row(i), x);
        }
    }

    /// Transposed matrix–vector product `Aᵀx`.
    ///
    /// Runs over rows to stay cache-friendly in the row-major layout.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != nrows()`.
    #[must_use]
    pub fn matvec_transpose(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.cols];
        self.matvec_transpose_into(x, &mut y);
        y
    }

    /// Allocation-free transposed matrix–vector product `out = Aᵀx`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != nrows()` or `out.len() != ncols()`.
    pub fn matvec_transpose_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.rows, "matvec_transpose: length mismatch");
        assert_eq!(
            out.len(),
            self.cols,
            "matvec_transpose: output length mismatch"
        );
        out.fill(0.0);
        for (i, &xi) in x.iter().enumerate() {
            crate::vector::axpy(xi, self.row(i), out);
        }
    }

    /// Matrix–matrix product `AB`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `self.ncols() != other.nrows()`.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix, LinalgError> {
        if self.cols != other.rows {
            return Err(LinalgError::DimensionMismatch {
                operation: "matmul",
                expected: self.cols,
                actual: other.rows,
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self.get(i, k);
                if aik == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out.data[i * other.cols + j] += aik * other.get(k, j);
                }
            }
        }
        Ok(out)
    }

    /// Transpose as a new matrix.
    #[must_use]
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self.get(j, i))
    }

    /// Gram matrix `AᵀA` (symmetric positive semi-definite).
    #[must_use]
    // Upper-triangle accumulation with a mirrored tail; index loops keep
    // the symmetry explicit.
    #[allow(clippy::needless_range_loop)]
    pub fn gram(&self) -> Matrix {
        let mut g = Matrix::zeros(self.cols, self.cols);
        for r in 0..self.rows {
            let row = self.row(r);
            for i in 0..self.cols {
                let ri = row[i];
                if ri == 0.0 {
                    continue;
                }
                for j in i..self.cols {
                    g.data[i * self.cols + j] += ri * row[j];
                }
            }
        }
        // Mirror the upper triangle.
        for i in 0..self.cols {
            for j in 0..i {
                g.data[i * self.cols + j] = g.data[j * self.cols + i];
            }
        }
        g
    }

    /// Extracts the submatrix formed by the given columns, in order.
    ///
    /// Used by greedy solvers to assemble the active-set design matrix.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    #[must_use]
    pub fn select_columns(&self, indices: &[usize]) -> Matrix {
        Matrix::from_fn(self.rows, indices.len(), |i, j| self.get(i, indices[j]))
    }

    /// Frobenius norm `‖A‖_F`.
    #[must_use]
    pub fn frobenius_norm(&self) -> f64 {
        crate::vector::norm2(&self.data)
    }

    /// Maximum absolute element.
    #[must_use]
    pub fn max_abs(&self) -> f64 {
        crate::vector::norm_inf(&self.data)
    }

    /// Consumes the matrix and returns its row-major buffer.
    #[must_use]
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap()
    }

    #[test]
    fn shape_and_access() {
        let m = sample();
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.get(1, 2), 6.0);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(m.col(1), vec![2.0, 5.0]);
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = Matrix::from_rows(&[&[1.0, 2.0], &[1.0]]).unwrap_err();
        assert!(matches!(err, LinalgError::RaggedRows { row: 1, .. }));
    }

    #[test]
    fn from_rows_rejects_empty() {
        assert!(matches!(Matrix::from_rows(&[]), Err(LinalgError::Empty)));
    }

    #[test]
    fn from_vec_checks_len() {
        let err = Matrix::from_vec(2, 2, vec![1.0; 3]).unwrap_err();
        assert!(matches!(err, LinalgError::DimensionMismatch { .. }));
    }

    #[test]
    fn matvec_and_transpose_agree_with_explicit_transpose() {
        let m = sample();
        let x = [1.0, -1.0];
        let via_method = m.matvec_transpose(&x);
        let via_transpose = m.transpose().matvec(&x);
        assert_eq!(via_method, via_transpose);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let m = sample();
        let id = Matrix::identity(3);
        assert_eq!(m.matmul(&id).unwrap(), m);
    }

    #[test]
    fn matmul_dimension_error() {
        let m = sample();
        let err = m.matmul(&sample()).unwrap_err();
        assert!(matches!(err, LinalgError::DimensionMismatch { .. }));
    }

    #[test]
    fn gram_matches_explicit_product() {
        let m = sample();
        let explicit = m.transpose().matmul(&m).unwrap();
        let g = m.gram();
        for i in 0..3 {
            for j in 0..3 {
                assert!((g.get(i, j) - explicit.get(i, j)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn select_columns_reorders() {
        let m = sample();
        let s = m.select_columns(&[2, 0]);
        assert_eq!(s.row(0), &[3.0, 1.0]);
        assert_eq!(s.row(1), &[6.0, 4.0]);
    }

    #[test]
    fn frobenius_norm_known_value() {
        let m = Matrix::from_rows(&[&[3.0], &[4.0]]).unwrap();
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn identity_matvec_is_identity() {
        let id = Matrix::identity(4);
        let x = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(id.matvec(&x), x.to_vec());
    }
}
