//! BLAS-1 style kernels over `&[f64]` slices.
//!
//! These free functions are the hot inner loops of every solver in the
//! workspace. They panic on length mismatches (the mismatch is always a
//! programming error inside a solver, never a data-dependent condition), and
//! the panics are documented per function.

/// Dot product `xᵀy`.
///
/// # Panics
///
/// Panics if `x.len() != y.len()`.
///
/// # Example
///
/// ```
/// let d = hybridcs_linalg::vector::dot(&[1.0, 2.0], &[3.0, 4.0]);
/// assert_eq!(d, 11.0);
/// ```
#[must_use]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// Euclidean norm `‖x‖₂`.
///
/// Computed via a scaled sum of squares so that vectors with large dynamic
/// range do not overflow prematurely.
#[must_use]
pub fn norm2(x: &[f64]) -> f64 {
    let max = x.iter().fold(0.0_f64, |m, v| m.max(v.abs()));
    if max == 0.0 || !max.is_finite() {
        return if max.is_nan() { f64::NAN } else { max };
    }
    let sum: f64 = x.iter().map(|v| (v / max) * (v / max)).sum();
    max * sum.sqrt()
}

/// Manhattan norm `‖x‖₁`.
#[must_use]
pub fn norm1(x: &[f64]) -> f64 {
    x.iter().map(|v| v.abs()).sum()
}

/// Chebyshev norm `‖x‖∞`.
#[must_use]
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
}

/// Squared Euclidean norm `‖x‖₂²` (no scaling; used in inner loops where the
/// values are already normalized).
#[must_use]
pub fn norm2_sq(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum()
}

/// In-place `y ← α·x + y`.
///
/// # Panics
///
/// Panics if `x.len() != y.len()`.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// In-place scaling `x ← α·x`.
pub fn scale(alpha: f64, x: &mut [f64]) {
    for v in x.iter_mut() {
        *v *= alpha;
    }
}

/// Element-wise difference `x − y` as a new vector.
///
/// # Panics
///
/// Panics if `x.len() != y.len()`.
#[must_use]
pub fn sub(x: &[f64], y: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), y.len(), "sub: length mismatch");
    x.iter().zip(y).map(|(a, b)| a - b).collect()
}

/// Element-wise sum `x + y` as a new vector.
///
/// # Panics
///
/// Panics if `x.len() != y.len()`.
#[must_use]
pub fn add(x: &[f64], y: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), y.len(), "add: length mismatch");
    x.iter().zip(y).map(|(a, b)| a + b).collect()
}

/// Euclidean distance `‖x − y‖₂`.
///
/// # Panics
///
/// Panics if `x.len() != y.len()`.
#[must_use]
pub fn dist2(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dist2: length mismatch");
    let mut acc = 0.0;
    for (a, b) in x.iter().zip(y) {
        let d = a - b;
        acc += d * d;
    }
    acc.sqrt()
}

/// Element-wise clamp of `x` into `[lo[i], hi[i]]`, in place.
///
/// This is the projection onto a box and is used directly by the hybrid
/// decoder's bound constraint.
///
/// # Panics
///
/// Panics if the three slices differ in length, or if any `lo[i] > hi[i]`.
pub fn clamp_box(x: &mut [f64], lo: &[f64], hi: &[f64]) {
    assert_eq!(x.len(), lo.len(), "clamp_box: lo length mismatch");
    assert_eq!(x.len(), hi.len(), "clamp_box: hi length mismatch");
    for ((v, &l), &h) in x.iter_mut().zip(lo).zip(hi) {
        assert!(l <= h, "clamp_box: empty interval [{l}, {h}]");
        *v = v.clamp(l, h);
    }
}

/// Mean of the entries; `0.0` for an empty slice.
#[must_use]
pub fn mean(x: &[f64]) -> f64 {
    if x.is_empty() {
        0.0
    } else {
        x.iter().sum::<f64>() / x.len() as f64
    }
}

/// Index and value of the entry with the largest absolute value.
///
/// Returns `None` for an empty slice. Ties resolve to the lowest index,
/// which keeps greedy solvers (OMP/CoSaMP) deterministic.
#[must_use]
pub fn argmax_abs(x: &[f64]) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in x.iter().enumerate() {
        let a = v.abs();
        match best {
            Some((_, b)) if a <= b => {}
            _ => best = Some((i, a)),
        }
    }
    best
}

/// Indices of the `k` entries with the largest absolute values, unordered.
///
/// Used by CoSaMP/IHT support identification. If `k >= x.len()` every index
/// is returned. Ties resolve toward lower indices (via a stable sort on
/// `(-|x|, index)`), keeping the solvers deterministic.
#[must_use]
pub fn top_k_abs_indices(x: &[f64], k: usize) -> Vec<usize> {
    let mut idx = Vec::new();
    top_k_abs_indices_into(x, k, &mut idx);
    idx
}

/// Allocation-free variant of [`top_k_abs_indices`]: fills `idx` with the
/// selected indices, reusing its capacity across calls.
///
/// The comparator `(-|x|, index)` is a total order (no two distinct indices
/// compare equal), so the in-place unstable sort used here selects exactly
/// the same indices as a stable sort would.
pub fn top_k_abs_indices_into(x: &[f64], k: usize, idx: &mut Vec<usize>) {
    idx.clear();
    idx.extend(0..x.len());
    if k >= x.len() {
        return;
    }
    idx.sort_unstable_by(|&a, &b| {
        x[b].abs()
            .partial_cmp(&x[a].abs())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    idx.truncate(k);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_mismatch_panics() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn norm2_matches_naive() {
        let x = [3.0, 4.0];
        assert!((norm2(&x) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn norm2_handles_extreme_scale() {
        let big = 1e200;
        let x = [big, big];
        let n = norm2(&x);
        assert!(n.is_finite());
        assert!((n - big * std::f64::consts::SQRT_2).abs() / n < 1e-12);
    }

    #[test]
    fn norm2_zero_and_empty() {
        assert_eq!(norm2(&[]), 0.0);
        assert_eq!(norm2(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn norms_agree_on_simple_input() {
        let x = [1.0, -2.0, 2.0];
        assert_eq!(norm1(&x), 5.0);
        assert_eq!(norm_inf(&x), 2.0);
        assert!((norm2(&x) - 3.0).abs() < 1e-12);
        assert!((norm2_sq(&x) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn axpy_accumulates() {
        let x = [1.0, 2.0];
        let mut y = [10.0, 20.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0]);
    }

    #[test]
    fn scale_in_place() {
        let mut x = [1.0, -2.0];
        scale(-3.0, &mut x);
        assert_eq!(x, [-3.0, 6.0]);
    }

    #[test]
    fn add_sub_dist_roundtrip() {
        let x = [1.0, 5.0];
        let y = [4.0, 1.0];
        assert_eq!(sub(&x, &y), vec![-3.0, 4.0]);
        assert_eq!(add(&x, &y), vec![5.0, 6.0]);
        assert!((dist2(&x, &y) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn clamp_box_projects() {
        let mut x = [-1.0, 0.5, 3.0];
        clamp_box(&mut x, &[0.0, 0.0, 0.0], &[1.0, 1.0, 1.0]);
        assert_eq!(x, [0.0, 0.5, 1.0]);
    }

    #[test]
    #[should_panic(expected = "empty interval")]
    fn clamp_box_rejects_inverted_bounds() {
        let mut x = [0.0];
        clamp_box(&mut x, &[1.0], &[0.0]);
    }

    #[test]
    fn mean_handles_empty() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
    }

    #[test]
    fn argmax_abs_picks_largest_magnitude() {
        assert_eq!(argmax_abs(&[1.0, -5.0, 3.0]), Some((1, 5.0)));
        assert_eq!(argmax_abs(&[]), None);
    }

    #[test]
    fn argmax_abs_ties_resolve_low_index() {
        assert_eq!(argmax_abs(&[2.0, -2.0]), Some((0, 2.0)));
    }

    #[test]
    fn top_k_selects_largest() {
        let x = [0.1, -9.0, 3.0, 0.0, 5.0];
        let mut got = top_k_abs_indices(&x, 2);
        got.sort_unstable();
        assert_eq!(got, vec![1, 4]);
    }

    #[test]
    fn top_k_saturates_at_len() {
        let x = [1.0, 2.0];
        assert_eq!(top_k_abs_indices(&x, 10).len(), 2);
    }
}
