//! Runtime-dispatched SIMD kernels for the batched decode path.
//!
//! Every kernel here exists in two tiers — a hand-written AVX2 version and
//! a scalar twin — selected once per call by [`simd_enabled`]. The contract
//! is **0 ULP**: for any input, both tiers produce bit-identical output.
//! That holds because each kernel is either
//!
//! * **element-wise** (one multiply/add/divide per output element, no
//!   reduction): IEEE-754 arithmetic is deterministic per element, so
//!   vectorizing across elements cannot change any bit; or
//! * **lane-parallel** ([`dot_lanes`]): the reduction runs *across the
//!   batch dimension* — each lane keeps its own accumulator and sums its
//!   terms in exactly the scalar (ascending-index) order. SIMD widens
//!   over lanes, never over the reduction axis, so no reassociation
//!   occurs.
//!
//! No FMA contraction is used anywhere: products and sums are separate
//! `_mm256_mul_pd` / `_mm256_add_pd` instructions (rustc never contracts
//! float expressions on its own), so `a*b + c` rounds exactly like the
//! scalar code.
//!
//! # Dispatch policy
//!
//! [`simd_enabled`] requires `avx2` **and** `fma` at runtime (the paper's
//! deployment tier; FMA presence implies the modern AVX2 implementations
//! the kernels are tuned for, even though the kernels only emit AVX2
//! instructions). Setting `HYBRIDCS_FORCE_SCALAR=1` pins the scalar tier
//! process-wide — the CI knob that keeps the fallback exercised on AVX2
//! hosts. [`set_override`] flips the tier in-process (benchmarks use it
//! for the SIMD-on/off dimension); forcing SIMD on hardware without AVX2
//! is ignored rather than honored.
//!
//! # Lane reductions stay scalar
//!
//! The per-lane norm helpers ([`norm1_lane`], [`norm2_lane`],
//! [`norm_inf_lane`], [`dist2_lane`], [`dist2_lane_vs`]) are deliberately
//! scalar-only: they replicate the exact fold order of
//! [`vector`](crate::vector) on a strided lane, and the max-based
//! reductions cannot use `_mm256_max_pd` (its NaN semantics — return the
//! second operand — differ from `f64::max`). They run once per
//! convergence check, not per iteration element, so they are not hot.

// The one unsafe surface in this crate: `std::arch` intrinsics behind the
// runtime feature check above.
#![allow(unsafe_code)]

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Environment variable pinning the scalar tier process-wide.
pub const FORCE_SCALAR_ENV: &str = "HYBRIDCS_FORCE_SCALAR";

/// `0` = follow env/hardware, `1` = force scalar, `2` = force SIMD
/// (subject to hardware support).
static OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Hardware support for the AVX2+FMA tier (independent of env/override).
#[must_use]
pub fn simd_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        static AVAILABLE: OnceLock<bool> = OnceLock::new();
        *AVAILABLE.get_or_init(|| {
            std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
        })
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Whether kernels dispatch to the AVX2 tier right now: hardware support,
/// minus the `HYBRIDCS_FORCE_SCALAR=1` environment pin, overridden by any
/// in-process [`set_override`]. Both tiers are bit-identical; this only
/// selects which instructions produce those bits.
#[must_use]
pub fn simd_enabled() -> bool {
    match OVERRIDE.load(Ordering::Relaxed) {
        1 => false,
        2 => simd_available(),
        _ => {
            static ENV_DEFAULT: OnceLock<bool> = OnceLock::new();
            *ENV_DEFAULT.get_or_init(|| {
                let forced_scalar =
                    std::env::var(FORCE_SCALAR_ENV).is_ok_and(|v| v == "1" || v == "true");
                !forced_scalar && simd_available()
            })
        }
    }
}

/// In-process tier override: `Some(false)` forces scalar, `Some(true)`
/// requests SIMD (ignored without hardware support), `None` restores the
/// environment/hardware default. Benchmarks use this for the SIMD-on/off
/// sweep; tests pin tiers explicitly instead (process-global state).
pub fn set_override(tier: Option<bool>) {
    let code = match tier {
        None => 0,
        Some(false) => 1,
        Some(true) => 2,
    };
    OVERRIDE.store(code, Ordering::Relaxed);
}

/// `y += alpha * x`, element-wise — the SIMD twin of
/// [`vector::axpy`](crate::vector::axpy), bit-identical to it for any
/// `alpha` (each element computes `y + alpha*x` exactly like the scalar
/// loop).
///
/// # Panics
///
/// Panics if `x.len() != y.len()`.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    if simd_enabled() {
        // SAFETY: `simd_enabled` implies AVX2 support was detected.
        unsafe { avx::axpy(alpha, x, y) }
    } else {
        scalar::axpy(alpha, x, y);
    }
}

/// `y -= alpha * x`, element-wise (`y - alpha*x` per element, matching the
/// solver's explicit dual-update loops bit-for-bit).
///
/// # Panics
///
/// Panics if `x.len() != y.len()`.
pub fn sub_scaled(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "sub_scaled: length mismatch");
    if simd_enabled() {
        // SAFETY: `simd_enabled` implies AVX2 support was detected.
        unsafe { avx::sub_scaled(alpha, x, y) }
    } else {
        scalar::sub_scaled(alpha, x, y);
    }
}

/// `out = x / divisor`, element-wise (IEEE division is exact per element;
/// this must stay a division — multiplying by a reciprocal would change
/// bits).
///
/// # Panics
///
/// Panics if `x.len() != out.len()`.
pub fn div_by(x: &[f64], divisor: f64, out: &mut [f64]) {
    assert_eq!(x.len(), out.len(), "div_by: length mismatch");
    if simd_enabled() {
        // SAFETY: `simd_enabled` implies AVX2 support was detected.
        unsafe { avx::div_by(x, divisor, out) }
    } else {
        scalar::div_by(x, divisor, out);
    }
}

/// K simultaneous dot products over a column-major panel:
/// `out[lane] = Σ_j v[j] * panel[j*k + lane]` for `lane < k`, each lane
/// accumulated in ascending-`j` order from `0.0` — exactly
/// [`vector::dot`](crate::vector::dot)`(v, lane_j)` bit-for-bit. SIMD runs
/// across lanes (independent accumulators), never across `j`, so no
/// reassociation occurs.
///
/// # Panics
///
/// Panics if `panel.len() != v.len() * k` or `out.len() != k`.
pub fn dot_lanes(panel: &[f64], v: &[f64], k: usize, out: &mut [f64]) {
    assert_eq!(panel.len(), v.len() * k, "dot_lanes: panel shape");
    assert_eq!(out.len(), k, "dot_lanes: output length");
    if simd_enabled() {
        // SAFETY: `simd_enabled` implies AVX2 support was detected.
        unsafe { avx::dot_lanes(panel, v, k, out) }
    } else {
        scalar::dot_lanes(panel, v, k, out);
    }
}

/// `out[j*k + lane] += x[lane] * v[j]` — the lane-parallel rank-1 update
/// behind the batched dense adjoint (`Aᵀ` row accumulation). Per lane this
/// is exactly [`vector::axpy`](crate::vector::axpy)`(x[lane], v, out_lane)`.
///
/// # Panics
///
/// Panics if `out.len() != v.len() * k` or `x.len() != k`.
pub fn rank1_lanes(x: &[f64], v: &[f64], k: usize, out: &mut [f64]) {
    assert_eq!(out.len(), v.len() * k, "rank1_lanes: panel shape");
    assert_eq!(x.len(), k, "rank1_lanes: lane count");
    if simd_enabled() {
        // SAFETY: `simd_enabled` implies AVX2 support was detected.
        unsafe { avx::rank1_lanes(x, v, k, out) }
    } else {
        scalar::rank1_lanes(x, v, k, out);
    }
}

// -- scalar-only per-lane reductions -----------------------------------------
//
// These replicate the exact algorithms of `crate::vector` on one strided
// lane of a column-major panel. They have no SIMD tier on purpose: the
// norm kernels reduce with `f64::max`, whose NaN handling (`max` returns
// the non-NaN operand) differs from `_mm256_max_pd` (returns the second
// operand), and they only run at convergence checks.

/// [`vector::norm1`](crate::vector::norm1) of lane `lane` over the first
/// `len` panel rows.
#[must_use]
pub fn norm1_lane(panel: &[f64], k: usize, lane: usize, len: usize) -> f64 {
    (0..len).map(|i| panel[i * k + lane].abs()).sum()
}

/// [`vector::norm_inf`](crate::vector::norm_inf) of lane `lane` over the
/// first `len` panel rows.
#[must_use]
pub fn norm_inf_lane(panel: &[f64], k: usize, lane: usize, len: usize) -> f64 {
    (0..len).fold(0.0_f64, |m, i| m.max(panel[i * k + lane].abs()))
}

/// [`vector::norm2`](crate::vector::norm2) of lane `lane` over the first
/// `len` panel rows — the same overflow-safe scaled form, fold for fold.
#[must_use]
pub fn norm2_lane(panel: &[f64], k: usize, lane: usize, len: usize) -> f64 {
    let max = (0..len).fold(0.0_f64, |m, i| m.max(panel[i * k + lane].abs()));
    if max == 0.0 || !max.is_finite() {
        let has_nan = (0..len).any(|i| panel[i * k + lane].is_nan());
        return if has_nan { f64::NAN } else { max };
    }
    let sum: f64 = (0..len)
        .map(|i| {
            let r = panel[i * k + lane] / max;
            r * r
        })
        .sum();
    max * sum.sqrt()
}

/// [`vector::dist2`](crate::vector::dist2) between lane `lane` of two
/// same-shape panels.
#[must_use]
pub fn dist2_lane(a: &[f64], b: &[f64], k: usize, lane: usize, len: usize) -> f64 {
    let sum: f64 = (0..len)
        .map(|i| {
            let d = a[i * k + lane] - b[i * k + lane];
            d * d
        })
        .sum();
    sum.sqrt()
}

/// [`vector::dist2`](crate::vector::dist2) between lane `lane` of a panel
/// and a contiguous vector `b` (the per-window measurement slice).
#[must_use]
pub fn dist2_lane_vs(a: &[f64], b: &[f64], k: usize, lane: usize) -> f64 {
    let sum: f64 = b
        .iter()
        .enumerate()
        .map(|(i, &bi)| {
            let d = a[i * k + lane] - bi;
            d * d
        })
        .sum();
    sum.sqrt()
}

/// Copies lane `lane` of a column-major panel into a contiguous vector.
///
/// # Panics
///
/// Panics if `out.len() * k != panel.len()`.
pub fn gather_lane(panel: &[f64], k: usize, lane: usize, out: &mut [f64]) {
    assert_eq!(out.len() * k, panel.len(), "gather_lane: shape");
    for (i, o) in out.iter_mut().enumerate() {
        *o = panel[i * k + lane];
    }
}

/// Writes a contiguous vector into lane `lane` of a column-major panel.
///
/// # Panics
///
/// Panics if `x.len() * k != panel.len()`.
pub fn scatter_lane(x: &[f64], k: usize, lane: usize, panel: &mut [f64]) {
    assert_eq!(x.len() * k, panel.len(), "scatter_lane: shape");
    for (i, &v) in x.iter().enumerate() {
        panel[i * k + lane] = v;
    }
}

/// Drops lane `lane` from a column-major panel in place: the surviving
/// lanes repack from stride `k` to stride `k − 1` preserving row and lane
/// order (the stopping-mask retirement step). Only the first
/// `rows * (k − 1)` elements are meaningful afterwards.
///
/// The forward pass is safe in place: every write index is ≤ its read
/// index.
///
/// # Panics
///
/// Panics if `lane >= k` or `panel.len() < rows * k`.
pub fn drop_lane(panel: &mut [f64], k: usize, lane: usize, rows: usize) {
    assert!(lane < k, "drop_lane: lane out of range");
    assert!(panel.len() >= rows * k, "drop_lane: panel too short");
    if k == 1 {
        return;
    }
    let mut write = 0;
    for i in 0..rows {
        for l in 0..k {
            if l == lane {
                continue;
            }
            panel[write] = panel[i * k + l];
            write += 1;
        }
    }
}

/// The scalar twins. Public within the crate for the pin tests; the
/// dispatched wrappers above are the API.
pub(crate) mod scalar {
    pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
        for (yi, &xi) in y.iter_mut().zip(x) {
            *yi += alpha * xi;
        }
    }

    pub fn sub_scaled(alpha: f64, x: &[f64], y: &mut [f64]) {
        for (yi, &xi) in y.iter_mut().zip(x) {
            *yi -= alpha * xi;
        }
    }

    pub fn div_by(x: &[f64], divisor: f64, out: &mut [f64]) {
        for (o, &xi) in out.iter_mut().zip(x) {
            *o = xi / divisor;
        }
    }

    pub fn dot_lanes(panel: &[f64], v: &[f64], k: usize, out: &mut [f64]) {
        for (lane, o) in out.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (j, &vj) in v.iter().enumerate() {
                acc += vj * panel[j * k + lane];
            }
            *o = acc;
        }
    }

    pub fn rank1_lanes(x: &[f64], v: &[f64], k: usize, out: &mut [f64]) {
        for (j, &vj) in v.iter().enumerate() {
            for (lane, &xl) in x.iter().enumerate() {
                out[j * k + lane] += xl * vj;
            }
        }
    }
}

/// The AVX2 tier. Every function is `#[target_feature(enable = "avx2")]`
/// and only called behind [`simd_enabled`]. Products and sums stay
/// separate instructions (no FMA) so rounding matches the scalar twins.
#[cfg(target_arch = "x86_64")]
mod avx {
    use std::arch::x86_64::{
        _mm256_add_pd, _mm256_div_pd, _mm256_loadu_pd, _mm256_mul_pd, _mm256_set1_pd,
        _mm256_setzero_pd, _mm256_storeu_pd, _mm256_sub_pd,
    };

    #[target_feature(enable = "avx2")]
    pub unsafe fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
        let n = x.len();
        let a = _mm256_set1_pd(alpha);
        let chunks = n / 4;
        for c in 0..chunks {
            let i = c * 4;
            let xv = _mm256_loadu_pd(x.as_ptr().add(i));
            let yv = _mm256_loadu_pd(y.as_ptr().add(i));
            _mm256_storeu_pd(
                y.as_mut_ptr().add(i),
                _mm256_add_pd(yv, _mm256_mul_pd(a, xv)),
            );
        }
        for i in chunks * 4..n {
            y[i] += alpha * x[i];
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn sub_scaled(alpha: f64, x: &[f64], y: &mut [f64]) {
        let n = x.len();
        let a = _mm256_set1_pd(alpha);
        let chunks = n / 4;
        for c in 0..chunks {
            let i = c * 4;
            let xv = _mm256_loadu_pd(x.as_ptr().add(i));
            let yv = _mm256_loadu_pd(y.as_ptr().add(i));
            _mm256_storeu_pd(
                y.as_mut_ptr().add(i),
                _mm256_sub_pd(yv, _mm256_mul_pd(a, xv)),
            );
        }
        for i in chunks * 4..n {
            y[i] -= alpha * x[i];
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn div_by(x: &[f64], divisor: f64, out: &mut [f64]) {
        let n = x.len();
        let d = _mm256_set1_pd(divisor);
        let chunks = n / 4;
        for c in 0..chunks {
            let i = c * 4;
            let xv = _mm256_loadu_pd(x.as_ptr().add(i));
            _mm256_storeu_pd(out.as_mut_ptr().add(i), _mm256_div_pd(xv, d));
        }
        for i in chunks * 4..n {
            out[i] = x[i] / divisor;
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn dot_lanes(panel: &[f64], v: &[f64], k: usize, out: &mut [f64]) {
        let chunks = k / 4;
        for c in 0..chunks {
            let lane = c * 4;
            let mut acc = _mm256_setzero_pd();
            for (j, &vj) in v.iter().enumerate() {
                let xv = _mm256_loadu_pd(panel.as_ptr().add(j * k + lane));
                acc = _mm256_add_pd(acc, _mm256_mul_pd(_mm256_set1_pd(vj), xv));
            }
            _mm256_storeu_pd(out.as_mut_ptr().add(lane), acc);
        }
        for lane in chunks * 4..k {
            let mut acc = 0.0;
            for (j, &vj) in v.iter().enumerate() {
                acc += vj * panel[j * k + lane];
            }
            out[lane] = acc;
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn rank1_lanes(x: &[f64], v: &[f64], k: usize, out: &mut [f64]) {
        let chunks = k / 4;
        for (j, &vj) in v.iter().enumerate() {
            let vv = _mm256_set1_pd(vj);
            for c in 0..chunks {
                let lane = c * 4;
                let xl = _mm256_loadu_pd(x.as_ptr().add(lane));
                let ov = _mm256_loadu_pd(out.as_ptr().add(j * k + lane));
                _mm256_storeu_pd(
                    out.as_mut_ptr().add(j * k + lane),
                    _mm256_add_pd(ov, _mm256_mul_pd(xl, vv)),
                );
            }
            for lane in chunks * 4..k {
                out[j * k + lane] += x[lane] * vj;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use hybridcs_rand::{RngExt, SeedableRng};

    /// Deterministic mixed-magnitude data, including subnormals-adjacent
    /// scales and negative zeros, across awkward (non-multiple-of-4)
    /// lengths.
    fn noise(len: usize, seed: u64) -> Vec<f64> {
        let mut rng = hybridcs_rand::rngs::StdRng::seed_from_u64(seed);
        (0..len)
            .map(|i| {
                let base = rng.random::<f64>() * 2.0 - 1.0;
                match i % 7 {
                    0 => base * 1e12,
                    1 => base * 1e-12,
                    2 => -0.0,
                    _ => base,
                }
            })
            .collect()
    }

    /// Serializes tests that flip the process-global dispatch override.
    fn tier_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Runs `f` under both dispatch tiers (when SIMD hardware exists) and
    /// asserts the results are bit-identical. Restores the default tier.
    fn pin_both_tiers(mut f: impl FnMut() -> Vec<f64>) {
        let _guard = tier_lock();
        set_override(Some(false));
        let scalar_bits: Vec<u64> = f().iter().map(|v| v.to_bits()).collect();
        if simd_available() {
            set_override(Some(true));
            let simd_bits: Vec<u64> = f().iter().map(|v| v.to_bits()).collect();
            assert_eq!(scalar_bits, simd_bits, "SIMD tier diverged from scalar");
        }
        set_override(None);
    }

    #[test]
    fn axpy_pins_zero_ulp_across_shapes() {
        for len in [0, 1, 3, 4, 7, 16, 33, 257] {
            for seed in 0..4 {
                let x = noise(len, 100 + seed);
                let y0 = noise(len, 200 + seed);
                let alpha = noise(1, 300 + seed)[0];
                pin_both_tiers(|| {
                    let mut y = y0.clone();
                    axpy(alpha, &x, &mut y);
                    y
                });
            }
        }
    }

    #[test]
    fn sub_scaled_pins_zero_ulp_across_shapes() {
        for len in [1, 5, 8, 31, 130] {
            let x = noise(len, 41);
            let y0 = noise(len, 42);
            pin_both_tiers(|| {
                let mut y = y0.clone();
                sub_scaled(0.73, &x, &mut y);
                y
            });
        }
    }

    #[test]
    fn div_by_pins_zero_ulp_across_shapes() {
        for len in [2, 6, 12, 65] {
            let x = noise(len, 51);
            pin_both_tiers(|| {
                let mut out = vec![0.0; len];
                div_by(&x, 0.3127, &mut out);
                out
            });
        }
    }

    #[test]
    fn dot_lanes_matches_serial_dot_per_lane() {
        for &(rows, k) in &[(5usize, 1usize), (16, 3), (9, 4), (33, 7), (64, 16)] {
            let panel = noise(rows * k, 61);
            let v = noise(rows, 62);
            pin_both_tiers(|| {
                let mut out = vec![0.0; k];
                dot_lanes(&panel, &v, k, &mut out);
                out
            });
            // And each lane equals the serial dot on the gathered lane.
            let mut out = vec![0.0; k];
            scalar::dot_lanes(&panel, &v, k, &mut out);
            for lane in 0..k {
                let lane_vec: Vec<f64> = (0..rows).map(|i| panel[i * k + lane]).collect();
                let serial = crate::vector::dot(&v, &lane_vec);
                assert_eq!(out[lane].to_bits(), serial.to_bits(), "lane {lane}");
            }
        }
    }

    #[test]
    fn rank1_lanes_matches_serial_axpy_per_lane() {
        for &(rows, k) in &[(7usize, 2usize), (12, 4), (20, 6), (16, 16)] {
            let x = noise(k, 71);
            let v = noise(rows, 72);
            let out0 = noise(rows * k, 73);
            pin_both_tiers(|| {
                let mut out = out0.clone();
                rank1_lanes(&x, &v, k, &mut out);
                out
            });
            let mut out = out0.clone();
            scalar::rank1_lanes(&x, &v, k, &mut out);
            for lane in 0..k {
                let mut lane_vec: Vec<f64> = (0..rows).map(|i| out0[i * k + lane]).collect();
                crate::vector::axpy(x[lane], &v, &mut lane_vec);
                for i in 0..rows {
                    assert_eq!(out[i * k + lane].to_bits(), lane_vec[i].to_bits());
                }
            }
        }
    }

    #[test]
    fn lane_reductions_match_vector_reference() {
        let rows = 37;
        let k = 5;
        let a = noise(rows * k, 81);
        let b = noise(rows * k, 82);
        for lane in 0..k {
            let la: Vec<f64> = (0..rows).map(|i| a[i * k + lane]).collect();
            let lb: Vec<f64> = (0..rows).map(|i| b[i * k + lane]).collect();
            assert_eq!(
                norm1_lane(&a, k, lane, rows).to_bits(),
                crate::vector::norm1(&la).to_bits()
            );
            assert_eq!(
                norm2_lane(&a, k, lane, rows).to_bits(),
                crate::vector::norm2(&la).to_bits()
            );
            assert_eq!(
                norm_inf_lane(&a, k, lane, rows).to_bits(),
                crate::vector::norm_inf(&la).to_bits()
            );
            assert_eq!(
                dist2_lane(&a, &b, k, lane, rows).to_bits(),
                crate::vector::dist2(&la, &lb).to_bits()
            );
            assert_eq!(
                dist2_lane_vs(&a, &lb, k, lane).to_bits(),
                crate::vector::dist2(&la, &lb).to_bits()
            );
        }
    }

    #[test]
    fn norm_lanes_handle_nan_and_zero_like_vector() {
        let k = 2;
        for pattern in [vec![0.0, 0.0, -0.0, 0.0], vec![f64::NAN, 1.0, 2.0, 3.0]] {
            let lane: Vec<f64> = pattern.iter().step_by(k).copied().collect();
            let n_panel = norm2_lane(&pattern, k, 0, lane.len());
            let n_ref = crate::vector::norm2(&lane);
            assert_eq!(n_panel.to_bits(), n_ref.to_bits());
        }
    }

    #[test]
    fn gather_scatter_roundtrip_and_drop_lane() {
        let rows = 6;
        let k = 4;
        let panel0 = noise(rows * k, 91);
        let mut panel = panel0.clone();
        let mut lane_vec = vec![0.0; rows];
        gather_lane(&panel, k, 2, &mut lane_vec);
        scatter_lane(&lane_vec, k, 2, &mut panel);
        assert_eq!(panel, panel0);

        drop_lane(&mut panel, k, 1, rows);
        for i in 0..rows {
            let mut survivors = Vec::new();
            for l in 0..k {
                if l != 1 {
                    survivors.push(panel0[i * k + l]);
                }
            }
            for (l, want) in survivors.iter().enumerate() {
                assert_eq!(panel[i * (k - 1) + l].to_bits(), want.to_bits());
            }
        }
    }

    #[test]
    fn force_scalar_override_disables_simd() {
        let _guard = tier_lock();
        set_override(Some(false));
        assert!(!simd_enabled());
        set_override(None);
    }
}
