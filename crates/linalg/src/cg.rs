use crate::vector;
use crate::LinalgError;

/// Options for [`conjugate_gradient`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CgOptions {
    /// Maximum number of iterations before giving up.
    pub max_iterations: usize,
    /// Relative residual tolerance: stop when `‖r‖₂ ≤ tol · ‖b‖₂`.
    pub tolerance: f64,
}

impl Default for CgOptions {
    fn default() -> Self {
        CgOptions {
            max_iterations: 1000,
            tolerance: 1e-10,
        }
    }
}

/// Convergence report returned alongside the CG solution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CgOutcome {
    /// Iterations actually performed.
    pub iterations: usize,
    /// Final residual norm `‖b − Ax‖₂`.
    pub residual_norm: f64,
}

/// Conjugate-gradient solve of `Ax = b` for a symmetric positive-definite
/// operator given as a closure (matrix-free).
///
/// The operator form matters: the ADMM decoder solves systems in
/// `(ΦᵀΦ + ρI)` where `Φ` is only available as forward/adjoint routines.
///
/// # Errors
///
/// * [`LinalgError::DimensionMismatch`] if `x0.len() != b.len()`.
/// * [`LinalgError::NotConverged`] if the residual tolerance is not met
///   within `options.max_iterations` (the best iterate so far is discarded;
///   callers that can tolerate inexact solves should loosen the tolerance
///   instead of ignoring the error).
///
/// # Example
///
/// ```
/// use hybridcs_linalg::{conjugate_gradient, CgOptions};
///
/// # fn main() -> Result<(), hybridcs_linalg::LinalgError> {
/// // A = diag(2, 4): apply is element-wise scaling.
/// let apply = |x: &[f64], out: &mut [f64]| {
///     out[0] = 2.0 * x[0];
///     out[1] = 4.0 * x[1];
/// };
/// let (x, outcome) = conjugate_gradient(apply, &[2.0, 8.0], &[0.0, 0.0], CgOptions::default())?;
/// assert!((x[0] - 1.0).abs() < 1e-8 && (x[1] - 2.0).abs() < 1e-8);
/// assert!(outcome.iterations <= 2);
/// # Ok(())
/// # }
/// ```
pub fn conjugate_gradient(
    apply: impl FnMut(&[f64], &mut [f64]),
    b: &[f64],
    x0: &[f64],
    options: CgOptions,
) -> Result<(Vec<f64>, CgOutcome), LinalgError> {
    let n = b.len();
    if x0.len() != n {
        return Err(LinalgError::DimensionMismatch {
            operation: "conjugate_gradient",
            expected: n,
            actual: x0.len(),
        });
    }
    let mut x = x0.to_vec();
    let mut scratch = vec![0.0; cg_scratch_len(n)];
    let outcome = conjugate_gradient_into(apply, b, &mut x, &mut scratch, options)?;
    Ok((x, outcome))
}

/// Scratch length required by [`conjugate_gradient_into`] for an `n`-vector
/// system (the residual, direction, and operator-output buffers).
#[must_use]
pub fn cg_scratch_len(n: usize) -> usize {
    3 * n
}

/// Allocation-free [`conjugate_gradient`]: `x` carries the warm start in and
/// the solution out, and `scratch` (at least [`cg_scratch_len`]`(b.len())`)
/// holds the iteration vectors. Bit-identical to the Vec-returning wrapper.
///
/// On error, `x` holds the last iterate reached, not the warm start.
///
/// # Errors
///
/// Same conditions as [`conjugate_gradient`].
///
/// # Panics
///
/// Panics if `scratch` is shorter than [`cg_scratch_len`]`(b.len())`.
pub fn conjugate_gradient_into(
    mut apply: impl FnMut(&[f64], &mut [f64]),
    b: &[f64],
    x: &mut [f64],
    scratch: &mut [f64],
    options: CgOptions,
) -> Result<CgOutcome, LinalgError> {
    let n = b.len();
    if x.len() != n {
        return Err(LinalgError::DimensionMismatch {
            operation: "conjugate_gradient",
            expected: n,
            actual: x.len(),
        });
    }
    assert!(
        scratch.len() >= cg_scratch_len(n),
        "conjugate_gradient_into: scratch too short"
    );
    let b_norm = vector::norm2(b);
    let threshold = options.tolerance * b_norm.max(f64::MIN_POSITIVE);

    let (r, rest) = scratch.split_at_mut(n);
    let (p, rest) = rest.split_at_mut(n);
    let ap = &mut rest[..n];
    apply(x, ap);
    for ((ri, bi), ai) in r.iter_mut().zip(b).zip(ap.iter()) {
        *ri = bi - ai;
    }
    p.copy_from_slice(r);
    let mut rs_old = vector::norm2_sq(r);

    if rs_old.sqrt() <= threshold {
        return Ok(CgOutcome {
            iterations: 0,
            residual_norm: rs_old.sqrt(),
        });
    }

    for iter in 1..=options.max_iterations {
        apply(p, ap);
        let pap = vector::dot(p, ap);
        if pap <= 0.0 {
            // Operator is not positive definite along p; surface as
            // non-convergence with the current residual.
            return Err(LinalgError::NotConverged {
                method: "conjugate_gradient (non-SPD direction)",
                iterations: iter,
                residual: rs_old.sqrt(),
            });
        }
        let alpha = rs_old / pap;
        vector::axpy(alpha, p, x);
        vector::axpy(-alpha, ap, r);
        let rs_new = vector::norm2_sq(r);
        if rs_new.sqrt() <= threshold {
            return Ok(CgOutcome {
                iterations: iter,
                residual_norm: rs_new.sqrt(),
            });
        }
        let beta = rs_new / rs_old;
        for (pi, ri) in p.iter_mut().zip(r.iter()) {
            *pi = ri + beta * *pi;
        }
        rs_old = rs_new;
    }

    Err(LinalgError::NotConverged {
        method: "conjugate_gradient",
        iterations: options.max_iterations,
        residual: rs_old.sqrt(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matrix;

    #[test]
    fn solves_spd_system() {
        let a = Matrix::from_rows(&[&[4.0, 1.0, 0.0], &[1.0, 3.0, 1.0], &[0.0, 1.0, 2.0]]).unwrap();
        let x_true = [1.0, 2.0, -1.0];
        let b = a.matvec(&x_true);
        let apply = |x: &[f64], out: &mut [f64]| out.copy_from_slice(&a.matvec(x));
        let (x, outcome) = conjugate_gradient(apply, &b, &[0.0; 3], CgOptions::default()).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-8);
        }
        assert!(outcome.iterations <= 3, "CG should finish in <= n steps");
    }

    #[test]
    fn zero_rhs_returns_zero_immediately() {
        let apply = |x: &[f64], out: &mut [f64]| out.copy_from_slice(x);
        let (x, outcome) =
            conjugate_gradient(apply, &[0.0, 0.0], &[0.0, 0.0], CgOptions::default()).unwrap();
        assert_eq!(x, vec![0.0, 0.0]);
        assert_eq!(outcome.iterations, 0);
    }

    #[test]
    fn warm_start_reduces_iterations() {
        let a = Matrix::from_rows(&[&[5.0, 1.0], &[1.0, 4.0]]).unwrap();
        let x_true = [2.0, 3.0];
        let b = a.matvec(&x_true);
        let apply = |x: &[f64], out: &mut [f64]| out.copy_from_slice(&a.matvec(x));
        let (_, cold) = conjugate_gradient(apply, &b, &[0.0; 2], CgOptions::default()).unwrap();
        let apply2 = |x: &[f64], out: &mut [f64]| out.copy_from_slice(&a.matvec(x));
        let near = [1.999_999, 3.000_001];
        let (_, warm) = conjugate_gradient(apply2, &b, &near, CgOptions::default()).unwrap();
        assert!(warm.iterations <= cold.iterations);
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        // Badly conditioned diagonal system with a tiny budget.
        let apply = |x: &[f64], out: &mut [f64]| {
            for (i, (o, xi)) in out.iter_mut().zip(x).enumerate() {
                *o = (1.0 + 1e6 * i as f64) * xi;
            }
        };
        let b = vec![1.0; 50];
        let opts = CgOptions {
            max_iterations: 2,
            tolerance: 1e-14,
        };
        let err = conjugate_gradient(apply, &b, &vec![0.0; 50], opts).unwrap_err();
        assert!(matches!(err, LinalgError::NotConverged { .. }));
    }

    #[test]
    fn mismatched_warm_start_rejected() {
        let apply = |x: &[f64], out: &mut [f64]| out.copy_from_slice(x);
        let err = conjugate_gradient(apply, &[1.0, 2.0], &[0.0], CgOptions::default()).unwrap_err();
        assert!(matches!(err, LinalgError::DimensionMismatch { .. }));
    }
}
