use std::error::Error;
use std::fmt;

/// Errors produced by the linear-algebra kernels.
///
/// All variants carry enough context to diagnose the failing call without a
/// debugger; dimensions are reported in row-major `(rows, cols)` order.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LinalgError {
    /// Two operands had incompatible dimensions.
    DimensionMismatch {
        /// Human-readable name of the failing operation (e.g. `"matvec"`).
        operation: &'static str,
        /// Dimension expected by the operation.
        expected: usize,
        /// Dimension actually supplied.
        actual: usize,
    },
    /// A matrix constructor received rows of unequal length.
    RaggedRows {
        /// Length of the first row, taken as the reference width.
        first: usize,
        /// Index of the first offending row.
        row: usize,
        /// Length of the offending row.
        len: usize,
    },
    /// An empty matrix or vector was supplied where data is required.
    Empty,
    /// Cholesky factorization failed: the matrix is not positive definite
    /// (or is numerically singular). The index is the failing pivot.
    NotPositiveDefinite {
        /// Pivot index at which a non-positive diagonal appeared.
        pivot: usize,
    },
    /// A QR-based solve encountered a (numerically) rank-deficient matrix.
    RankDeficient {
        /// Column index of the vanishing diagonal entry of `R`.
        column: usize,
    },
    /// An iterative method exhausted its iteration budget before meeting
    /// its tolerance.
    NotConverged {
        /// Name of the iterative method.
        method: &'static str,
        /// Number of iterations performed.
        iterations: usize,
        /// Residual norm (or other method-specific measure) at exit.
        residual: f64,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch {
                operation,
                expected,
                actual,
            } => write!(
                f,
                "dimension mismatch in {operation}: expected {expected}, got {actual}"
            ),
            LinalgError::RaggedRows { first, row, len } => write!(
                f,
                "ragged rows: row 0 has length {first} but row {row} has length {len}"
            ),
            LinalgError::Empty => write!(f, "empty matrix or vector"),
            LinalgError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix is not positive definite at pivot {pivot}")
            }
            LinalgError::RankDeficient { column } => {
                write!(f, "matrix is rank deficient at column {column}")
            }
            LinalgError::NotConverged {
                method,
                iterations,
                residual,
            } => write!(
                f,
                "{method} did not converge after {iterations} iterations (residual {residual:.3e})"
            ),
        }
    }
}

impl Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_context() {
        let err = LinalgError::DimensionMismatch {
            operation: "matvec",
            expected: 4,
            actual: 3,
        };
        let msg = err.to_string();
        assert!(msg.contains("matvec"));
        assert!(msg.contains('4'));
        assert!(msg.contains('3'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }

    #[test]
    fn not_converged_reports_residual() {
        let err = LinalgError::NotConverged {
            method: "cg",
            iterations: 100,
            residual: 0.5,
        };
        assert!(err.to_string().contains("cg"));
        assert!(err.to_string().contains("100"));
    }
}
