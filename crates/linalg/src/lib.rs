//! Dense linear-algebra kernels for the hybrid compressed-sensing ECG
//! front-end reproduction.
//!
//! This crate provides exactly the numerical building blocks the rest of the
//! workspace needs — no more, no less:
//!
//! * [`vector`] — BLAS-1 style slice kernels (dot products, norms, `axpy`).
//! * [`Matrix`] — a row-major dense matrix with mat-vec, transposed mat-vec,
//!   Gram products and small-matrix algebra.
//! * [`Cholesky`] — factorization/solve for symmetric positive-definite
//!   systems (used by the greedy sparse solvers for their least-squares
//!   refits).
//! * [`QrFactorization`] — Householder QR with a least-squares solver, the
//!   numerically robust alternative to the normal equations.
//! * [`conjugate_gradient`] — matrix-free CG for SPD operators.
//! * [`operator_norm_est`] — power iteration on `AᵀA` to bound `‖A‖₂`, used
//!   by the first-order solvers to pick safe step sizes.
//!
//! Everything is `f64`; compressed-sensing recovery is iterative and the
//! paper's quality floor (quantization noise) sits far above `f32` precision,
//! but solver *step-size safety* margins are not, so we keep full precision
//! throughout.
//!
//! # Example
//!
//! ```
//! use hybridcs_linalg::{Matrix, Cholesky};
//!
//! # fn main() -> Result<(), hybridcs_linalg::LinalgError> {
//! // Solve the SPD system (AᵀA) x = Aᵀb for a small least-squares problem.
//! let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 2.0], &[1.0, 3.0]])?;
//! let b = [6.0, 9.0, 12.0];
//! let gram = a.gram();
//! let rhs = a.matvec_transpose(&b);
//! let chol = Cholesky::factor(&gram)?;
//! let x = chol.solve(&rhs);
//! assert!((x[0] - 3.0).abs() < 1e-9 && (x[1] - 3.0).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

// `deny` rather than `forbid`: the `simd` module scopes a single
// `allow(unsafe_code)` around its runtime-dispatched `std::arch`
// kernels; everything else still refuses unsafe at compile time.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod cg;
mod cholesky;
mod error;
mod matrix;
mod power_iteration;
mod qr;
pub mod simd;
pub mod vector;

pub use cg::{cg_scratch_len, conjugate_gradient, conjugate_gradient_into, CgOptions, CgOutcome};
pub use cholesky::Cholesky;
pub use error::LinalgError;
pub use matrix::Matrix;
pub use power_iteration::{operator_norm_est, PowerIterationOptions};
pub use qr::QrFactorization;
