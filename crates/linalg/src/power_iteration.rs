use crate::vector;

/// Options for [`operator_norm_est`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerIterationOptions {
    /// Maximum number of power iterations.
    pub max_iterations: usize,
    /// Relative change tolerance on the eigenvalue estimate.
    pub tolerance: f64,
    /// Deterministic seed used to build the starting vector.
    pub seed: u64,
}

impl Default for PowerIterationOptions {
    fn default() -> Self {
        PowerIterationOptions {
            max_iterations: 200,
            tolerance: 1e-7,
            seed: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

/// Estimates the spectral norm `‖A‖₂` of a linear operator given its forward
/// and adjoint actions, by power iteration on `AᵀA`.
///
/// First-order solvers (PDHG) need an upper bound on `‖K‖` to choose step
/// sizes satisfying `τσ‖K‖² < 1`; this routine supplies the estimate, and
/// callers add a small safety margin.
///
/// The starting vector is a deterministic pseudo-random vector derived from
/// `options.seed` (splitmix64), so the estimate is reproducible without
/// depending on the `rand` crate.
///
/// Returns `(norm_estimate, iterations_used)`. For a zero operator the
/// estimate is `0.0`.
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Example
///
/// ```
/// use hybridcs_linalg::{operator_norm_est, Matrix, PowerIterationOptions};
///
/// # fn main() -> Result<(), hybridcs_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 1.0]])?;
/// let (norm, _iters) = operator_norm_est(
///     2,
///     2,
///     |x, out| out.copy_from_slice(&a.matvec(x)),
///     |x, out| out.copy_from_slice(&a.matvec_transpose(x)),
///     PowerIterationOptions::default(),
/// );
/// assert!((norm - 3.0).abs() < 1e-5);
/// # Ok(())
/// # }
/// ```
pub fn operator_norm_est(
    n: usize,
    m: usize,
    mut forward: impl FnMut(&[f64], &mut [f64]),
    mut adjoint: impl FnMut(&[f64], &mut [f64]),
    options: PowerIterationOptions,
) -> (f64, usize) {
    assert!(n > 0, "operator domain must be non-empty");
    let mut v = deterministic_unit_vector(n, options.seed);
    let mut av = vec![0.0; m];
    let mut atav = vec![0.0; n];
    let mut lambda_old = 0.0_f64;
    for iter in 1..=options.max_iterations {
        forward(&v, &mut av);
        adjoint(&av, &mut atav);
        let lambda = vector::norm2(&atav);
        if lambda == 0.0 {
            return (0.0, iter);
        }
        for (vi, ai) in v.iter_mut().zip(&atav) {
            *vi = ai / lambda;
        }
        if (lambda - lambda_old).abs() <= options.tolerance * lambda {
            return (lambda.sqrt(), iter);
        }
        lambda_old = lambda;
    }
    (lambda_old.max(0.0).sqrt(), options.max_iterations)
}

/// Deterministic pseudo-random unit vector via splitmix64.
fn deterministic_unit_vector(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let mut v: Vec<f64> = (0..n)
        .map(|_| (next() >> 11) as f64 / (1u64 << 53) as f64 - 0.5)
        .collect();
    let norm = vector::norm2(&v);
    if norm > 0.0 {
        vector::scale(1.0 / norm, &mut v);
    } else {
        v[0] = 1.0;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matrix;

    #[test]
    fn diagonal_operator_norm() {
        let a =
            Matrix::from_rows(&[&[1.0, 0.0, 0.0], &[0.0, -7.0, 0.0], &[0.0, 0.0, 2.0]]).unwrap();
        let (norm, _) = operator_norm_est(
            3,
            3,
            |x, out| out.copy_from_slice(&a.matvec(x)),
            |x, out| out.copy_from_slice(&a.matvec_transpose(x)),
            PowerIterationOptions::default(),
        );
        assert!((norm - 7.0).abs() < 1e-4);
    }

    #[test]
    fn rectangular_operator_norm_matches_svd_known_case() {
        // A = [[1, 0], [0, 1], [1, 1]] has squared singular values 1 and 3.
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]).unwrap();
        let (norm, _) = operator_norm_est(
            2,
            3,
            |x, out| out.copy_from_slice(&a.matvec(x)),
            |x, out| out.copy_from_slice(&a.matvec_transpose(x)),
            PowerIterationOptions::default(),
        );
        assert!((norm - 3.0_f64.sqrt()).abs() < 1e-4);
    }

    #[test]
    fn zero_operator_returns_zero() {
        let (norm, _) = operator_norm_est(
            4,
            4,
            |_x, out| out.fill(0.0),
            |_x, out| out.fill(0.0),
            PowerIterationOptions::default(),
        );
        assert_eq!(norm, 0.0);
    }

    #[test]
    fn deterministic_across_calls() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]).unwrap();
        let run = || {
            operator_norm_est(
                2,
                2,
                |x, out| out.copy_from_slice(&a.matvec(x)),
                |x, out| out.copy_from_slice(&a.matvec_transpose(x)),
                PowerIterationOptions::default(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn estimate_is_lower_bound_up_to_tolerance() {
        // Power iteration converges from below for symmetric PSD AᵀA.
        let a = Matrix::from_rows(&[&[5.0, 2.0], &[0.0, 1.0]]).unwrap();
        let (norm, _) = operator_norm_est(
            2,
            2,
            |x, out| out.copy_from_slice(&a.matvec(x)),
            |x, out| out.copy_from_slice(&a.matvec_transpose(x)),
            PowerIterationOptions::default(),
        );
        assert!(norm <= a.frobenius_norm() + 1e-9);
        assert!(norm >= 5.0 - 1e-3);
    }
}
