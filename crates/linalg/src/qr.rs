use crate::{LinalgError, Matrix};

/// Householder QR factorization `A = QR` of a tall (or square) matrix.
///
/// Stored in compact form: the Householder vectors live below the diagonal
/// of the packed matrix and `R` on and above it. The factorization supports
/// least-squares solves `min ‖Ax − b‖₂`, which is how the greedy sparse
/// solvers refit their active sets when the Gram system is too
/// ill-conditioned for [`Cholesky`](crate::Cholesky).
///
/// # Example
///
/// ```
/// use hybridcs_linalg::{Matrix, QrFactorization};
///
/// # fn main() -> Result<(), hybridcs_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 2.0], &[0.0, 0.0]])?;
/// let qr = QrFactorization::factor(&a)?;
/// let x = qr.solve_least_squares(&[3.0, 4.0, 5.0])?;
/// assert!((x[0] - 3.0).abs() < 1e-12);
/// assert!((x[1] - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct QrFactorization {
    /// Packed factorization: Householder vectors below the diagonal,
    /// `R` on/above it.
    packed: Matrix,
    /// Scalar `β` coefficients of the Householder reflectors.
    betas: Vec<f64>,
}

impl QrFactorization {
    /// Factors `a` (must have `nrows >= ncols`).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when the matrix is wider
    /// than it is tall (the least-squares use case requires `m ≥ n`).
    // Index loops here and below iterate triangles of a packed factor with
    // strided column access; there is no iterator form that stays readable.
    #[allow(clippy::needless_range_loop)]
    pub fn factor(a: &Matrix) -> Result<Self, LinalgError> {
        let (m, n) = a.shape();
        if m < n {
            return Err(LinalgError::DimensionMismatch {
                operation: "qr (requires rows >= cols)",
                expected: n,
                actual: m,
            });
        }
        let mut packed = a.clone();
        let mut betas = vec![0.0; n];
        for k in 0..n {
            // Build the Householder reflector for column k.
            let mut norm_sq = 0.0;
            for i in k..m {
                let v = packed.get(i, k);
                norm_sq += v * v;
            }
            let norm = norm_sq.sqrt();
            if norm == 0.0 {
                betas[k] = 0.0;
                continue;
            }
            let akk = packed.get(k, k);
            let alpha = if akk >= 0.0 { -norm } else { norm };
            let v0 = akk - alpha;
            // v = [v0, a(k+1..m, k)]; beta = 2 / vᵀv.
            let mut vtv = v0 * v0;
            for i in (k + 1)..m {
                let v = packed.get(i, k);
                vtv += v * v;
            }
            let beta = if vtv == 0.0 { 0.0 } else { 2.0 / vtv };
            betas[k] = beta;
            packed.set(k, k, alpha);
            // Store the normalized reflector tail; the head v0 is implicit
            // (we fold it into `beta` by storing v scaled so head = 1).
            if v0 != 0.0 {
                for i in (k + 1)..m {
                    let v = packed.get(i, k) / v0;
                    packed.set(i, k, v);
                }
                betas[k] = beta * v0 * v0;
            }
            // Apply the reflector to the trailing columns.
            for j in (k + 1)..n {
                let mut s = packed.get(k, j);
                for i in (k + 1)..m {
                    s += packed.get(i, k) * packed.get(i, j);
                }
                s *= betas[k];
                let new_kj = packed.get(k, j) - s;
                packed.set(k, j, new_kj);
                for i in (k + 1)..m {
                    let v = packed.get(i, j) - s * packed.get(i, k);
                    packed.set(i, j, v);
                }
            }
        }
        Ok(QrFactorization { packed, betas })
    }

    /// Shape `(m, n)` of the factored matrix.
    #[must_use]
    pub fn shape(&self) -> (usize, usize) {
        self.packed.shape()
    }

    /// Applies `Qᵀ` to a vector in place.
    #[allow(clippy::needless_range_loop)]
    fn apply_qt(&self, b: &mut [f64]) {
        let (m, n) = self.packed.shape();
        for k in 0..n {
            if self.betas[k] == 0.0 {
                continue;
            }
            let mut s = b[k];
            for i in (k + 1)..m {
                s += self.packed.get(i, k) * b[i];
            }
            s *= self.betas[k];
            b[k] -= s;
            for i in (k + 1)..m {
                b[i] -= s * self.packed.get(i, k);
            }
        }
    }

    /// Solves the least-squares problem `min_x ‖Ax − b‖₂`.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::DimensionMismatch`] if `b.len() != m`.
    /// * [`LinalgError::RankDeficient`] if a diagonal entry of `R` is
    ///   (numerically) zero.
    #[allow(clippy::needless_range_loop)]
    pub fn solve_least_squares(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let (m, n) = self.packed.shape();
        if b.len() != m {
            return Err(LinalgError::DimensionMismatch {
                operation: "qr solve",
                expected: m,
                actual: b.len(),
            });
        }
        let mut qtb = b.to_vec();
        self.apply_qt(&mut qtb);
        // Back-substitute R x = (Qᵀb)[0..n].
        let mut x = vec![0.0; n];
        let scale = self.packed.max_abs().max(1.0);
        for i in (0..n).rev() {
            let rii = self.packed.get(i, i);
            if rii.abs() <= f64::EPSILON * scale * (m as f64) {
                return Err(LinalgError::RankDeficient { column: i });
            }
            let mut s = qtb[i];
            for j in (i + 1)..n {
                s -= self.packed.get(i, j) * x[j];
            }
            x[i] = s / rii;
        }
        Ok(x)
    }

    /// Residual norm `‖Ax − b‖₂` available for free from the factorization:
    /// the norm of the trailing `m − n` entries of `Qᵀb`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len() != m`.
    pub fn residual_norm(&self, b: &[f64]) -> Result<f64, LinalgError> {
        let (m, n) = self.packed.shape();
        if b.len() != m {
            return Err(LinalgError::DimensionMismatch {
                operation: "qr residual",
                expected: m,
                actual: b.len(),
            });
        }
        let mut qtb = b.to_vec();
        self.apply_qt(&mut qtb);
        Ok(crate::vector::norm2(&qtb[n..]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_square_system() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]).unwrap();
        let qr = QrFactorization::factor(&a).unwrap();
        let x_true = [1.0, -1.0];
        let b = a.matvec(&x_true);
        let x = qr.solve_least_squares(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-10);
        }
    }

    #[test]
    fn least_squares_matches_normal_equations() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 2.0], &[1.0, 3.0], &[1.0, 4.0]]).unwrap();
        let b = [6.0, 5.0, 7.0, 10.0];
        let qr = QrFactorization::factor(&a).unwrap();
        let x = qr.solve_least_squares(&b).unwrap();
        // Known closed-form fit: intercept 3.5, slope 1.4.
        assert!((x[0] - 3.5).abs() < 1e-10);
        assert!((x[1] - 1.4).abs() < 1e-10);
    }

    #[test]
    fn residual_norm_matches_direct_computation() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]).unwrap();
        let b = [1.0, 2.0, 0.0];
        let qr = QrFactorization::factor(&a).unwrap();
        let x = qr.solve_least_squares(&b).unwrap();
        let r = crate::vector::sub(&a.matvec(&x), &b);
        let direct = crate::vector::norm2(&r);
        let fast = qr.residual_norm(&b).unwrap();
        assert!((direct - fast).abs() < 1e-10);
    }

    #[test]
    fn rejects_wide_matrix() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]).unwrap();
        assert!(matches!(
            QrFactorization::factor(&a),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn detects_rank_deficiency() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0], &[1.0, 1.0]]).unwrap();
        let qr = QrFactorization::factor(&a).unwrap();
        assert!(matches!(
            qr.solve_least_squares(&[1.0, 1.0, 1.0]),
            Err(LinalgError::RankDeficient { .. })
        ));
    }

    #[test]
    fn handles_zero_column_start() {
        // First column starts with zero; exercises the sign handling in the
        // reflector construction.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[3.0, 0.0], &[4.0, 0.0]]).unwrap();
        let qr = QrFactorization::factor(&a).unwrap();
        let x_true = [2.0, -1.0];
        let b = a.matvec(&x_true);
        let x = qr.solve_least_squares(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-10);
        }
    }
}
