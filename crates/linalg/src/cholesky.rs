use crate::{LinalgError, Matrix};

/// Cholesky factorization `A = LLᵀ` of a symmetric positive-definite matrix.
///
/// The factorization is computed once and can then solve any number of
/// right-hand sides — exactly the access pattern of the greedy sparse
/// solvers, which refit `min ‖y − A_S x‖₂` over a growing support `S`.
///
/// # Example
///
/// ```
/// use hybridcs_linalg::{Cholesky, Matrix};
///
/// # fn main() -> Result<(), hybridcs_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]])?;
/// let chol = Cholesky::factor(&a)?;
/// let x = chol.solve(&[8.0, 7.0]);
/// assert!((x[0] - 1.25).abs() < 1e-12);
/// assert!((x[1] - 1.5).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Cholesky {
    /// Lower-triangular factor, stored dense.
    l: Matrix,
}

impl Cholesky {
    /// Factors a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read, so slight asymmetry from
    /// floating-point accumulation is harmless.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::DimensionMismatch`] if `a` is not square.
    /// * [`LinalgError::NotPositiveDefinite`] if a pivot is not strictly
    ///   positive (the matrix is indefinite or numerically singular).
    pub fn factor(a: &Matrix) -> Result<Self, LinalgError> {
        let n = a.nrows();
        if a.ncols() != n {
            return Err(LinalgError::DimensionMismatch {
                operation: "cholesky",
                expected: n,
                actual: a.ncols(),
            });
        }
        let mut l = Matrix::zeros(n, n);
        for j in 0..n {
            let mut diag = a.get(j, j);
            for k in 0..j {
                let v = l.get(j, k);
                diag -= v * v;
            }
            if diag <= 0.0 || !diag.is_finite() {
                return Err(LinalgError::NotPositiveDefinite { pivot: j });
            }
            let dj = diag.sqrt();
            l.set(j, j, dj);
            for i in (j + 1)..n {
                let mut s = a.get(i, j);
                for k in 0..j {
                    s -= l.get(i, k) * l.get(j, k);
                }
                l.set(i, j, s / dj);
            }
        }
        Ok(Cholesky { l })
    }

    /// Dimension of the factored matrix.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.l.nrows()
    }

    /// Solves `Ax = b` using the stored factor.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.dim()`.
    #[must_use]
    // Triangular substitution reads a strided factor; index loops are the
    // readable form.
    #[allow(clippy::needless_range_loop)]
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(b.len(), n, "cholesky solve: length mismatch");
        // Forward substitution: L z = b.
        let mut z = vec![0.0; n];
        for i in 0..n {
            let mut s = b[i];
            for k in 0..i {
                s -= self.l.get(i, k) * z[k];
            }
            z[i] = s / self.l.get(i, i);
        }
        // Back substitution: Lᵀ x = z.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut s = z[i];
            for k in (i + 1)..n {
                s -= self.l.get(k, i) * x[k];
            }
            x[i] = s / self.l.get(i, i);
        }
        x
    }

    /// Log-determinant of the factored matrix, `log det A = 2 Σ log L_ii`.
    #[must_use]
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| self.l.get(i, i).ln()).sum::<f64>() * 2.0
    }

    /// Borrows the lower-triangular factor `L`.
    #[must_use]
    pub fn factor_l(&self) -> &Matrix {
        &self.l
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_and_solve_roundtrip() {
        let a = Matrix::from_rows(&[&[6.0, 2.0, 1.0], &[2.0, 5.0, 2.0], &[1.0, 2.0, 4.0]]).unwrap();
        let chol = Cholesky::factor(&a).unwrap();
        let x_true = [1.0, -2.0, 3.0];
        let b = a.matvec(&x_true);
        let x = chol.solve(&b);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-10);
        }
    }

    #[test]
    fn reconstructs_matrix_from_factor() {
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]).unwrap();
        let chol = Cholesky::factor(&a).unwrap();
        let l = chol.factor_l();
        let llt = l.matmul(&l.transpose()).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                assert!((llt.get(i, j) - a.get(i, j)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        assert!(matches!(
            Cholesky::factor(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn rejects_non_square() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[2.0, 1.0, 0.0]]).unwrap();
        assert!(matches!(
            Cholesky::factor(&a),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn log_det_of_identity_is_zero() {
        let chol = Cholesky::factor(&Matrix::identity(5)).unwrap();
        assert!(chol.log_det().abs() < 1e-12);
    }

    #[test]
    fn log_det_known_value() {
        // det(diag(4, 9)) = 36.
        let a = Matrix::from_rows(&[&[4.0, 0.0], &[0.0, 9.0]]).unwrap();
        let chol = Cholesky::factor(&a).unwrap();
        assert!((chol.log_det() - 36.0_f64.ln()).abs() < 1e-12);
    }
}
