//! The SLO engine: declarative service-level objectives evaluated over
//! sliding windows of registry snapshots, with multi-window error-budget
//! burn-rate alerting.
//!
//! An objective is a *target fraction of good events* — "99% of windows
//! commit within 250 ms", "95% of windows decode at the full hybrid
//! rung". The engine never samples the pipeline itself: callers feed it
//! periodic **cumulative** [`Snapshot`]s ([`SloEngine::observe`]), and
//! every evaluation works on [`Snapshot::delta`]s between retained
//! observations, so compliance is always *for a window*, never
//! since-process-start (a day of good behaviour must not mask a bad five
//! minutes).
//!
//! # Burn rate
//!
//! With target `t`, a window's error budget is `1 − t` and its burn rate
//! is `(1 − compliance) / (1 − t)`: burning exactly `1.0` means the
//! service spends its budget precisely as fast as the objective allows.
//! Following the classic multi-window discipline, the engine evaluates
//! each objective over a **short** window (fast detection) and a **long**
//! window (noise suppression) and alerts:
//!
//! * [`AlertLevel::Page`] — both windows burn at ≥ `page_burn`: the
//!   budget is being torched *and* it is not a blip.
//! * [`AlertLevel::Warn`] — the long window burns at ≥ `warn_burn`: slow
//!   sustained burn that will exhaust the budget before the period ends.
//! * [`AlertLevel::Ok`] — otherwise (including "no events in window":
//!   an idle service violates no objective).

use crate::registry::{MetricId, Snapshot};
use std::collections::VecDeque;

/// What an [`SloSpec`] measures: the definition of a "good event".
#[derive(Debug, Clone)]
pub enum Objective {
    /// Good = samples of `histogram` at or below `threshold_seconds`
    /// (estimated by [`fraction_at_most`](crate::HistogramSnapshot::fraction_at_most)
    /// on the window's histogram delta).
    LatencyUnder {
        /// The latency histogram to evaluate.
        histogram: MetricId,
        /// The objective's latency bound, in seconds.
        threshold_seconds: f64,
    },
    /// Good = sum of the `good` counters' window deltas, out of the sum
    /// of the `total` counters' deltas.
    EventRatio {
        /// Counters whose delta counts as good events.
        good: Vec<MetricId>,
        /// Counters whose delta counts as all events.
        total: Vec<MetricId>,
    },
}

/// One declarative objective: a name, a measurement, and a target
/// fraction of good events in `[0, 1]`.
#[derive(Debug, Clone)]
pub struct SloSpec {
    /// Objective name, e.g. `"frame_to_commit_p99"`.
    pub name: String,
    /// What to measure.
    pub objective: Objective,
    /// Target good fraction, e.g. `0.99`.
    pub target: f64,
}

/// Alerting thresholds for the multi-window burn-rate discipline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurnPolicy {
    /// Observations spanned by the short (fast-detection) window.
    pub short_windows: usize,
    /// Observations spanned by the long (noise-suppression) window.
    pub long_windows: usize,
    /// Page when **both** windows burn at or above this rate.
    pub page_burn: f64,
    /// Warn when the **long** window burns at or above this rate.
    pub warn_burn: f64,
}

impl Default for BurnPolicy {
    fn default() -> Self {
        BurnPolicy {
            short_windows: 3,
            long_windows: 12,
            page_burn: 2.0,
            warn_burn: 1.0,
        }
    }
}

/// Alert severity of one evaluated objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AlertLevel {
    /// Within budget.
    Ok,
    /// Sustained slow burn on the long window.
    Warn,
    /// Fast burn confirmed on both windows.
    Page,
}

impl AlertLevel {
    /// Stable lower-case name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            AlertLevel::Ok => "ok",
            AlertLevel::Warn => "warn",
            AlertLevel::Page => "page",
        }
    }
}

/// One objective's evaluation result.
#[derive(Debug, Clone)]
pub struct SloStatus {
    /// The objective's name.
    pub name: String,
    /// The objective's target good fraction.
    pub target: f64,
    /// Good fraction over the short window (`None`: no events).
    pub short_compliance: Option<f64>,
    /// Good fraction over the long window (`None`: no events).
    pub long_compliance: Option<f64>,
    /// Error-budget burn rate over the short window (0 when idle).
    pub short_burn: f64,
    /// Error-budget burn rate over the long window (0 when idle).
    pub long_burn: f64,
    /// The verdict under the engine's [`BurnPolicy`].
    pub level: AlertLevel,
}

impl SloStatus {
    /// One human-readable summary line, e.g.
    /// `slo frame_to_commit_p99: ok (target 99.00%, short 100.00% burn 0.00x, long 99.80% burn 0.20x)`.
    #[must_use]
    pub fn summary(&self) -> String {
        let pct = |c: Option<f64>| match c {
            Some(v) => format!("{:.2}%", v * 100.0),
            None => "idle".to_string(),
        };
        format!(
            "slo {}: {} (target {:.2}%, short {} burn {:.2}x, long {} burn {:.2}x)",
            self.name,
            self.level.name(),
            self.target * 100.0,
            pct(self.short_compliance),
            self.short_burn,
            pct(self.long_compliance),
            self.long_burn,
        )
    }
}

/// Burn rate for a window: `(1 − compliance) / (1 − target)`. A zero (or
/// negative) error budget burns infinitely fast at any error and not at
/// all when perfectly compliant.
fn burn_rate(compliance: Option<f64>, target: f64) -> f64 {
    let Some(compliance) = compliance else {
        return 0.0; // idle window: no budget spent
    };
    let bad = (1.0 - compliance).max(0.0);
    let budget = 1.0 - target;
    if budget <= 0.0 {
        if bad > 0.0 {
            f64::INFINITY
        } else {
            0.0
        }
    } else {
        bad / budget
    }
}

fn counter_sum(snapshot: &Snapshot, ids: &[MetricId]) -> u64 {
    ids.iter()
        .map(|id| {
            snapshot
                .counters
                .iter()
                .find(|(i, _)| i == id)
                .map_or(0, |(_, v)| *v)
        })
        .sum()
}

/// Good-event fraction of one window delta under an objective, or `None`
/// when the window saw no relevant events.
fn compliance(window: &Snapshot, objective: &Objective) -> Option<f64> {
    match objective {
        Objective::LatencyUnder {
            histogram,
            threshold_seconds,
        } => window
            .histograms
            .iter()
            .find(|(i, _)| i == histogram)
            .and_then(|(_, h)| h.fraction_at_most(*threshold_seconds)),
        Objective::EventRatio { good, total } => {
            let total = counter_sum(window, total);
            if total == 0 {
                return None;
            }
            // Shared-label counters can make good > total transiently
            // (snapshot skew); compliance is a fraction, so clamp.
            Some((counter_sum(window, good) as f64 / total as f64).min(1.0))
        }
    }
}

/// The engine: a set of [`SloSpec`]s plus a bounded history of cumulative
/// snapshots. See the [module docs](self) for semantics.
#[derive(Debug)]
pub struct SloEngine {
    specs: Vec<SloSpec>,
    policy: BurnPolicy,
    history: VecDeque<Snapshot>,
}

impl SloEngine {
    /// An engine evaluating `specs` under `policy`. History is bounded at
    /// `policy.long_windows + 1` observations — memory does not grow with
    /// uptime.
    #[must_use]
    pub fn new(specs: Vec<SloSpec>, policy: BurnPolicy) -> SloEngine {
        SloEngine {
            specs,
            policy,
            history: VecDeque::new(),
        }
    }

    /// The engine's objectives.
    #[must_use]
    pub fn specs(&self) -> &[SloSpec] {
        &self.specs
    }

    /// Feeds one periodic **cumulative** snapshot (e.g. of the
    /// [global registry](crate::global)). Call at a fixed cadence; each
    /// observation becomes one sliding-window tick.
    pub fn observe(&mut self, snapshot: Snapshot) {
        self.history.push_back(snapshot);
        while self.history.len() > self.policy.long_windows + 1 {
            self.history.pop_front();
        }
    }

    /// Observations currently retained.
    #[must_use]
    pub fn observations(&self) -> usize {
        self.history.len()
    }

    /// Evaluates every objective over the current short and long windows.
    /// Returns one [`SloStatus`] per spec; empty until at least two
    /// observations exist (no window can be formed from one point).
    #[must_use]
    pub fn evaluate(&self) -> Vec<SloStatus> {
        let n = self.history.len();
        if n < 2 {
            return Vec::new();
        }
        let latest = &self.history[n - 1];
        let window = |span: usize| {
            let earlier = &self.history[n - 1 - span.clamp(1, n - 1)];
            latest.delta(earlier)
        };
        let short = window(self.policy.short_windows);
        let long = window(self.policy.long_windows);
        self.specs
            .iter()
            .map(|spec| {
                let short_compliance = compliance(&short, &spec.objective);
                let long_compliance = compliance(&long, &spec.objective);
                let short_burn = burn_rate(short_compliance, spec.target);
                let long_burn = burn_rate(long_compliance, spec.target);
                let level =
                    if short_burn >= self.policy.page_burn && long_burn >= self.policy.page_burn {
                        AlertLevel::Page
                    } else if long_burn >= self.policy.warn_burn {
                        AlertLevel::Warn
                    } else {
                        AlertLevel::Ok
                    };
                SloStatus {
                    name: spec.name.clone(),
                    target: spec.target,
                    short_compliance,
                    long_compliance,
                    short_burn,
                    long_burn,
                    level,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRegistry;

    fn latency_spec(target: f64) -> SloSpec {
        SloSpec {
            name: "commit_latency".to_string(),
            objective: Objective::LatencyUnder {
                histogram: MetricId::new("lat_seconds", &[]),
                threshold_seconds: 0.25,
            },
            target,
        }
    }

    fn ratio_spec(target: f64) -> SloSpec {
        SloSpec {
            name: "hybrid_fraction".to_string(),
            objective: Objective::EventRatio {
                good: vec![MetricId::new("rung_total", &[("rung", "hybrid")])],
                total: vec![
                    MetricId::new("rung_total", &[("rung", "hybrid")]),
                    MetricId::new("rung_total", &[("rung", "concealed")]),
                ],
            },
            target,
        }
    }

    #[test]
    fn burn_rate_semantics() {
        assert_eq!(burn_rate(Some(1.0), 0.99), 0.0);
        let b = burn_rate(Some(0.98), 0.99);
        assert!((b - 2.0).abs() < 1e-9, "burn {b}");
        assert_eq!(burn_rate(None, 0.99), 0.0);
        assert_eq!(burn_rate(Some(0.5), 1.0), f64::INFINITY);
        assert_eq!(burn_rate(Some(1.0), 1.0), 0.0);
    }

    #[test]
    fn needs_two_observations() {
        let mut engine = SloEngine::new(vec![latency_spec(0.99)], BurnPolicy::default());
        assert!(engine.evaluate().is_empty());
        engine.observe(Snapshot::default());
        assert!(engine.evaluate().is_empty());
        engine.observe(Snapshot::default());
        assert_eq!(engine.evaluate().len(), 1);
    }

    #[test]
    fn compliant_latency_is_ok_and_violations_page() {
        let registry = MetricsRegistry::new();
        let h = registry.histogram("lat_seconds", &[]);
        let mut engine = SloEngine::new(
            vec![latency_spec(0.9)],
            BurnPolicy {
                short_windows: 1,
                long_windows: 2,
                ..BurnPolicy::default()
            },
        );
        engine.observe(registry.snapshot());
        for _ in 0..100 {
            h.record(0.01); // all good
        }
        engine.observe(registry.snapshot());
        let status = &engine.evaluate()[0];
        assert_eq!(status.level, AlertLevel::Ok);
        assert_eq!(status.short_compliance, Some(1.0));
        assert_eq!(status.short_burn, 0.0);

        // Now a bad window: 50% of samples blow the 250 ms bound →
        // compliance 0.5, burn (0.5)/(0.1) = 5 ≥ page on both windows.
        for _ in 0..100 {
            h.record(0.01);
            h.record(10.0);
        }
        engine.observe(registry.snapshot());
        let status = &engine.evaluate()[0];
        assert_eq!(status.level, AlertLevel::Page);
        assert!(status.short_burn >= 2.0);
        assert!(status.summary().contains("page"));
    }

    #[test]
    fn event_ratio_uses_window_deltas_not_cumulative_totals() {
        let registry = MetricsRegistry::new();
        let good = registry.counter("rung_total", &[("rung", "hybrid")]);
        let bad = registry.counter("rung_total", &[("rung", "concealed")]);
        let mut engine = SloEngine::new(
            vec![ratio_spec(0.9)],
            BurnPolicy {
                short_windows: 1,
                long_windows: 1,
                ..BurnPolicy::default()
            },
        );
        // A long perfect history…
        good.add(10_000);
        engine.observe(registry.snapshot());
        engine.observe(registry.snapshot());
        // …must not mask a fully-bad current window.
        bad.add(100);
        engine.observe(registry.snapshot());
        let status = &engine.evaluate()[0];
        assert_eq!(status.short_compliance, Some(0.0));
        assert_eq!(status.level, AlertLevel::Page);
    }

    #[test]
    fn idle_windows_do_not_alert() {
        let mut engine = SloEngine::new(
            vec![latency_spec(0.99), ratio_spec(0.95)],
            BurnPolicy::default(),
        );
        let registry = MetricsRegistry::new();
        for _ in 0..5 {
            engine.observe(registry.snapshot());
        }
        for status in engine.evaluate() {
            assert_eq!(status.level, AlertLevel::Ok);
            assert_eq!(status.short_compliance, None);
            assert!(status.summary().contains("idle"));
        }
    }

    #[test]
    fn history_is_bounded() {
        let policy = BurnPolicy::default();
        let mut engine = SloEngine::new(vec![], policy);
        for _ in 0..100 {
            engine.observe(Snapshot::default());
        }
        assert_eq!(engine.observations(), policy.long_windows + 1);
    }
}
