//! Lightweight span tracing: RAII guards feeding a thread-local event
//! buffer, with durations mirrored into `span_seconds{span=...}`
//! histograms of the [global registry](crate::global).
//!
//! Collection is gated on [`crate::enabled`]: when off (the default) a
//! span costs one relaxed atomic load and no clock read, so hot paths —
//! including the per-iteration wavelet transforms inside the solvers —
//! can stay instrumented unconditionally.
//!
//! The buffer is bounded ([`EVENT_CAP`]); events beyond the cap are
//! dropped (counted in [`dropped_events`]) rather than growing without
//! bound during long instrumented runs. Histograms keep aggregating past
//! the cap.

use std::cell::RefCell;
use std::time::{Duration, Instant};

/// Maximum buffered events per thread between [`drain_events`] calls.
pub const EVENT_CAP: usize = 16_384;

/// One completed span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Static span name (the `span!` argument).
    pub name: &'static str,
    /// Nesting depth at which the span ran (0 = top level).
    pub depth: usize,
    /// Wall-clock duration from the monotonic clock.
    pub duration: Duration,
}

#[derive(Default)]
struct SpanBuffer {
    events: Vec<SpanEvent>,
    depth: usize,
    dropped: u64,
}

thread_local! {
    static BUFFER: RefCell<SpanBuffer> = RefCell::new(SpanBuffer::default());
}

/// RAII guard created by [`span!`](crate::span!). Records on drop — which
/// also runs during unwinding, so a panic inside a span still closes it
/// and restores the nesting depth.
#[derive(Debug)]
pub struct SpanGuard {
    name: &'static str,
    start: Option<Instant>,
}

impl SpanGuard {
    /// Opens a span. Inert (no clock read, nothing recorded) when span
    /// collection is disabled.
    #[must_use]
    pub fn enter(name: &'static str) -> SpanGuard {
        if !crate::enabled() {
            return SpanGuard { name, start: None };
        }
        BUFFER.with(|b| {
            // try_borrow_mut: if the thread is unwinding through a
            // re-entrant borrow, skip bookkeeping instead of aborting.
            if let Ok(mut buf) = b.try_borrow_mut() {
                buf.depth += 1;
            }
        });
        SpanGuard {
            name,
            start: Some(Instant::now()),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let duration = start.elapsed();
        let name = self.name;
        BUFFER.with(|b| {
            if let Ok(mut buf) = b.try_borrow_mut() {
                buf.depth = buf.depth.saturating_sub(1);
                let depth = buf.depth;
                if buf.events.len() < EVENT_CAP {
                    buf.events.push(SpanEvent {
                        name,
                        depth,
                        duration,
                    });
                } else {
                    buf.dropped += 1;
                }
            }
        });
        span_histogram(name).record(duration.as_secs_f64());
    }
}

thread_local! {
    /// Per-thread cache of `span_seconds{span=...}` histogram handles.
    /// Span names are `&'static str`s from `span!` call sites, so there
    /// are only ever a handful per thread — a linear scan over a small
    /// vec beats taking the registry mutex (and allocating the label
    /// strings for the lookup key) on every guard drop, which matters for
    /// spans that fire once per solver iteration.
    static SPAN_HISTOGRAMS: RefCell<Vec<(&'static str, crate::Histogram)>> =
        const { RefCell::new(Vec::new()) };
}

fn span_histogram(name: &'static str) -> crate::Histogram {
    SPAN_HISTOGRAMS.with(|cache| {
        if let Ok(mut cache) = cache.try_borrow_mut() {
            if let Some((_, h)) = cache
                .iter()
                .find(|(n, _)| std::ptr::eq(*n, name) || *n == name)
            {
                return h.clone();
            }
            let h = crate::global().histogram("span_seconds", &[("span", name)]);
            cache.push((name, h.clone()));
            h
        } else {
            // Re-entrant drop during unwinding: fall back to the registry.
            crate::global().histogram("span_seconds", &[("span", name)])
        }
    })
}

/// Opens a named span for the current scope:
///
/// ```
/// hybridcs_obs::set_enabled(true);
/// {
///     let _guard = hybridcs_obs::span!("encode.sensing");
///     // ... stage work ...
/// }
/// let events = hybridcs_obs::drain_events();
/// assert_eq!(events[0].name, "encode.sensing");
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanGuard::enter($name)
    };
}

/// Takes (and clears) this thread's buffered span events, in completion
/// order.
#[must_use]
pub fn drain_events() -> Vec<SpanEvent> {
    BUFFER.with(|b| match b.try_borrow_mut() {
        Ok(mut buf) => std::mem::take(&mut buf.events),
        Err(_) => Vec::new(),
    })
}

/// Current nesting depth on this thread (0 outside any span).
#[must_use]
pub fn span_depth() -> usize {
    BUFFER.with(|b| b.try_borrow().map(|buf| buf.depth).unwrap_or(0))
}

/// Events dropped on this thread since the last call (resets the count).
#[must_use]
pub fn dropped_events() -> u64 {
    BUFFER.with(|b| match b.try_borrow_mut() {
        Ok(mut buf) => std::mem::take(&mut buf.dropped),
        Err(_) => 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialize the span tests: they share the process-wide enabled flag
    /// and the thread-local buffer.
    fn with_spans_enabled(f: impl FnOnce()) {
        use std::sync::{Mutex, PoisonError};
        static GATE: Mutex<()> = Mutex::new(());
        let _gate = GATE.lock().unwrap_or_else(PoisonError::into_inner);
        crate::set_enabled(true);
        let _ = drain_events();
        let _ = dropped_events();
        f();
        crate::set_enabled(false);
    }

    #[test]
    fn spans_nest_and_record_depths() {
        with_spans_enabled(|| {
            {
                let _outer = span!("outer");
                assert_eq!(span_depth(), 1);
                {
                    let _inner = span!("inner");
                    assert_eq!(span_depth(), 2);
                }
            }
            assert_eq!(span_depth(), 0);
            let events = drain_events();
            // Inner closes first.
            assert_eq!(events.len(), 2);
            assert_eq!((events[0].name, events[0].depth), ("inner", 1));
            assert_eq!((events[1].name, events[1].depth), ("outer", 0));
        });
    }

    #[test]
    fn disabled_spans_are_inert() {
        crate::set_enabled(false);
        let _ = drain_events();
        {
            let _g = span!("invisible");
        }
        assert!(drain_events().is_empty());
    }

    #[test]
    fn panic_inside_span_unwinds_cleanly() {
        with_spans_enabled(|| {
            let result = std::panic::catch_unwind(|| {
                let _g = span!("doomed");
                panic!("boom");
            });
            assert!(result.is_err());
            // The guard's Drop ran during unwind: depth restored, event
            // recorded, and the global registry is still usable (its lock
            // recovers from poisoning).
            assert_eq!(span_depth(), 0);
            let events = drain_events();
            assert_eq!(events.len(), 1);
            assert_eq!(events[0].name, "doomed");
            let snap = crate::global().snapshot();
            assert!(snap
                .histogram_snapshot("span_seconds", &[("span", "doomed")])
                .is_some_and(|h| h.count >= 1));
        });
    }

    #[test]
    fn buffer_caps_and_counts_drops() {
        with_spans_enabled(|| {
            for _ in 0..(EVENT_CAP + 10) {
                let _g = span!("flood");
            }
            let events = drain_events();
            assert_eq!(events.len(), EVENT_CAP);
            assert_eq!(dropped_events(), 10);
        });
    }
}
