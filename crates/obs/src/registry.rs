//! The metrics registry: named, labelled counters, gauges, and
//! log₂-bucketed histograms.
//!
//! Registration (name → instrument lookup) takes a mutex; recording is
//! pure atomics on `Arc`-shared cells, so hot paths never contend on the
//! registry itself. The mutex is poison-recovering: a panic while holding
//! it (e.g. inside a span) cannot brick observability for the rest of the
//! process.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Identity of one instrument: a name plus a sorted label set.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MetricId {
    /// Metric name, e.g. `"telemetry_section_lost"`.
    pub name: String,
    /// Label pairs, sorted by key for a canonical identity.
    pub labels: Vec<(String, String)>,
}

impl MetricId {
    /// Builds an id from a name and unsorted label pairs.
    #[must_use]
    pub fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
            .collect();
        labels.sort();
        MetricId {
            name: name.to_string(),
            labels,
        }
    }

    /// Renders `name{k="v",...}` for reports.
    #[must_use]
    pub fn render(&self) -> String {
        if self.labels.is_empty() {
            return self.name.clone();
        }
        let labels: Vec<String> = self
            .labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{v}\""))
            .collect();
        format!("{}{{{}}}", self.name, labels.join(","))
    }
}

/// A monotonically increasing counter.
///
/// Increments **wrap** on `u64` overflow (the semantics of
/// `AtomicU64::fetch_add`); consumers diffing snapshots across runs should
/// treat a decrease as a wrap, never as a reset.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n` (wrapping).
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    #[must_use]
    pub fn value(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge holding one `f64` (stored as bits in an atomic).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adds to the gauge (CAS loop).
    pub fn add(&self, delta: f64) {
        atomic_f64_update(&self.0, |cur| cur + delta);
    }

    /// Current value.
    #[must_use]
    pub fn value(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Smallest bucketed exponent: values below `2^MIN_EXP` (≈ 5.8e-11, well
/// under a nanosecond in seconds) land in the underflow bucket.
const MIN_EXP: i32 = -34;
/// Major (power-of-two) bucket count: covers `[2^-34, 2^30)` ≈
/// `[5.8e-11, 1.07e9)`.
const BUCKETS: usize = 64;
/// Linear sub-buckets per major bucket (HDR-style log-linear layout). 16
/// sub-buckets bound the worst-case relative quantile error at
/// `1/(2·16)` ≈ 3.1%.
const SUB: usize = 16;
/// Total slot count: `BUCKETS × SUB` fixed `u64` cells — 8 KiB per
/// histogram, regardless of how many samples are recorded.
const SLOTS: usize = BUCKETS * SUB;

#[derive(Debug)]
pub(crate) struct HistogramCore {
    buckets: Vec<AtomicU64>, // SLOTS cells, fixed at construction
    underflow: AtomicU64,
    overflow: AtomicU64,
    count: AtomicU64,
    sum: AtomicU64, // f64 bits
    min: AtomicU64, // f64 bits, +inf when empty
    max: AtomicU64, // f64 bits, -inf when empty
}

/// An HDR-style log-linear histogram of non-negative `f64` samples with
/// **bounded memory** (a fixed 64 × 16 slot grid).
///
/// Major bucket `j` covers `[2^(j-34), 2^(j-33))` and is split into 16
/// linear sub-buckets, so sub-bucket boundaries are
/// `2^(j-34) · (1 + s/16)`. Both the major index (IEEE-754 exponent) and
/// the sub index (top four mantissa bits) come straight from the sample's
/// bit pattern — no floating `log2` — so boundaries are exact and exact
/// powers of two land on their bucket's lower bound. Zero, subnormal, and
/// negative samples count in the underflow bucket; samples ≥ `2^30`, NaN,
/// and +∞ in the overflow bucket. True min/max are tracked alongside the
/// buckets so quantile estimates stay within the observed range.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    fn new_core() -> Arc<HistogramCore> {
        Arc::new(HistogramCore {
            buckets: (0..SLOTS).map(|_| AtomicU64::new(0)).collect(),
            underflow: AtomicU64::new(0),
            overflow: AtomicU64::new(0),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0.0_f64.to_bits()),
            min: AtomicU64::new(f64::INFINITY.to_bits()),
            max: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        })
    }

    /// Index of the log-linear slot for a normal positive value, or `None`
    /// for under/overflow.
    fn bucket_index(v: f64) -> Option<usize> {
        if !(v.is_finite() && v >= f64::MIN_POSITIVE) {
            return None; // caller routes to underflow/overflow
        }
        // For normal positive v, the IEEE exponent is floor(log2(v)) and
        // the top 4 mantissa bits select the linear sub-bucket.
        let bits = v.to_bits();
        let exp = ((bits >> 52) & 0x7ff) as i32 - 1023;
        let major = exp - MIN_EXP;
        if !(0..BUCKETS as i32).contains(&major) {
            return None;
        }
        let sub = ((bits >> 48) & 0xF) as usize;
        Some(major as usize * SUB + sub)
    }

    /// `[lo, hi)` bounds of slot `i` (exact: both are sums of two powers
    /// of two well inside f64 range).
    fn slot_bounds(i: usize) -> (f64, f64) {
        let major = MIN_EXP + (i / SUB) as i32;
        let base = f64::from(major).exp2();
        let step = base / SUB as f64;
        let lo = base + step * (i % SUB) as f64;
        (lo, lo + step)
    }

    /// Records one sample.
    pub fn record(&self, v: f64) {
        let core = &self.0;
        match Self::bucket_index(v) {
            Some(i) => core.buckets[i].fetch_add(1, Ordering::Relaxed),
            None if v.is_nan() || v >= f64::MIN_POSITIVE => {
                core.overflow.fetch_add(1, Ordering::Relaxed)
            }
            None => core.underflow.fetch_add(1, Ordering::Relaxed),
        };
        core.count.fetch_add(1, Ordering::Relaxed);
        if v.is_finite() {
            atomic_f64_update(&core.sum, |cur| cur + v);
            atomic_f64_update(&core.min, |cur| cur.min(v));
            atomic_f64_update(&core.max, |cur| cur.max(v));
        }
    }

    /// Total samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// A consistent-enough point-in-time copy.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let core = &self.0;
        let mut buckets = Vec::new();
        for (i, b) in core.buckets.iter().enumerate() {
            let count = b.load(Ordering::Relaxed);
            if count > 0 {
                let (lo, hi) = Self::slot_bounds(i);
                buckets.push(BucketCount { lo, hi, count });
            }
        }
        HistogramSnapshot {
            count: core.count.load(Ordering::Relaxed),
            underflow: core.underflow.load(Ordering::Relaxed),
            overflow: core.overflow.load(Ordering::Relaxed),
            sum: f64::from_bits(core.sum.load(Ordering::Relaxed)),
            min: f64::from_bits(core.min.load(Ordering::Relaxed)),
            max: f64::from_bits(core.max.load(Ordering::Relaxed)),
            buckets,
        }
    }
}

/// CAS-loop update of an `f64` stored as bits.
fn atomic_f64_update(cell: &AtomicU64, f: impl Fn(f64) -> f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let new = f(f64::from_bits(cur)).to_bits();
        match cell.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// One non-empty bucket in a [`HistogramSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BucketCount {
    /// Inclusive lower bound.
    pub lo: f64,
    /// Exclusive upper bound.
    pub hi: f64,
    /// Samples in `[lo, hi)`.
    pub count: u64,
}

/// Point-in-time view of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Total samples.
    pub count: u64,
    /// Samples below the bucketed range (includes zero and negatives).
    pub underflow: u64,
    /// Samples above the bucketed range (includes NaN/∞).
    pub overflow: u64,
    /// Sum of all finite samples.
    pub sum: f64,
    /// Smallest finite sample (+∞ when none).
    pub min: f64,
    /// Largest finite sample (−∞ when none).
    pub max: f64,
    /// Non-empty buckets in ascending order.
    pub buckets: Vec<BucketCount>,
}

/// The standard latency percentiles of one histogram, estimated at bucket
/// resolution (see [`HistogramSnapshot::quantile`] for the estimator and
/// its clamping guarantees).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Percentiles {
    /// Median (50th percentile).
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl HistogramSnapshot {
    /// Mean of the finite samples (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// p50/p90/p99 in one call — the triple every latency report line
    /// wants. Returns `None` when the histogram is empty.
    #[must_use]
    pub fn percentiles(&self) -> Option<Percentiles> {
        Some(Percentiles {
            p50: self.quantile(0.5)?,
            p90: self.quantile(0.9)?,
            p99: self.quantile(0.99)?,
        })
    }

    /// Bucket-resolution quantile estimate for `q ∈ [0, 1]`: the midpoint
    /// of the log-linear sub-bucket holding the rank-`⌈q·count⌉` sample
    /// (sub-buckets are linear, so the arithmetic midpoint bounds the
    /// relative error at `1/(2·16)` ≈ 3.1%), clamped into the observed
    /// `[min, max]`. Returns `None` when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        if q == 0.0 && self.min.is_finite() {
            return Some(self.min);
        }
        if q == 1.0 && self.max.is_finite() {
            return Some(self.max);
        }
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        // min > max happens when no finite sample was recorded (or in a
        // delta window with only under/overflow) — skip clamping then.
        let clamp = |v: f64| {
            if self.min <= self.max {
                v.clamp(self.min, self.max)
            } else {
                v
            }
        };
        let mut seen = self.underflow;
        if rank <= seen {
            return Some(clamp(0.0));
        }
        for b in &self.buckets {
            seen += b.count;
            if rank <= seen {
                return Some(clamp(0.5 * (b.lo + b.hi)));
            }
        }
        Some(clamp(self.max))
    }

    /// Fraction of samples at or below `limit` (underflow counts as below;
    /// overflow as above; the bucket straddling `limit` contributes
    /// linearly). Returns `None` when the histogram is empty. This is the
    /// estimator behind latency objectives ("99% of windows commit within
    /// 250 ms").
    #[must_use]
    pub fn fraction_at_most(&self, limit: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let mut good = if limit >= 0.0 {
            self.underflow as f64
        } else {
            0.0
        };
        for b in &self.buckets {
            if b.hi <= limit {
                good += b.count as f64;
            } else if b.lo < limit {
                good += b.count as f64 * (limit - b.lo) / (b.hi - b.lo);
            }
        }
        Some(good / self.count as f64)
    }

    /// The bucket-wise difference `self − earlier` of two cumulative
    /// snapshots of the **same** histogram — the windowed view the SLO
    /// engine evaluates objectives over. Counter-like fields subtract
    /// (wrapping); `min`/`max` cannot be recovered for a window from
    /// cumulative data, so the delta widens them to its own bucket range
    /// (quantiles stay correctly clamped, `quantile(0.0)`/`quantile(1.0)`
    /// are bucket-resolution rather than exact).
    #[must_use]
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets: Vec<BucketCount> = Vec::with_capacity(self.buckets.len());
        let mut prev = earlier.buckets.iter().peekable();
        for b in &self.buckets {
            let mut count = b.count;
            // Both bucket lists are ascending by `lo`; consume matches.
            while let Some(p) = prev.peek() {
                if p.lo < b.lo {
                    prev.next();
                } else {
                    if p.lo == b.lo {
                        count = count.wrapping_sub(p.count);
                        prev.next();
                    }
                    break;
                }
            }
            if count > 0 {
                buckets.push(BucketCount { count, ..*b });
            }
        }
        let lo = buckets.first().map_or(f64::INFINITY, |b| b.lo);
        let hi = buckets.last().map_or(f64::NEG_INFINITY, |b| b.hi);
        HistogramSnapshot {
            count: self.count.wrapping_sub(earlier.count),
            underflow: self.underflow.wrapping_sub(earlier.underflow),
            overflow: self.overflow.wrapping_sub(earlier.overflow),
            sum: self.sum - earlier.sum,
            min: lo,
            max: hi,
            buckets,
        }
    }
}

#[derive(Debug, Clone)]
enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// The registry. See the [crate docs](crate) for the locking story.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    instruments: Mutex<HashMap<MetricId, Instrument>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<MetricId, Instrument>> {
        // A panic while the lock is held (e.g. inside an instrumented
        // region) must not poison observability for everyone else.
        self.instruments
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Returns (registering on first use) the counter `name{labels}`.
    ///
    /// # Panics
    ///
    /// Panics if the id is already registered as a different instrument
    /// kind — that is a programming error, not a runtime condition.
    #[must_use]
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let id = MetricId::new(name, labels);
        let mut map = self.lock();
        match map
            .entry(id)
            .or_insert_with(|| Instrument::Counter(Counter(Arc::new(AtomicU64::new(0)))))
        {
            Instrument::Counter(c) => c.clone(),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Returns (registering on first use) the gauge `name{labels}`.
    ///
    /// # Panics
    ///
    /// Same kind-mismatch condition as [`MetricsRegistry::counter`].
    #[must_use]
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let id = MetricId::new(name, labels);
        let mut map = self.lock();
        match map.entry(id).or_insert_with(|| {
            Instrument::Gauge(Gauge(Arc::new(AtomicU64::new(0.0_f64.to_bits()))))
        }) {
            Instrument::Gauge(g) => g.clone(),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Returns (registering on first use) the histogram `name{labels}`.
    ///
    /// # Panics
    ///
    /// Same kind-mismatch condition as [`MetricsRegistry::counter`].
    #[must_use]
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        let id = MetricId::new(name, labels);
        let mut map = self.lock();
        match map
            .entry(id)
            .or_insert_with(|| Instrument::Histogram(Histogram(Histogram::new_core())))
        {
            Instrument::Histogram(h) => h.clone(),
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Captures every instrument into a deterministic, sorted snapshot.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let map = self.lock();
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut histograms = Vec::new();
        for (id, inst) in map.iter() {
            match inst {
                Instrument::Counter(c) => counters.push((id.clone(), c.value())),
                Instrument::Gauge(g) => gauges.push((id.clone(), g.value())),
                Instrument::Histogram(h) => histograms.push((id.clone(), h.snapshot())),
            }
        }
        drop(map);
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
        histograms.sort_by(|a, b| a.0.cmp(&b.0));
        Snapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// A deterministic point-in-time view of a whole registry — the in-memory
/// sink used by tests and the source for the text/JSONL exporters.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Counters, sorted by id.
    pub counters: Vec<(MetricId, u64)>,
    /// Gauges, sorted by id.
    pub gauges: Vec<(MetricId, f64)>,
    /// Histograms, sorted by id.
    pub histograms: Vec<(MetricId, HistogramSnapshot)>,
}

impl Snapshot {
    /// Looks up one counter value.
    #[must_use]
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let id = MetricId::new(name, labels);
        self.counters
            .iter()
            .find(|(i, _)| *i == id)
            .map(|(_, v)| *v)
    }

    /// Looks up one histogram snapshot.
    #[must_use]
    pub fn histogram_snapshot(
        &self,
        name: &str,
        labels: &[(&str, &str)],
    ) -> Option<&HistogramSnapshot> {
        let id = MetricId::new(name, labels);
        self.histograms
            .iter()
            .find(|(i, _)| *i == id)
            .map(|(_, h)| h)
    }

    /// The difference `self − earlier` of two cumulative snapshots of the
    /// same registry: counters and histogram buckets subtract (wrapping);
    /// gauges keep their latest value (they are not cumulative).
    /// Instruments absent from `earlier` pass through unchanged — the
    /// "periodic delta snapshot" primitive behind the SLO engine and the
    /// soak's per-run latency reporting.
    #[must_use]
    pub fn delta(&self, earlier: &Snapshot) -> Snapshot {
        let counters = self
            .counters
            .iter()
            .map(|(id, v)| {
                let prev = earlier
                    .counters
                    .iter()
                    .find(|(i, _)| i == id)
                    .map_or(0, |(_, p)| *p);
                (id.clone(), v.wrapping_sub(prev))
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(id, h)| {
                let delta = match earlier.histograms.iter().find(|(i, _)| i == id) {
                    Some((_, prev)) => h.delta(prev),
                    None => h.clone(),
                };
                (id.clone(), delta)
            })
            .collect();
        Snapshot {
            counters,
            gauges: self.gauges.clone(),
            histograms,
        }
    }

    /// Human-readable report of everything in the snapshot.
    #[must_use]
    pub fn text_report(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (id, v) in &self.counters {
                let _ = writeln!(out, "  {:<48} {v}", id.render());
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (id, v) in &self.gauges {
                let _ = writeln!(out, "  {:<48} {v}", id.render());
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            for (id, h) in &self.histograms {
                let p = h.percentiles().unwrap_or(Percentiles {
                    p50: 0.0,
                    p90: 0.0,
                    p99: 0.0,
                });
                let _ = writeln!(
                    out,
                    "  {:<48} n={} mean={:.3e} p50={:.3e} p90={:.3e} p99={:.3e} max={:.3e}",
                    id.render(),
                    h.count,
                    h.mean(),
                    p.p50,
                    p.p90,
                    p.p99,
                    if h.max.is_finite() { h.max } else { 0.0 },
                );
            }
        }
        if out.is_empty() {
            out.push_str("(empty snapshot)\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_adds_and_wraps_on_overflow() {
        let registry = MetricsRegistry::new();
        let c = registry.counter("wraps", &[]);
        c.add(u64::MAX);
        assert_eq!(c.value(), u64::MAX);
        // Documented wrapping semantics: MAX + 3 ≡ 2.
        c.add(3);
        assert_eq!(c.value(), 2);
    }

    #[test]
    fn gauge_set_and_add() {
        let registry = MetricsRegistry::new();
        let g = registry.gauge("g", &[("k", "v")]);
        g.set(1.5);
        g.add(-0.5);
        assert!((g.value() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_bucket_boundaries_are_exact() {
        let registry = MetricsRegistry::new();
        let h = registry.histogram("bounds", &[]);
        // An exact power of two must land on the sub-bucket it
        // lower-bounds; a value just below it in the last sub-bucket of
        // the previous major bucket; values inside a major bucket in
        // their linear sub-bucket.
        h.record(1.0);
        h.record(0.999_999_999);
        h.record(2.0);
        h.record(1.999_999_999);
        h.record(1.5); // sub-bucket [1.5, 1.5625)
        let snap = h.snapshot();
        let find = |lo: f64| {
            snap.buckets
                .iter()
                .find(|b| (b.lo - lo).abs() < 1e-12)
                .map(|b| b.count)
        };
        assert_eq!(find(0.5 * (1.0 + 15.0 / 16.0)), Some(1)); // 0.999…
        assert_eq!(find(1.0), Some(1)); // 1.0 ∈ [1, 1.0625)
        assert_eq!(find(1.5), Some(1)); // 1.5 ∈ [1.5, 1.5625)
        assert_eq!(find(1.0 + 15.0 / 16.0), Some(1)); // 1.999…
        assert_eq!(find(2.0), Some(1)); // 2.0 ∈ [2, 2.125)
        assert_eq!(snap.count, 5);
        assert_eq!(snap.underflow + snap.overflow, 0);
        // Sub-buckets within one major bucket are linear and contiguous.
        for b in &snap.buckets {
            assert!(b.hi > b.lo);
        }
    }

    #[test]
    fn loglinear_quantiles_are_within_relative_error_bound() {
        let registry = MetricsRegistry::new();
        let h = registry.histogram("res", &[]);
        // A tight cluster: log₂ buckets alone would answer anywhere in
        // [1024, 2048); log-linear sub-buckets must land within 1/32.
        for i in 0..1000 {
            h.record(1500.0 + f64::from(i % 7));
        }
        let snap = h.snapshot();
        let p50 = snap.quantile(0.5).unwrap();
        assert!(
            (p50 - 1503.0).abs() / 1503.0 < 1.0 / 32.0 + 1e-9,
            "p50 {p50} outside the log-linear error bound"
        );
    }

    #[test]
    fn fraction_at_most_interpolates() {
        let registry = MetricsRegistry::new();
        let h = registry.histogram("frac", &[]);
        for i in 1..=100 {
            h.record(f64::from(i));
        }
        let snap = h.snapshot();
        assert_eq!(snap.fraction_at_most(1000.0), Some(1.0));
        assert_eq!(snap.fraction_at_most(0.5), Some(0.0));
        let half = snap.fraction_at_most(50.0).unwrap();
        assert!((half - 0.5).abs() < 0.05, "fraction at 50: {half}");
        assert!(registry
            .histogram("empty", &[])
            .snapshot()
            .fraction_at_most(1.0)
            .is_none());
    }

    #[test]
    fn histogram_delta_subtracts_buckets() {
        let registry = MetricsRegistry::new();
        let h = registry.histogram("delta", &[]);
        h.record(1.0);
        h.record(4.0);
        let earlier = h.snapshot();
        h.record(4.0);
        h.record(16.0);
        let delta = h.snapshot().delta(&earlier);
        assert_eq!(delta.count, 2);
        assert_eq!(delta.buckets.len(), 2);
        assert_eq!(delta.buckets[0].lo, 4.0);
        assert_eq!(delta.buckets[0].count, 1);
        assert_eq!(delta.buckets[1].lo, 16.0);
        assert!((delta.sum - 20.0).abs() < 1e-12);
        // The window's quantiles reflect only the new samples.
        assert!(delta.quantile(0.99).unwrap() >= 16.0);
    }

    #[test]
    fn snapshot_delta_subtracts_counters_and_keeps_gauges() {
        let registry = MetricsRegistry::new();
        let c = registry.counter("d_total", &[]);
        let g = registry.gauge("d_gauge", &[]);
        c.add(5);
        g.set(1.0);
        let earlier = registry.snapshot();
        c.add(3);
        g.set(9.0);
        registry.counter("d_new", &[]).add(2);
        let delta = registry.snapshot().delta(&earlier);
        assert_eq!(delta.counter_value("d_total", &[]), Some(3));
        assert_eq!(delta.counter_value("d_new", &[]), Some(2));
        let gauge = delta
            .gauges
            .iter()
            .find(|(id, _)| id.name == "d_gauge")
            .map(|(_, v)| *v);
        assert_eq!(gauge, Some(9.0));
    }

    #[test]
    fn histogram_routes_extremes() {
        let registry = MetricsRegistry::new();
        let h = registry.histogram("extremes", &[]);
        h.record(0.0);
        h.record(-1.0);
        h.record(1e300);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        let snap = h.snapshot();
        assert_eq!(snap.underflow, 2);
        assert_eq!(snap.overflow, 3);
        assert_eq!(snap.count, 5);
        // NaN/∞ must not poison the finite aggregates.
        assert!(snap.sum.is_finite());
        assert_eq!(snap.max, 1e300);
        assert_eq!(snap.min, -1.0);
    }

    #[test]
    fn histogram_quantiles_bracket_the_data() {
        let registry = MetricsRegistry::new();
        let h = registry.histogram("q", &[]);
        for i in 1..=100 {
            h.record(f64::from(i));
        }
        let snap = h.snapshot();
        let p50 = snap.quantile(0.5).unwrap();
        let p99 = snap.quantile(0.99).unwrap();
        // Log buckets are coarse: require the right bucket, not the exact
        // order statistic.
        assert!((32.0..=64.0).contains(&p50), "p50 {p50}");
        assert!(p99 >= 64.0, "p99 {p99}");
        assert_eq!(snap.quantile(0.0).unwrap(), 1.0);
        assert_eq!(snap.quantile(1.0).unwrap(), 100.0);
        assert!((snap.mean() - 50.5).abs() < 1e-9);
    }

    #[test]
    fn single_sample_quantile_is_exact() {
        let registry = MetricsRegistry::new();
        let h = registry.histogram("single", &[]);
        h.record(0.125);
        let snap = h.snapshot();
        assert_eq!(snap.quantile(0.5), Some(0.125));
    }

    #[test]
    fn labels_distinguish_instruments() {
        let registry = MetricsRegistry::new();
        registry.counter("c", &[("section", "cs")]).add(1);
        registry.counter("c", &[("section", "lowres")]).add(2);
        let snap = registry.snapshot();
        assert_eq!(snap.counter_value("c", &[("section", "cs")]), Some(1));
        assert_eq!(snap.counter_value("c", &[("section", "lowres")]), Some(2));
        // Label order must not matter.
        let a = registry.counter("multi", &[("a", "1"), ("b", "2")]);
        let b = registry.counter("multi", &[("b", "2"), ("a", "1")]);
        a.inc();
        assert_eq!(b.value(), 1);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let registry = MetricsRegistry::new();
        let _ = registry.counter("same_name", &[]);
        let _ = registry.gauge("same_name", &[]);
    }

    #[test]
    fn snapshot_is_sorted_and_deterministic() {
        let registry = MetricsRegistry::new();
        registry.counter("z", &[]).inc();
        registry.counter("a", &[]).inc();
        registry.gauge("m", &[]).set(1.0);
        let s1 = registry.snapshot();
        let s2 = registry.snapshot();
        assert_eq!(s1.counters, s2.counters);
        assert!(s1.counters[0].0.name < s1.counters[1].0.name);
        let report = s1.text_report();
        assert!(report.contains("counters:"));
        assert!(report.contains("gauges:"));
    }
}
