//! Solver convergence instrumentation: the [`IterationObserver`] hook the
//! `hybridcs-solver` crate threads through every iterative method, and the
//! [`ConvergenceTrace`] each solve emits on completion.
//!
//! The contract is explicitly *pull-gated*: a solver first asks
//! [`IterationObserver::active`] and computes per-iteration diagnostics
//! (objective, residual) only when the observer wants them, so the no-op
//! observer adds no extra matvecs or transforms to the hot loop — that is
//! what keeps instrumented-but-unobserved solves within the ≤ 5% overhead
//! budget of the micro-benches.

use std::fmt;
use std::time::Duration;

/// One iteration of an instrumented solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationEvent {
    /// 1-based iteration number (cumulative across reweighting rounds).
    pub iteration: usize,
    /// The solver's own objective at this iterate (e.g. `‖Ψᵀx‖₁` for
    /// PDHG/ADMM, the LASSO value for FISTA, `‖α‖₁` for greedy methods).
    pub objective: f64,
    /// Fidelity residual `‖Ax − y‖₂` at this iterate.
    pub residual: f64,
    /// Step-size-like parameter, when the method has one (τ for PDHG, the
    /// gradient step for FISTA/IHT, ρ for ADMM).
    pub step_size: Option<f64>,
}

/// Why an instrumented solver stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The stopping tolerance was met.
    Converged,
    /// The iteration budget ran out.
    MaxIterations,
    /// Progress stalled (fixed point, orthogonal residual, or a degenerate
    /// refit forcing the method to keep its best iterate).
    Stagnated,
    /// A greedy method reached its sparsity cap with residual above
    /// tolerance.
    SupportExhausted,
    /// The observer asked the solver to stop
    /// ([`IterationObserver::should_abort`] returned `true`) — e.g. a
    /// watchdog detected divergence or an exhausted wall-clock budget. The
    /// solver returns its best iterate with `converged = false`.
    Aborted,
}

impl StopReason {
    /// Stable lower-snake identifier (used by the JSONL schema).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            StopReason::Converged => "converged",
            StopReason::MaxIterations => "max_iterations",
            StopReason::Stagnated => "stagnated",
            StopReason::SupportExhausted => "support_exhausted",
            StopReason::Aborted => "aborted",
        }
    }
}

impl fmt::Display for StopReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Summary of one completed solve.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvergenceTrace {
    /// Which algorithm ran (`"pdhg"`, `"admm"`, `"fista"`, …).
    pub solver: &'static str,
    /// Iterations performed (cumulative across reweighting rounds).
    pub iterations: usize,
    /// Why the solver stopped.
    pub stop_reason: StopReason,
    /// Wall-clock time of the whole solve (monotonic clock).
    pub wall_time: Duration,
    /// Whether the solver reports convergence (mirrors
    /// `RecoveryResult::converged`).
    pub converged: bool,
    /// Final objective (mirrors `RecoveryResult::objective`).
    pub final_objective: f64,
    /// Final fidelity residual (mirrors `RecoveryResult::residual`).
    pub final_residual: f64,
}

impl fmt::Display for ConvergenceTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} iterations, stop={}, wall={:.3} ms, residual={:.3e}, objective={:.3e}",
            self.solver,
            self.iterations,
            self.stop_reason,
            self.wall_time.as_secs_f64() * 1e3,
            self.final_residual,
            self.final_objective,
        )
    }
}

/// Hook receiving solver progress. Implementations must be cheap: they run
/// inside the iteration loop.
pub trait IterationObserver {
    /// Whether per-iteration events should be computed and delivered.
    /// Solvers skip the extra objective/residual evaluations entirely when
    /// this is `false`.
    fn active(&self) -> bool {
        true
    }

    /// Called once per iteration (only when [`IterationObserver::active`]).
    fn on_iteration(&mut self, event: &IterationEvent);

    /// Called exactly once when the solve finishes (regardless of
    /// [`IterationObserver::active`]).
    fn on_complete(&mut self, trace: &ConvergenceTrace);

    /// Polled by the solvers once per iteration, *after*
    /// [`IterationObserver::on_iteration`]: returning `true` makes the
    /// solver stop at the current iterate and report
    /// [`StopReason::Aborted`]. This is the hook a solver watchdog uses to
    /// stop a divergent or over-budget solve without panicking.
    fn should_abort(&self) -> bool {
        false
    }
}

/// The do-nothing observer: `active()` is `false`, so instrumented solvers
/// run the exact same arithmetic as before instrumentation.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl IterationObserver for NoopObserver {
    fn active(&self) -> bool {
        false
    }

    fn on_iteration(&mut self, _event: &IterationEvent) {}

    fn on_complete(&mut self, _trace: &ConvergenceTrace) {}
}

/// Collects every event and the final trace in memory — the test/report
/// sink.
#[derive(Debug, Clone, Default)]
pub struct RecordingObserver {
    events: Vec<IterationEvent>,
    trace: Option<ConvergenceTrace>,
}

impl RecordingObserver {
    /// Creates an empty recorder.
    #[must_use]
    pub fn new() -> Self {
        RecordingObserver::default()
    }

    /// The recorded per-iteration events.
    #[must_use]
    pub fn events(&self) -> &[IterationEvent] {
        &self.events
    }

    /// The final trace, once the solve completed.
    #[must_use]
    pub fn trace(&self) -> Option<&ConvergenceTrace> {
        self.trace.as_ref()
    }

    /// The objective sequence, in iteration order.
    #[must_use]
    pub fn objectives(&self) -> Vec<f64> {
        self.events.iter().map(|e| e.objective).collect()
    }

    /// `true` when the objective sequence never rises by more than
    /// `rel_tol` of its running scale — the "monotone non-increasing up to
    /// numerical noise" check used by the convergence tests.
    #[must_use]
    pub fn objective_is_monotone(&self, rel_tol: f64) -> bool {
        self.events.windows(2).all(|w| {
            let scale = w[0].objective.abs().max(1.0);
            w[1].objective <= w[0].objective + rel_tol * scale
        })
    }
}

impl IterationObserver for RecordingObserver {
    fn on_iteration(&mut self, event: &IterationEvent) {
        self.events.push(*event);
    }

    fn on_complete(&mut self, trace: &ConvergenceTrace) {
        self.trace = Some(trace.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(iteration: usize, objective: f64) -> IterationEvent {
        IterationEvent {
            iteration,
            objective,
            residual: 0.0,
            step_size: None,
        }
    }

    #[test]
    fn recorder_collects_events_and_trace() {
        let mut rec = RecordingObserver::new();
        assert!(rec.active());
        rec.on_iteration(&event(1, 3.0));
        rec.on_iteration(&event(2, 2.0));
        let trace = ConvergenceTrace {
            solver: "test",
            iterations: 2,
            stop_reason: StopReason::Converged,
            wall_time: Duration::from_millis(1),
            converged: true,
            final_objective: 2.0,
            final_residual: 0.1,
        };
        rec.on_complete(&trace);
        assert_eq!(rec.events().len(), 2);
        assert_eq!(rec.objectives(), vec![3.0, 2.0]);
        assert_eq!(rec.trace(), Some(&trace));
        assert!(format!("{trace}").contains("stop=converged"));
    }

    #[test]
    fn monotone_check_tolerates_noise_but_rejects_rises() {
        let mut rec = RecordingObserver::new();
        rec.on_iteration(&event(1, 10.0));
        rec.on_iteration(&event(2, 10.0 + 1e-12));
        rec.on_iteration(&event(3, 5.0));
        assert!(rec.objective_is_monotone(1e-9));

        let mut bad = RecordingObserver::new();
        bad.on_iteration(&event(1, 1.0));
        bad.on_iteration(&event(2, 2.0));
        assert!(!bad.objective_is_monotone(1e-9));
    }

    #[test]
    fn noop_is_inactive() {
        let noop = NoopObserver;
        assert!(!noop.active());
    }

    #[test]
    fn stop_reason_strings_are_stable() {
        for (reason, s) in [
            (StopReason::Converged, "converged"),
            (StopReason::MaxIterations, "max_iterations"),
            (StopReason::Stagnated, "stagnated"),
            (StopReason::SupportExhausted, "support_exhausted"),
            (StopReason::Aborted, "aborted"),
        ] {
            assert_eq!(reason.as_str(), s);
        }
    }

    #[test]
    fn default_observers_never_abort() {
        assert!(!NoopObserver.should_abort());
        assert!(!RecordingObserver::new().should_abort());
    }
}
