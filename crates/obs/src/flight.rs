//! The flight recorder: fixed-size, lock-free per-shard ring buffers of
//! compact binary events, dumped as JSONL only on anomaly or on demand.
//!
//! Counters say *how often* a watchdog tripped; they cannot say what the
//! session was doing in the windows around the trip. The flight recorder
//! closes that gap at near-zero steady-state cost: every pipeline event
//! (ingest verdicts, stage transitions, shed decisions, ARQ verdicts,
//! ladder demotions, watchdog trips, commits) is packed into a 40-byte
//! slot of a per-shard ring. Rings are fixed-size — old events are
//! overwritten, never allocated past — and writes are plain atomics with
//! a per-slot seqlock version, so recording never takes a lock and a
//! concurrent dump skips (rather than tears) a slot mid-write.
//!
//! Recording is gated on [`crate::enabled`] exactly like spans: one
//! relaxed atomic load when telemetry is off.
//!
//! # The logical clock and deterministic dumps
//!
//! Every event carries a **logical stamp**: a deterministic tick assigned
//! by the ingest tier (the gateway ticks once per frame on its caller
//! thread) rather than a wall clock. Worker-side events (watchdog trips,
//! demotions) inherit the stamp of the window they belong to through a
//! thread-local [`EventContext`], so however many workers raced over the
//! batch, sorting a dump by `(logical, kind, session, code, arg, shard)`
//! yields the same event order for any worker count.
//!
//! # Anomalies
//!
//! A shed decision, a ladder demotion, or a watchdog trip marks the
//! recorder [`anomalous`](FlightRecorder::anomalous); callers dump
//! ([`FlightRecorder::dump_jsonl`]) only then — or on demand — keeping
//! the happy path write-only.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;

/// Shards in the process-global recorder (concurrency lanes, not gateway
/// shards — events route by `shard % SHARDS`).
const GLOBAL_SHARDS: usize = 8;
/// Events retained per shard of the process-global recorder.
const GLOBAL_CAPACITY: usize = 4096;

/// The event's type tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EventKind {
    /// A wire frame arrived at the gateway (code: ingest verdict).
    Ingest,
    /// A session changed lifecycle phase (code: new phase).
    StageTransition,
    /// Admission control shed a window to the cheap rung (code: cause).
    Shed,
    /// An ARQ decision on a sequence hole (code: verdict, arg: sequence).
    ArqVerdict,
    /// A ladder rung attempt failed (code: rung, arg: reason).
    Demotion,
    /// A solver watchdog fired (code: trip reason, arg: iteration).
    WatchdogTrip,
    /// A window committed to its ledger (code: rung, arg: sequence or
    /// `u64::MAX` when the header was lost).
    Commit,
    /// A journal checkpoint was written or restored (code: which, arg:
    /// journal event sequence number).
    Checkpoint,
    /// A recovery milestone (code: stage, arg: events replayed so far, or
    /// the journal byte offset for `torn_tail`).
    Recover,
    /// A network-ingest connection lifecycle step (code: step, arg:
    /// step-specific — the device id for `accept`/`hello_*`, the epoch
    /// offset for `timesync`, pending windows for `stall`/`shed`).
    Conn,
}

impl EventKind {
    /// Stable lower-snake identifier (used in dumps).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Ingest => "ingest",
            EventKind::StageTransition => "stage_transition",
            EventKind::Shed => "shed",
            EventKind::ArqVerdict => "arq_verdict",
            EventKind::Demotion => "demotion",
            EventKind::WatchdogTrip => "watchdog_trip",
            EventKind::Commit => "commit",
            EventKind::Checkpoint => "checkpoint",
            EventKind::Recover => "recover",
            EventKind::Conn => "conn",
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            EventKind::Ingest => 0,
            EventKind::StageTransition => 1,
            EventKind::Shed => 2,
            EventKind::ArqVerdict => 3,
            EventKind::Demotion => 4,
            EventKind::WatchdogTrip => 5,
            EventKind::Commit => 6,
            EventKind::Checkpoint => 7,
            EventKind::Recover => 8,
            EventKind::Conn => 9,
        }
    }

    fn from_u8(v: u8) -> Option<EventKind> {
        Some(match v {
            0 => EventKind::Ingest,
            1 => EventKind::StageTransition,
            2 => EventKind::Shed,
            3 => EventKind::ArqVerdict,
            4 => EventKind::Demotion,
            5 => EventKind::WatchdogTrip,
            6 => EventKind::Commit,
            7 => EventKind::Checkpoint,
            8 => EventKind::Recover,
            9 => EventKind::Conn,
            _ => return None,
        })
    }

    /// Stable name for a `code` value of this kind, when one is defined.
    #[must_use]
    pub fn code_name(self, code: u8) -> Option<&'static str> {
        let table: &[&'static str] = match self {
            EventKind::Ingest => &["accepted", "garbled", "late"],
            EventKind::StageTransition => &["handshake", "streaming", "repairing", "closed"],
            EventKind::Shed => &["quota", "queue"],
            EventKind::ArqVerdict => &["nack_queued", "resolved", "declared_lost"],
            EventKind::Demotion | EventKind::Commit => RUNGS,
            EventKind::WatchdogTrip => {
                &["non_finite", "diverged", "time_budget", "iteration_budget"]
            }
            EventKind::Checkpoint => &["written", "restored"],
            EventKind::Recover => &["started", "replayed", "complete", "torn_tail"],
            EventKind::Conn => CONN_STEPS,
        };
        table.get(code as usize).copied()
    }
}

/// Ladder rung names indexed by their stable codes (shared by
/// [`EventKind::Demotion`] and [`EventKind::Commit`]).
pub const RUNGS: &[&str] = &["hybrid", "cs_only", "lowres_only", "concealed"];

/// Demotion reason names indexed by their stable codes (the
/// [`EventKind::Demotion`] `arg`).
pub const DEMOTION_REASONS: &[&str] = &["decode_error", "watchdog", "non_finite", "shed"];

/// Connection lifecycle step names indexed by their stable codes (the
/// [`EventKind::Conn`] `code`).
pub const CONN_STEPS: &[&str] = &[
    "accept",
    "hello_ok",
    "hello_reject",
    "timesync",
    "stall",
    "shed",
    "timeout",
    "close",
];

/// The stable code for a demotion reason string (unknown reasons map to
/// `u8::MAX`).
#[must_use]
pub fn demotion_reason_code(reason: &str) -> u8 {
    DEMOTION_REASONS
        .iter()
        .position(|r| *r == reason)
        .map_or(u8::MAX, |i| i as u8)
}

/// One recorded event (the unpacked view of a 40-byte slot).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Deterministic ingest-tier stamp (0 when no context was active).
    pub logical: u64,
    /// Session id the event belongs to (0 when unknown).
    pub session: u64,
    /// Shard lane the event was recorded on.
    pub shard: u16,
    /// Type tag.
    pub kind: EventKind,
    /// Kind-specific code (see [`EventKind::code_name`]).
    pub code: u8,
    /// Kind-specific argument (sequence, iteration, reason code, …).
    pub arg: u64,
}

impl Event {
    /// The deterministic sort key dumps are ordered by.
    fn sort_key(&self) -> (u64, u8, u64, u8, u64, u16) {
        (
            self.logical,
            self.kind.as_u8(),
            self.session,
            self.code,
            self.arg,
            self.shard,
        )
    }
}

/// One seqlock-versioned slot: `version` is even when the fields are
/// stable; a writer bumps it odd, stores, bumps it even.
struct Slot {
    version: AtomicU64,
    meta: AtomicU64, // kind | code << 8 | shard << 16
    logical: AtomicU64,
    session: AtomicU64,
    arg: AtomicU64,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            version: AtomicU64::new(0),
            meta: AtomicU64::new(0),
            logical: AtomicU64::new(0),
            session: AtomicU64::new(0),
            arg: AtomicU64::new(0),
        }
    }
}

/// One shard's fixed-capacity ring.
struct Ring {
    slots: Vec<Slot>,
    /// Total events ever written; the write index is `head % capacity`.
    head: AtomicU64,
}

impl Ring {
    fn new(capacity: usize) -> Ring {
        Ring {
            slots: (0..capacity.max(1)).map(|_| Slot::new()).collect(),
            head: AtomicU64::new(0),
        }
    }

    fn record(&self, ev: &Event) {
        let n = self.head.fetch_add(1, Ordering::AcqRel);
        let slot = &self.slots[(n % self.slots.len() as u64) as usize];
        let meta =
            u64::from(ev.kind.as_u8()) | (u64::from(ev.code) << 8) | (u64::from(ev.shard) << 16);
        slot.version.fetch_add(1, Ordering::AcqRel); // odd: write in progress
        slot.meta.store(meta, Ordering::Relaxed);
        slot.logical.store(ev.logical, Ordering::Relaxed);
        slot.session.store(ev.session, Ordering::Relaxed);
        slot.arg.store(ev.arg, Ordering::Relaxed);
        slot.version.fetch_add(1, Ordering::Release); // even: stable
    }

    /// Reads every stable slot. Slots mid-write (odd or moving version)
    /// are skipped rather than returned torn.
    fn read_into(&self, out: &mut Vec<Event>) {
        let head = self.head.load(Ordering::Acquire);
        let filled = head.min(self.slots.len() as u64) as usize;
        for slot in &self.slots[..filled] {
            let v1 = slot.version.load(Ordering::Acquire);
            if v1 % 2 != 0 {
                continue;
            }
            let meta = slot.meta.load(Ordering::Relaxed);
            let logical = slot.logical.load(Ordering::Relaxed);
            let session = slot.session.load(Ordering::Relaxed);
            let arg = slot.arg.load(Ordering::Relaxed);
            if slot.version.load(Ordering::Acquire) != v1 {
                continue;
            }
            let Some(kind) = EventKind::from_u8((meta & 0xFF) as u8) else {
                continue;
            };
            out.push(Event {
                logical,
                session,
                shard: ((meta >> 16) & 0xFFFF) as u16,
                kind,
                code: ((meta >> 8) & 0xFF) as u8,
                arg,
            });
        }
    }
}

/// The recorder: one fixed-size ring per shard lane plus the anomaly
/// latch. See the [module docs](self) for the concurrency story.
pub struct FlightRecorder {
    rings: Vec<Ring>,
    anomaly: AtomicBool,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("shards", &self.rings.len())
            .field("capacity_per_shard", &self.rings[0].slots.len())
            .field("anomaly", &self.anomaly.load(Ordering::Relaxed))
            .finish()
    }
}

impl FlightRecorder {
    /// A recorder with `shards` independent rings of `capacity` events
    /// each (both clamped to ≥ 1). Memory is fixed at construction:
    /// `shards × capacity × 40` bytes.
    #[must_use]
    pub fn new(shards: usize, capacity: usize) -> FlightRecorder {
        FlightRecorder {
            rings: (0..shards.max(1)).map(|_| Ring::new(capacity)).collect(),
            anomaly: AtomicBool::new(false),
        }
    }

    /// Records one event on its shard's ring (lock-free; overwrites the
    /// oldest event when the ring is full). A shed, demotion, or watchdog
    /// trip also latches the anomaly flag.
    pub fn record(&self, ev: &Event) {
        self.rings[ev.shard as usize % self.rings.len()].record(ev);
        if matches!(
            ev.kind,
            EventKind::Shed | EventKind::Demotion | EventKind::WatchdogTrip
        ) {
            self.anomaly.store(true, Ordering::Relaxed);
        }
    }

    /// Whether an anomaly (shed / demotion / watchdog trip) was recorded
    /// since the last [`clear`](FlightRecorder::clear).
    #[must_use]
    pub fn anomalous(&self) -> bool {
        self.anomaly.load(Ordering::Relaxed)
    }

    /// Events overwritten (lost to wrap-around) across all rings.
    #[must_use]
    pub fn wrapped(&self) -> u64 {
        self.rings
            .iter()
            .map(|r| {
                r.head
                    .load(Ordering::Relaxed)
                    .saturating_sub(r.slots.len() as u64)
            })
            .sum()
    }

    /// Total events ever recorded across all rings.
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.rings
            .iter()
            .map(|r| r.head.load(Ordering::Relaxed))
            .sum()
    }

    /// Forgets everything: rewinds every ring and clears the anomaly
    /// latch (slot contents are left in place — a rewound ring simply
    /// stops exposing them).
    pub fn clear(&self) {
        for ring in &self.rings {
            ring.head.store(0, Ordering::Release);
        }
        self.anomaly.store(false, Ordering::Relaxed);
    }

    /// Every retained event, sorted by the deterministic dump key
    /// `(logical, kind, session, code, arg, shard)`.
    #[must_use]
    pub fn events(&self) -> Vec<Event> {
        let mut out = Vec::new();
        for ring in &self.rings {
            ring.read_into(&mut out);
        }
        out.sort_by_key(Event::sort_key);
        out
    }

    /// Renders the retained events as JSONL in the observability export
    /// schema: a `meta` first line, then one `flight_event` line per
    /// event in deterministic order. Validates against the same checker
    /// as every other export.
    #[must_use]
    pub fn dump_jsonl(&self, tag: &str) -> String {
        use crate::jsonl::escape;
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{{\"kind\":\"meta\",\"schema\":{},\"tag\":{},\"wrapped\":{},\"anomaly\":{}}}",
            crate::export::SCHEMA_VERSION,
            escape(tag),
            self.wrapped(),
            self.anomalous(),
        );
        for ev in self.events() {
            let code = match ev.kind.code_name(ev.code) {
                Some(name) => escape(name),
                None => format!("\"{}\"", ev.code),
            };
            let _ = write!(
                out,
                "{{\"kind\":\"flight_event\",\"event\":{},\"code\":{code},\
                 \"logical\":{},\"session\":{},\"shard\":{},\"arg\":{}",
                escape(ev.kind.name()),
                ev.logical,
                ev.session,
                ev.shard,
                ev.arg,
            );
            if ev.kind == EventKind::Demotion {
                let reason = DEMOTION_REASONS
                    .get(ev.arg as usize)
                    .copied()
                    .unwrap_or("unknown");
                let _ = write!(out, ",\"reason\":{}", escape(reason));
            }
            out.push_str("}\n");
        }
        out
    }
}

/// The process-global recorder every library emission lands in.
pub fn recorder() -> &'static FlightRecorder {
    static GLOBAL: OnceLock<FlightRecorder> = OnceLock::new();
    GLOBAL.get_or_init(|| FlightRecorder::new(GLOBAL_SHARDS, GLOBAL_CAPACITY))
}

/// The ambient attribution for events emitted below the ingest tier
/// (solver watchdogs, ladder commits): which window, session, and shard
/// the current thread is working for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventContext {
    /// Deterministic ingest stamp of the window being worked.
    pub logical: u64,
    /// Session id.
    pub session: u64,
    /// Shard lane.
    pub shard: u16,
}

thread_local! {
    static CONTEXT: Cell<Option<EventContext>> = const { Cell::new(None) };
}

/// Sets (or clears, with `None`) this thread's event context.
pub fn set_context(ctx: Option<EventContext>) {
    CONTEXT.with(|c| c.set(ctx));
}

/// This thread's current event context, if any.
#[must_use]
pub fn context() -> Option<EventContext> {
    CONTEXT.with(Cell::get)
}

/// Emits one event into the [global recorder](recorder) under the ambient
/// [`EventContext`] (zeros when none is set). One relaxed atomic load and
/// nothing else when telemetry is disabled.
pub fn emit(kind: EventKind, code: u8, arg: u64) {
    if !crate::enabled() {
        return;
    }
    let ctx = context().unwrap_or(EventContext {
        logical: 0,
        session: 0,
        shard: 0,
    });
    recorder().record(&Event {
        logical: ctx.logical,
        session: ctx.session,
        shard: ctx.shard,
        kind,
        code,
        arg,
    });
}

/// [`emit`] with an explicit context (used by the ingest tier, which
/// knows the attribution without thread-local plumbing).
pub fn emit_with(ctx: EventContext, kind: EventKind, code: u8, arg: u64) {
    if !crate::enabled() {
        return;
    }
    recorder().record(&Event {
        logical: ctx.logical,
        session: ctx.session,
        shard: ctx.shard,
        kind,
        code,
        arg,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(logical: u64, shard: u16, kind: EventKind, code: u8, arg: u64) -> Event {
        Event {
            logical,
            session: 7,
            shard,
            kind,
            code,
            arg,
        }
    }

    #[test]
    fn ring_wraps_and_counts_overwrites() {
        let rec = FlightRecorder::new(1, 8);
        for i in 0..20 {
            rec.record(&ev(i, 0, EventKind::Ingest, 0, i));
        }
        assert_eq!(rec.recorded(), 20);
        assert_eq!(rec.wrapped(), 12);
        let events = rec.events();
        assert_eq!(events.len(), 8);
        // Only the newest 8 events survive the wrap.
        let logicals: Vec<u64> = events.iter().map(|e| e.logical).collect();
        assert_eq!(logicals, (12..20).collect::<Vec<u64>>());
    }

    #[test]
    fn anomaly_latches_on_trip_demotion_shed_only() {
        let rec = FlightRecorder::new(2, 16);
        rec.record(&ev(1, 0, EventKind::Ingest, 0, 0));
        rec.record(&ev(1, 0, EventKind::Commit, 0, 0));
        assert!(!rec.anomalous());
        rec.record(&ev(2, 1, EventKind::WatchdogTrip, 2, 120));
        assert!(rec.anomalous());
        rec.clear();
        assert!(!rec.anomalous());
        assert!(rec.events().is_empty());
        rec.record(&ev(3, 0, EventKind::Shed, 0, 0));
        assert!(rec.anomalous());
    }

    #[test]
    fn events_sort_deterministically_regardless_of_write_order() {
        let forward = FlightRecorder::new(4, 64);
        let backward = FlightRecorder::new(4, 64);
        let mut all: Vec<Event> = (0..32)
            .map(|i| ev(i / 4, (i % 4) as u16, EventKind::Commit, (i % 3) as u8, i))
            .collect();
        for e in &all {
            forward.record(e);
        }
        all.reverse();
        for e in &all {
            backward.record(e);
        }
        assert_eq!(forward.events(), backward.events());
        assert_eq!(forward.dump_jsonl("t"), backward.dump_jsonl("t"));
    }

    #[test]
    fn concurrent_shard_writers_lose_nothing_within_capacity() {
        let rec = FlightRecorder::new(4, 4096);
        let threads = 8;
        let per_thread = 1000u64;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let rec = &rec;
                scope.spawn(move || {
                    for i in 0..per_thread {
                        rec.record(&Event {
                            logical: i,
                            session: t,
                            shard: (t % 4) as u16,
                            kind: EventKind::ArqVerdict,
                            code: (i % 3) as u8,
                            arg: i,
                        });
                    }
                });
            }
        });
        assert_eq!(rec.recorded(), threads * per_thread);
        assert_eq!(rec.wrapped(), 0);
        let events = rec.events();
        assert_eq!(events.len(), (threads * per_thread) as usize);
        // Every event reads back internally consistent.
        for e in &events {
            assert_eq!(e.kind, EventKind::ArqVerdict);
            assert_eq!(e.logical, e.arg);
            assert!(e.session < threads);
            assert_eq!(u64::from(e.shard), e.session % 4);
            assert_eq!(u64::from(e.code), e.arg % 3);
        }
    }

    #[test]
    fn dump_is_valid_jsonl_with_meta_first() {
        let rec = FlightRecorder::new(2, 16);
        rec.record(&ev(1, 0, EventKind::Ingest, 1, 5));
        rec.record(&ev(2, 1, EventKind::Demotion, 0, 1)); // hybrid, watchdog
        rec.record(&ev(2, 1, EventKind::WatchdogTrip, 3, 200));
        let dump = rec.dump_jsonl("unit");
        let mut lines = dump.lines();
        let meta = lines.next().unwrap();
        assert!(meta.contains("\"kind\":\"meta\""));
        assert!(meta.contains("\"anomaly\":true"));
        for line in dump.lines() {
            crate::jsonl::validate_line(line).unwrap_or_else(|e| panic!("{line}: {e}"));
        }
        assert!(dump.contains("\"event\":\"demotion\""));
        assert!(dump.contains("\"reason\":\"watchdog\""));
        assert!(dump.contains("\"code\":\"iteration_budget\""));
    }

    #[test]
    fn context_round_trips_per_thread() {
        set_context(Some(EventContext {
            logical: 9,
            session: 3,
            shard: 1,
        }));
        assert_eq!(context().map(|c| c.logical), Some(9));
        let other = std::thread::spawn(|| context().is_none()).join().unwrap();
        assert!(other, "context must be thread-local");
        set_context(None);
        assert!(context().is_none());
    }

    #[test]
    fn code_names_are_stable() {
        assert_eq!(EventKind::WatchdogTrip.code_name(2), Some("time_budget"));
        assert_eq!(EventKind::Shed.code_name(1), Some("queue"));
        assert_eq!(EventKind::Commit.code_name(3), Some("concealed"));
        assert_eq!(EventKind::Ingest.code_name(9), None);
        assert_eq!(EventKind::Checkpoint.code_name(0), Some("written"));
        assert_eq!(EventKind::Checkpoint.code_name(1), Some("restored"));
        assert_eq!(EventKind::Recover.code_name(0), Some("started"));
        assert_eq!(EventKind::Recover.code_name(2), Some("complete"));
        assert_eq!(EventKind::Recover.code_name(3), Some("torn_tail"));
        assert_eq!(EventKind::Conn.code_name(0), Some("accept"));
        assert_eq!(EventKind::Conn.code_name(2), Some("hello_reject"));
        assert_eq!(EventKind::Conn.code_name(4), Some("stall"));
        assert_eq!(EventKind::Conn.code_name(7), Some("close"));
        assert_eq!(EventKind::Conn.code_name(8), None);
        assert_eq!(demotion_reason_code("watchdog"), 1);
        assert_eq!(demotion_reason_code("nope"), u8::MAX);
    }

    #[test]
    fn conn_events_round_trip_without_latching_anomaly() {
        let rec = FlightRecorder::new(1, 16);
        rec.record(&ev(1, 0, EventKind::Conn, 0, 77)); // accept
        rec.record(&ev(2, 0, EventKind::Conn, 4, 12)); // backpressure stall
        let events = rec.events();
        assert_eq!(events[0].kind, EventKind::Conn);
        assert!(
            !rec.anomalous(),
            "connection lifecycle events are not anomalies"
        );
        let dump = rec.dump_jsonl("unit");
        for line in dump.lines() {
            crate::jsonl::validate_line(line).unwrap_or_else(|e| panic!("{line}: {e}"));
        }
        assert!(dump.contains("\"event\":\"conn\""));
        assert!(dump.contains("\"code\":\"stall\""));
    }

    #[test]
    fn checkpoint_and_recover_events_round_trip_the_ring() {
        let rec = FlightRecorder::new(1, 16);
        rec.record(&ev(1, 0, EventKind::Checkpoint, 0, 42));
        rec.record(&ev(2, 0, EventKind::Recover, 2, 7));
        let events = rec.events();
        assert_eq!(events[0].kind, EventKind::Checkpoint);
        assert_eq!(events[1].kind, EventKind::Recover);
        assert!(!rec.anomalous(), "durability events are not anomalies");
        let dump = rec.dump_jsonl("unit");
        for line in dump.lines() {
            crate::jsonl::validate_line(line).unwrap_or_else(|e| panic!("{line}: {e}"));
        }
        assert!(dump.contains("\"event\":\"checkpoint\""));
        assert!(dump.contains("\"code\":\"written\""));
        assert!(dump.contains("\"event\":\"recover\""));
        assert!(dump.contains("\"code\":\"complete\""));
    }
}
