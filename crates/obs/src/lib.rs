//! Hermetic observability layer for the hybridcs workspace.
//!
//! The paper's headline comparisons (96 vs 240 channels at SNR = 20 dB)
//! rest on solver convergence behaviour and per-stage cost, so this crate
//! makes both visible without breaking the workspace's offline-build
//! policy: it has **zero external dependencies** (no `tracing`, no
//! `metrics`, no `serde`) and consists of three layers:
//!
//! 1. a **metrics registry** ([`MetricsRegistry`]) — counters, gauges and
//!    log₂-bucketed histograms, keyed by name + label set. Handles are
//!    `Arc`-shared atomics, so recording never takes the registry lock
//!    ("lock-free-enough"): the lock guards only registration lookups.
//! 2. a **span/tracing API** ([`span!`]) — RAII guards feeding a
//!    thread-local event buffer with monotonic-clock timings, mirrored
//!    into `span_seconds{span=...}` histograms of the [`global()`]
//!    registry. Span collection is **off by default** (a single relaxed
//!    atomic load on the hot path) and opt-in via `HYBRIDCS_OBS=1` or
//!    [`set_enabled`].
//! 3. pluggable **sinks** — an in-memory [`Snapshot`] for tests, a
//!    human-readable text report ([`Snapshot::text_report`]), a JSONL
//!    exporter ([`export`]) writing under `results/obs/` so runs can be
//!    diffed across PRs, and a Prometheus-style text exposition
//!    ([`render_prometheus`]).
//!
//! On top of the registry sit the fleet-telemetry layers added for the
//! gateway: a lock-free [flight recorder](flight) of compact pipeline
//! events dumped only on anomaly, and a sliding-window [SLO engine](slo)
//! with multi-window error-budget burn-rate alerting over
//! [`Snapshot::delta`]s.
//!
//! Solver instrumentation lives in [`convergence`]: every solver in
//! `hybridcs-solver` accepts an [`IterationObserver`] and emits
//! per-iteration residual/objective/step-size events plus a final
//! [`ConvergenceTrace`] (iterations, stop reason, wall time).
//!
//! # Example
//!
//! ```
//! use hybridcs_obs::MetricsRegistry;
//!
//! let registry = MetricsRegistry::new();
//! let frames = registry.counter("frames_total", &[]);
//! frames.add(3);
//! let latency = registry.histogram("decode_seconds", &[("solver", "pdhg")]);
//! latency.record(0.125);
//!
//! let snapshot = registry.snapshot();
//! assert_eq!(snapshot.counter_value("frames_total", &[]), Some(3));
//! println!("{}", snapshot.text_report());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod convergence;
pub mod export;
pub mod expose;
pub mod flight;
pub mod jsonl;
mod registry;
pub mod slo;
pub mod span;

pub use convergence::{
    ConvergenceTrace, IterationEvent, IterationObserver, NoopObserver, RecordingObserver,
    StopReason,
};
pub use expose::render_prometheus;
pub use flight::{Event, EventContext, EventKind, FlightRecorder};
pub use registry::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricId, MetricsRegistry, Percentiles, Snapshot,
};
pub use slo::{AlertLevel, BurnPolicy, Objective, SloEngine, SloSpec, SloStatus};
pub use span::{drain_events, span_depth, SpanEvent, SpanGuard};

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// 0 = undecided (consult the environment), 1 = off, 2 = on.
static ENABLED: AtomicU8 = AtomicU8::new(0);

/// Whether span collection is enabled. The first call consults the
/// `HYBRIDCS_OBS` environment variable (any non-empty value other than
/// `"0"` enables); afterwards the decision is cached and costs one relaxed
/// atomic load. Metric instruments ([`Counter`], [`Gauge`], [`Histogram`])
/// are *always* live — only span timing collection is gated.
#[must_use]
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => {
            let on = std::env::var("HYBRIDCS_OBS")
                .map(|v| !v.is_empty() && v != "0")
                .unwrap_or(false);
            ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
            on
        }
    }
}

/// Programmatically enables or disables span collection, overriding the
/// environment.
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// The process-wide default registry. Library code (telemetry loss
/// counters, span histograms, bench samples) records here so examples and
/// binaries can snapshot one place without threading a registry handle
/// through every constructor.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_enabled_round_trips() {
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
    }

    #[test]
    fn global_registry_is_shared() {
        let c1 = global().counter("lib_test_shared", &[]);
        let c2 = global().counter("lib_test_shared", &[]);
        c1.add(2);
        c2.add(3);
        assert_eq!(c1.value(), 5);
    }
}
