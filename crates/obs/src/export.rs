//! The JSONL sink: serializes a registry [`Snapshot`] plus any
//! [`ConvergenceTrace`]s into one line-delimited JSON file under
//! `results/obs/` (override with `HYBRIDCS_OBS_DIR`), so runs can be
//! diffed across PRs with ordinary text tools.
//!
//! Schema (one object per line, `schema` version 1):
//!
//! ```text
//! {"kind":"meta","schema":1,"tag":"quickstart"}
//! {"kind":"counter","name":...,"labels":{...},"value":N}
//! {"kind":"gauge","name":...,"labels":{...},"value":X}
//! {"kind":"histogram","name":...,"labels":{...},"count":N,"sum":X,
//!  "min":X,"max":X,"p50":X,"p90":X,"p99":X,
//!  "buckets":[{"lo":X,"hi":X,"count":N},...]}
//! {"kind":"trace","solver":...,"iterations":N,"stop_reason":...,
//!  "wall_time_s":X,"converged":B,"final_objective":X,"final_residual":X}
//! ```

use crate::convergence::ConvergenceTrace;
use crate::jsonl::{escape, number};
use crate::registry::{HistogramSnapshot, MetricId, Snapshot};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Current JSONL schema version.
pub const SCHEMA_VERSION: u32 = 1;

/// The export directory: `HYBRIDCS_OBS_DIR` or `results/obs`.
#[must_use]
pub fn obs_dir() -> PathBuf {
    std::env::var_os("HYBRIDCS_OBS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results/obs"))
}

/// `<obs_dir>/<tag>.jsonl`.
#[must_use]
pub fn export_path(tag: &str) -> PathBuf {
    obs_dir().join(format!("{tag}.jsonl"))
}

fn labels_json(id: &MetricId) -> String {
    let pairs: Vec<String> = id
        .labels
        .iter()
        .map(|(k, v)| format!("{}:{}", escape(k), escape(v)))
        .collect();
    format!("{{{}}}", pairs.join(","))
}

fn histogram_json(id: &MetricId, h: &HistogramSnapshot) -> String {
    let buckets: Vec<String> = h
        .buckets
        .iter()
        .map(|b| {
            format!(
                "{{\"lo\":{},\"hi\":{},\"count\":{}}}",
                number(b.lo),
                number(b.hi),
                b.count
            )
        })
        .collect();
    format!(
        "{{\"kind\":\"histogram\",\"name\":{},\"labels\":{},\"count\":{},\"sum\":{},\
         \"min\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"buckets\":[{}]}}",
        escape(&id.name),
        labels_json(id),
        h.count,
        number(h.sum),
        number(h.min),
        number(h.max),
        number(h.quantile(0.5).unwrap_or(f64::NAN)),
        number(h.quantile(0.9).unwrap_or(f64::NAN)),
        number(h.quantile(0.99).unwrap_or(f64::NAN)),
        buckets.join(",")
    )
}

fn trace_json(t: &ConvergenceTrace) -> String {
    format!(
        "{{\"kind\":\"trace\",\"solver\":{},\"iterations\":{},\"stop_reason\":{},\
         \"wall_time_s\":{},\"converged\":{},\"final_objective\":{},\"final_residual\":{}}}",
        escape(t.solver),
        t.iterations,
        escape(t.stop_reason.as_str()),
        number(t.wall_time.as_secs_f64()),
        t.converged,
        number(t.final_objective),
        number(t.final_residual)
    )
}

/// Renders the whole report as JSONL text (one value per line).
#[must_use]
pub fn render_jsonl(tag: &str, snapshot: &Snapshot, traces: &[ConvergenceTrace]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"kind\":\"meta\",\"schema\":{SCHEMA_VERSION},\"tag\":{}}}\n",
        escape(tag)
    ));
    for (id, v) in &snapshot.counters {
        out.push_str(&format!(
            "{{\"kind\":\"counter\",\"name\":{},\"labels\":{},\"value\":{v}}}\n",
            escape(&id.name),
            labels_json(id)
        ));
    }
    for (id, v) in &snapshot.gauges {
        out.push_str(&format!(
            "{{\"kind\":\"gauge\",\"name\":{},\"labels\":{},\"value\":{}}}\n",
            escape(&id.name),
            labels_json(id),
            number(*v)
        ));
    }
    for (id, h) in &snapshot.histograms {
        out.push_str(&histogram_json(id, h));
        out.push('\n');
    }
    for t in traces {
        out.push_str(&trace_json(t));
        out.push('\n');
    }
    out
}

/// Writes the report to `path`, creating parent directories.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_jsonl(
    path: &Path,
    tag: &str,
    snapshot: &Snapshot,
    traces: &[ConvergenceTrace],
) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut file = std::fs::File::create(path)?;
    file.write_all(render_jsonl(tag, snapshot, traces).as_bytes())?;
    Ok(())
}

/// Convenience used by examples: when [`crate::enabled`], snapshot the
/// [global registry](crate::global) and write `<obs_dir>/<tag>.jsonl`,
/// returning the path written.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn export_global_if_enabled(
    tag: &str,
    traces: &[ConvergenceTrace],
) -> io::Result<Option<PathBuf>> {
    if !crate::enabled() {
        return Ok(None);
    }
    let path = export_path(tag);
    write_jsonl(&path, tag, &crate::global().snapshot(), traces)?;
    Ok(Some(path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convergence::StopReason;
    use crate::jsonl::validate_line;
    use crate::MetricsRegistry;
    use std::time::Duration;

    fn sample_report() -> String {
        let registry = MetricsRegistry::new();
        registry
            .counter("frames", &[("section", "cs\"quoted")])
            .add(4);
        registry.gauge("sigma", &[]).set(0.125);
        let h = registry.histogram("latency_seconds", &[("stage", "solve")]);
        h.record(0.001);
        h.record(0.004);
        h.record(1e-300); // underflow path
        let trace = ConvergenceTrace {
            solver: "pdhg",
            iterations: 120,
            stop_reason: StopReason::Converged,
            wall_time: Duration::from_millis(42),
            converged: true,
            final_objective: 3.25,
            final_residual: 1e-4,
        };
        render_jsonl("unit", &registry.snapshot(), &[trace])
    }

    #[test]
    fn every_rendered_line_is_valid_json() {
        let report = sample_report();
        assert!(report.lines().count() >= 5);
        for (i, line) in report.lines().enumerate() {
            validate_line(line).unwrap_or_else(|e| panic!("line {}: {e}\n{line}", i + 1));
        }
        assert!(report.contains("\"kind\":\"meta\""));
        assert!(report.contains("\"stop_reason\":\"converged\""));
    }

    #[test]
    fn write_jsonl_creates_directories() {
        let dir = std::env::temp_dir().join(format!(
            "hybridcs_obs_test_{}_{}",
            std::process::id(),
            // A per-test nonce without Instant/rand: the monotonic address
            // of a fresh allocation is unique enough inside one process.
            Box::into_raw(Box::new(0u8)) as usize
        ));
        let path = dir.join("nested").join("report.jsonl");
        let registry = MetricsRegistry::new();
        registry.counter("c", &[]).inc();
        write_jsonl(&path, "t", &registry.snapshot(), &[]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        for line in text.lines() {
            validate_line(line).unwrap();
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
