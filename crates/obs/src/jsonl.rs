//! A minimal JSON emitter and validator — just enough to write and check
//! the JSONL export format without pulling in `serde`.
//!
//! The emitter covers the subset the exporter needs (objects, arrays,
//! strings, finite numbers, booleans, null); the validator is a strict
//! recursive-descent parser over full JSON value grammar, used by the CI
//! gate to assert that exported reports parse.

/// Escapes a string into a JSON string literal (with quotes).
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders an `f64` as a JSON number; non-finite values become `null`
/// (JSON has no NaN/∞).
#[must_use]
pub fn number(v: f64) -> String {
    if v.is_finite() {
        // `{v}` is Rust's shortest round-trip formatting and always
        // contains a digit, so it is valid JSON.
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Validates that `line` is exactly one well-formed JSON value.
///
/// # Errors
///
/// Returns a human-readable description of the first syntax error.
pub fn validate_line(line: &str) -> Result<(), String> {
    let bytes = line.as_bytes();
    let mut pos = 0usize;
    parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected {lit:?} at offset {pos}", pos = *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos),
        Some(b't') => expect(b, pos, "true"),
        Some(b'f') => expect(b, pos, "false"),
        Some(b'n') => expect(b, pos, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(format!("unexpected byte {c:?} at offset {pos}", pos = *pos)),
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at offset {pos}", pos = *pos));
        }
        parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, ":")?;
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at offset {pos}", pos = *pos)),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at offset {pos}", pos = *pos)),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // opening quote
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            if !b.get(*pos).is_some_and(u8::is_ascii_hexdigit) {
                                return Err(format!("bad \\u escape at offset {pos}", pos = *pos));
                            }
                            *pos += 1;
                        }
                    }
                    _ => return Err(format!("bad escape at offset {pos}", pos = *pos)),
                }
            }
            c if c < 0x20 => {
                return Err(format!(
                    "raw control byte in string at offset {pos}",
                    pos = *pos
                ))
            }
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits = |b: &[u8], pos: &mut usize| -> usize {
        let from = *pos;
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        *pos - from
    };
    if digits(b, pos) == 0 {
        return Err(format!("expected digits at offset {pos}", pos = *pos));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if digits(b, pos) == 0 {
            return Err(format!(
                "expected fraction digits at offset {pos}",
                pos = *pos
            ));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if digits(b, pos) == 0 {
            return Err(format!(
                "expected exponent digits at offset {pos}",
                pos = *pos
            ));
        }
    }
    // Reject leading zeros like 012 (JSON forbids them).
    let text = &b[start..*pos];
    let unsigned = if text.first() == Some(&b'-') {
        &text[1..]
    } else {
        text
    };
    if unsigned.len() > 1 && unsigned[0] == b'0' && unsigned[1].is_ascii_digit() {
        return Err(format!("leading zero at offset {start}"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_lines() {
        for line in [
            "{}",
            "[]",
            "null",
            "-12.5e-3",
            r#"{"kind":"counter","name":"a_b","labels":{"k":"v"},"value":3}"#,
            r#"{"nested":[1,2,{"x":null}],"ok":true,"s":"q\"uote\\n"}"#,
            r#"  {"padded": 1}  "#,
        ] {
            validate_line(line).unwrap_or_else(|e| panic!("{line}: {e}"));
        }
    }

    #[test]
    fn rejects_invalid_lines() {
        for line in [
            "",
            "{",
            "{'single':1}",
            r#"{"a":}"#,
            r#"{"a":1,}"#,
            "NaN",
            "01",
            "1.",
            "1e",
            "\"unterminated",
            r#"{"a":1} extra"#,
        ] {
            assert!(validate_line(line).is_err(), "accepted: {line}");
        }
    }

    #[test]
    fn escape_round_trips_through_validator() {
        let hostile = "quote\" backslash\\ newline\n tab\t ctrl\u{1}";
        let line = format!("{{{}:{}}}", escape("key"), escape(hostile));
        validate_line(&line).unwrap();
    }

    #[test]
    fn number_formats_non_finite_as_null() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
        validate_line(&number(1e-300)).unwrap();
    }
}
