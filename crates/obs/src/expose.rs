//! Prometheus-style text exposition of a registry [`Snapshot`].
//!
//! Renders the classic text format (`# TYPE` headers, `name{k="v"} value`
//! samples, cumulative `_bucket{le="…"}` series plus `_sum`/`_count` for
//! histograms) so any off-the-shelf scraper — or `grep` — can consume the
//! metrics without this crate growing a network dependency. Callers decide
//! the transport: write the string to a file, serve it, or print it.
//!
//! Determinism: [`Snapshot`]s are sorted by metric id, and this renderer
//! adds nothing non-deterministic, so two identical snapshots render to
//! byte-identical expositions (the property the soak's telemetry
//! determinism check rides on).

use crate::registry::{HistogramSnapshot, MetricId, Snapshot};
use std::fmt::Write;

/// Escapes a label value per the exposition format (backslash, quote,
/// newline).
fn label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Renders `{k="v",...}` (empty string for no labels), with an optional
/// extra pair appended (used for `le`).
fn labels(id: &MetricId, extra: Option<(&str, &str)>) -> String {
    let mut pairs: Vec<String> = id
        .labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", label_value(v)))
        .collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{}\"", label_value(v)));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

/// A float in exposition syntax (`+Inf`/`-Inf`/`NaN` spellings).
fn float(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

fn write_histogram(out: &mut String, id: &MetricId, h: &HistogramSnapshot) {
    // Exposition histograms are cumulative: each `le` bucket counts every
    // sample at or below its bound. Underflow samples are ≤ every bound;
    // overflow samples only reach `+Inf`.
    let mut cumulative = h.underflow;
    for b in &h.buckets {
        cumulative += b.count;
        let le = float(b.hi);
        let _ = writeln!(
            out,
            "{}_bucket{} {cumulative}",
            id.name,
            labels(id, Some(("le", &le)))
        );
    }
    let _ = writeln!(
        out,
        "{}_bucket{} {}",
        id.name,
        labels(id, Some(("le", "+Inf"))),
        h.count
    );
    let _ = writeln!(out, "{}_sum{} {}", id.name, labels(id, None), float(h.sum));
    let _ = writeln!(out, "{}_count{} {}", id.name, labels(id, None), h.count);
}

/// Renders the whole snapshot in the Prometheus text exposition format.
/// `# TYPE` headers are emitted once per metric name, before its first
/// sample; output order follows the snapshot's deterministic id order.
#[must_use]
pub fn render_prometheus(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    let mut typed: Option<&str> = None;
    let type_line = |out: &mut String, name: &str, kind: &str, typed: &mut Option<&str>| {
        if *typed != Some(name) {
            let _ = writeln!(out, "# TYPE {name} {kind}");
        }
    };
    for (id, v) in &snapshot.counters {
        type_line(&mut out, &id.name, "counter", &mut typed);
        typed = Some(&id.name);
        let _ = writeln!(out, "{}{} {v}", id.name, labels(id, None));
    }
    typed = None;
    for (id, v) in &snapshot.gauges {
        type_line(&mut out, &id.name, "gauge", &mut typed);
        typed = Some(&id.name);
        let _ = writeln!(out, "{}{} {}", id.name, labels(id, None), float(*v));
    }
    typed = None;
    for (id, h) in &snapshot.histograms {
        type_line(&mut out, &id.name, "histogram", &mut typed);
        typed = Some(&id.name);
        write_histogram(&mut out, id, h);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRegistry;

    #[test]
    fn renders_counters_gauges_histograms() {
        let registry = MetricsRegistry::new();
        registry
            .counter("frames_total", &[("verdict", "accepted")])
            .add(7);
        registry
            .counter("frames_total", &[("verdict", "late")])
            .add(1);
        registry.gauge("workers", &[]).set(4.0);
        let h = registry.histogram("commit_seconds", &[]);
        h.record(0.01);
        h.record(0.02);
        h.record(1e300); // overflow: only the +Inf bucket sees it
        let text = render_prometheus(&registry.snapshot());

        assert!(text.contains("# TYPE frames_total counter"));
        // One TYPE header even with two labelled series.
        assert_eq!(text.matches("# TYPE frames_total").count(), 1);
        assert!(text.contains("frames_total{verdict=\"accepted\"} 7"));
        assert!(text.contains("frames_total{verdict=\"late\"} 1"));
        assert!(text.contains("# TYPE workers gauge"));
        assert!(text.contains("workers 4"));
        assert!(text.contains("# TYPE commit_seconds histogram"));
        assert!(text.contains("commit_seconds_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("commit_seconds_count 3"));
        assert!(text.contains("commit_seconds_sum"));
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let registry = MetricsRegistry::new();
        let h = registry.histogram("lat", &[]);
        h.record(1.0);
        h.record(2.0);
        h.record(4.0);
        let text = render_prometheus(&registry.snapshot());
        let counts: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("lat_bucket"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]), "{counts:?}");
        assert_eq!(*counts.last().unwrap(), 3);
    }

    #[test]
    fn label_values_are_escaped() {
        let registry = MetricsRegistry::new();
        registry.counter("c", &[("k", "a\"b\\c\nd")]).inc();
        let text = render_prometheus(&registry.snapshot());
        assert!(text.contains(r#"c{k="a\"b\\c\nd"} 1"#));
    }

    #[test]
    fn identical_snapshots_render_identically() {
        let registry = MetricsRegistry::new();
        registry.counter("a", &[]).inc();
        registry.histogram("h", &[]).record(0.5);
        let s = registry.snapshot();
        assert_eq!(render_prometheus(&s), render_prometheus(&s.clone()));
    }
}
