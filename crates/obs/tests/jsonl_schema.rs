//! The CI gate's JSONL checker (see `scripts/ci.sh`): validates that an
//! exported observability report parses as line-delimited JSON and carries
//! the schema meta line.

use hybridcs_obs::jsonl::validate_line;

/// Validates one report's text; returns the number of lines checked.
fn check_report(text: &str) -> usize {
    let mut lines = 0;
    for (i, line) in text.lines().enumerate() {
        validate_line(line).unwrap_or_else(|e| panic!("line {}: {e}\n{line}", i + 1));
        lines += 1;
    }
    assert!(lines >= 1, "report is empty");
    assert!(
        text.lines().next().unwrap().contains("\"kind\":\"meta\""),
        "first line must be the schema meta record"
    );
    lines
}

/// When `HYBRIDCS_OBS_CHECK` points at a file (ci.sh sets it right after
/// running an obs-enabled example), strictly validate that file; otherwise
/// the test passes vacuously so plain `cargo test` stays hermetic.
#[test]
fn exported_report_parses() {
    let Ok(path) = std::env::var("HYBRIDCS_OBS_CHECK") else {
        return;
    };
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {path}: {e} (did the obs-enabled run happen?)"));
    let lines = check_report(&text);
    println!("validated {lines} JSONL lines in {path}");
}

/// The checker itself is exercised hermetically against a freshly rendered
/// report, so the gate cannot rot while the env-driven path is dormant.
#[test]
fn freshly_rendered_report_parses() {
    let registry = hybridcs_obs::MetricsRegistry::new();
    registry.counter("c", &[("k", "v")]).add(1);
    registry.histogram("h", &[]).record(0.5);
    let text = hybridcs_obs::export::render_jsonl("self_test", &registry.snapshot(), &[]);
    assert!(check_report(&text) >= 3);
}
