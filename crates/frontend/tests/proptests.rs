//! Property-based tests for the acquisition front-end models.

use hybridcs_frontend::{
    ChippingSequence, LowResChannel, MeasurementQuantizer, Quantizer, QuantizerKind, Rmpi,
    RmpiConfig, SensingMatrix,
};
use hybridcs_linalg::vector;
use proptest::prelude::*;

proptest! {
    /// Floor quantizers certify their cell for every in-span input, at
    /// every supported resolution and span.
    #[test]
    fn quantizer_cells_contain_inputs(
        bits in 1u32..=16,
        x in prop::collection::vec(-0.999..0.999f64, 1..64),
    ) {
        let q = Quantizer::new(bits, -1.0, 1.0, QuantizerKind::Floor).unwrap();
        for &v in &x {
            let code = q.quantize(v);
            let (lo, hi) = q.cell_bounds(code);
            prop_assert!(lo - 1e-12 <= v && v <= hi + 1e-12);
        }
    }

    /// Quantize→dequantize error is below one step (floor) or half a step
    /// (mid-tread).
    #[test]
    fn quantizer_error_bounds(bits in 2u32..=14, v in -0.999..0.999f64) {
        let floor = Quantizer::new(bits, -1.0, 1.0, QuantizerKind::Floor).unwrap();
        prop_assert!((v - floor.dequantize(floor.quantize(v))).abs() <= floor.step() + 1e-12);
        let mid = Quantizer::new(bits, -1.0, 1.0, QuantizerKind::MidTread).unwrap();
        prop_assert!((v - mid.dequantize(mid.quantize(v))).abs() <= mid.step() / 2.0 + 1e-12);
    }

    /// Quantization is monotone: x <= y implies code(x) <= code(y).
    #[test]
    fn quantizer_is_monotone(bits in 1u32..=12, a in -2.0..2.0f64, b in -2.0..2.0f64) {
        let q = Quantizer::new(bits, -1.0, 1.0, QuantizerKind::Floor).unwrap();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(q.quantize(lo) <= q.quantize(hi));
    }

    /// Chipping integration equals the dot product with the chip vector.
    #[test]
    fn chipping_integrate_is_dot(seed in any::<u64>(), x in prop::collection::vec(-5.0..5.0f64, 32)) {
        let seq = ChippingSequence::bernoulli(32, seed);
        let direct = seq.integrate(&x);
        let dot = vector::dot(seq.chips(), &x);
        prop_assert!((direct - dot).abs() < 1e-12);
    }

    /// The RMPI's checked acquisition path agrees with the raw sensing
    /// operator up to the digitizer's worst-case error.
    #[test]
    fn rmpi_acquire_matches_measure(
        seed in any::<u64>(),
        x in prop::collection::vec(-1.0..1.0f64, 64),
    ) {
        let rmpi = Rmpi::new(RmpiConfig {
            channels: 16,
            window: 64,
            seed,
            amplifier_noise_rms: 0.0,
            ..RmpiConfig::default()
        })
        .unwrap();
        let clean = rmpi.measure(&x);
        let acquired = rmpi.acquire(&x, 0).unwrap();
        let step = rmpi.digitizer().step();
        for (c, a) in clean.iter().zip(&acquired) {
            prop_assert!((c - a).abs() <= step / 2.0 + 1e-12);
        }
    }

    /// Sensing matrices regenerate identically from their seed, for both
    /// families, under arbitrary shapes.
    #[test]
    fn sensing_regeneration(seed in any::<u64>(), m in 1usize..20, extra in 0usize..40) {
        let n = m + extra.max(1);
        let a = SensingMatrix::bernoulli(m, n, seed).unwrap();
        let b = SensingMatrix::bernoulli(m, n, seed).unwrap();
        prop_assert_eq!(&a, &b);
        let d = (m).min(4).max(1);
        let s1 = SensingMatrix::sparse_binary(m, n, d, seed).unwrap();
        let s2 = SensingMatrix::sparse_binary(m, n, d, seed).unwrap();
        prop_assert_eq!(s1, s2);
    }

    /// Low-res frames survive the code round-trip for any in-span window.
    #[test]
    fn lowres_frame_code_roundtrip(
        bits in 3u32..=10,
        x in prop::collection::vec(-5.0..5.0f64, 1..128),
    ) {
        let channel = LowResChannel::new(bits).unwrap();
        let frame = channel.acquire(&x);
        let rebuilt = hybridcs_frontend::LowResFrame::from_codes(
            frame.codes().to_vec(),
            &channel,
        )
        .unwrap();
        prop_assert_eq!(frame, rebuilt);
    }

    /// The measurement digitizer's σ model upper-bounds the realized error
    /// for in-scale vectors (up to the uniform-vs-worst-case √3 factor).
    #[test]
    fn measurement_sigma_bounds_error(y in prop::collection::vec(-2.0..2.0f64, 1..64)) {
        let mq = MeasurementQuantizer::new(12, 2.5).unwrap();
        let yq = mq.digitize(&y);
        let err = vector::dist2(&y, &yq);
        prop_assert!(err <= mq.noise_sigma(y.len()) * 3f64.sqrt() + 1e-12);
    }
}
