//! Property-based tests for the acquisition front-end models, on the
//! in-repo `hybridcs_rand::check` harness (≥ 64 seeded cases each).

use hybridcs_frontend::{
    ChippingSequence, LowResChannel, MeasurementQuantizer, Quantizer, QuantizerKind, Rmpi,
    RmpiConfig, SensingMatrix,
};
use hybridcs_linalg::vector;
use hybridcs_rand::check::{check, f64_in, u32_in, u64_any, usize_in, vec_of, zip2, zip3};
use hybridcs_rand::{prop_assert, prop_assert_eq};

/// Floor quantizers certify their cell for every in-span input, at
/// every supported resolution and span.
#[test]
fn quantizer_cells_contain_inputs() {
    check(
        "quantizer_cells_contain_inputs",
        &zip2(u32_in(1, 17), vec_of(f64_in(-0.999, 0.999), 1, 64)),
        |(bits, x)| {
            let q = Quantizer::new(*bits, -1.0, 1.0, QuantizerKind::Floor).unwrap();
            for &v in x {
                let code = q.quantize(v);
                let (lo, hi) = q.cell_bounds(code);
                prop_assert!(
                    lo - 1e-12 <= v && v <= hi + 1e-12,
                    "{v} outside [{lo}, {hi}]"
                );
            }
            Ok(())
        },
    );
}

/// Quantize→dequantize error is below one step (floor) or half a step
/// (mid-tread).
#[test]
fn quantizer_error_bounds() {
    check(
        "quantizer_error_bounds",
        &zip2(u32_in(2, 15), f64_in(-0.999, 0.999)),
        |(bits, v)| {
            let floor = Quantizer::new(*bits, -1.0, 1.0, QuantizerKind::Floor).unwrap();
            prop_assert!((v - floor.dequantize(floor.quantize(*v))).abs() <= floor.step() + 1e-12);
            let mid = Quantizer::new(*bits, -1.0, 1.0, QuantizerKind::MidTread).unwrap();
            prop_assert!((v - mid.dequantize(mid.quantize(*v))).abs() <= mid.step() / 2.0 + 1e-12);
            Ok(())
        },
    );
}

/// Quantization is monotone: x <= y implies code(x) <= code(y).
#[test]
fn quantizer_is_monotone() {
    check(
        "quantizer_is_monotone",
        &zip3(u32_in(1, 13), f64_in(-2.0, 2.0), f64_in(-2.0, 2.0)),
        |(bits, a, b)| {
            let q = Quantizer::new(*bits, -1.0, 1.0, QuantizerKind::Floor).unwrap();
            let (lo, hi) = if a <= b { (*a, *b) } else { (*b, *a) };
            prop_assert!(q.quantize(lo) <= q.quantize(hi));
            Ok(())
        },
    );
}

/// Chipping integration equals the dot product with the chip vector.
#[test]
fn chipping_integrate_is_dot() {
    check(
        "chipping_integrate_is_dot",
        &zip2(u64_any(), vec_of(f64_in(-5.0, 5.0), 32, 33)),
        |(seed, x)| {
            let seq = ChippingSequence::bernoulli(32, *seed);
            let direct = seq.integrate(x);
            let dot = vector::dot(&seq.chips(), x);
            prop_assert!((direct - dot).abs() < 1e-12, "{direct} vs {dot}");
            Ok(())
        },
    );
}

/// The bit-packed sensing fast path matches the unpacked f64-chip
/// reference to 0 ULP — forward and adjoint — across seeded chip
/// sequences, and the adjoint identity ⟨Φx, y⟩ ≈ ⟨x, Φᵀy⟩ still holds.
#[test]
fn packed_sensing_matches_unpacked_to_zero_ulp() {
    check(
        "packed_sensing_matches_unpacked_to_zero_ulp",
        &zip3(
            u64_any(),
            usize_in(1, 24),
            vec_of(f64_in(-5.0, 5.0), 130, 131),
        ),
        |(seed, m, x)| {
            // n = 130 crosses a u64 word boundary with a partial tail word.
            let n = x.len();
            let phi = SensingMatrix::bernoulli(*m, n, *seed).unwrap();
            let reference = phi.to_unpacked().unwrap();
            let mut fast = vec![0.0; *m];
            let mut slow = vec![0.0; *m];
            phi.apply_into(x, &mut fast);
            reference.apply_into(x, &mut slow);
            for (a, b) in fast.iter().zip(&slow) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
            let y: Vec<f64> = (0..*m).map(|i| (i as f64 * 0.7).cos() * 2.0).collect();
            let mut fast_t = vec![0.0; n];
            let mut slow_t = vec![0.0; n];
            phi.apply_adjoint_into(&y, &mut fast_t);
            reference.apply_adjoint_into(&y, &mut slow_t);
            for (a, b) in fast_t.iter().zip(&slow_t) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
            let lhs = vector::dot(&fast, &y);
            let rhs = vector::dot(x, &fast_t);
            prop_assert!(
                (lhs - rhs).abs() < 1e-9 * lhs.abs().max(1.0),
                "adjoint identity broke: {lhs} vs {rhs}"
            );
            Ok(())
        },
    );
}

/// The RMPI's checked acquisition path agrees with the raw sensing
/// operator up to the digitizer's worst-case error.
#[test]
fn rmpi_acquire_matches_measure() {
    check(
        "rmpi_acquire_matches_measure",
        &zip2(u64_any(), vec_of(f64_in(-1.0, 1.0), 64, 65)),
        |(seed, x)| {
            let rmpi = Rmpi::new(RmpiConfig {
                channels: 16,
                window: 64,
                seed: *seed,
                amplifier_noise_rms: 0.0,
                ..RmpiConfig::default()
            })
            .unwrap();
            let clean = rmpi.measure(x);
            let acquired = rmpi.acquire(x, 0).unwrap();
            let step = rmpi.digitizer().step();
            for (c, a) in clean.iter().zip(&acquired) {
                prop_assert!((c - a).abs() <= step / 2.0 + 1e-12, "{c} vs {a}");
            }
            Ok(())
        },
    );
}

/// Sensing matrices regenerate identically from their seed, for both
/// families, under arbitrary shapes.
#[test]
fn sensing_regeneration() {
    check(
        "sensing_regeneration",
        &zip3(u64_any(), usize_in(1, 20), usize_in(0, 40)),
        |(seed, m, extra)| {
            let n = m + (*extra).max(1);
            let a = SensingMatrix::bernoulli(*m, n, *seed).unwrap();
            let b = SensingMatrix::bernoulli(*m, n, *seed).unwrap();
            prop_assert_eq!(&a, &b);
            let d = (*m).clamp(1, 4);
            let s1 = SensingMatrix::sparse_binary(*m, n, d, *seed).unwrap();
            let s2 = SensingMatrix::sparse_binary(*m, n, d, *seed).unwrap();
            prop_assert_eq!(s1, s2);
            Ok(())
        },
    );
}

/// Low-res frames survive the code round-trip for any in-span window.
#[test]
fn lowres_frame_code_roundtrip() {
    check(
        "lowres_frame_code_roundtrip",
        &zip2(u32_in(3, 11), vec_of(f64_in(-5.0, 5.0), 1, 128)),
        |(bits, x)| {
            let channel = LowResChannel::new(*bits).unwrap();
            let frame = channel.acquire(x);
            let rebuilt =
                hybridcs_frontend::LowResFrame::from_codes(frame.codes().to_vec(), &channel)
                    .unwrap();
            prop_assert_eq!(frame, rebuilt);
            Ok(())
        },
    );
}

/// The measurement digitizer's σ model upper-bounds the realized error
/// for in-scale vectors (up to the uniform-vs-worst-case √3 factor).
#[test]
fn measurement_sigma_bounds_error() {
    check(
        "measurement_sigma_bounds_error",
        &vec_of(f64_in(-2.0, 2.0), 1, 64),
        |y| {
            let mq = MeasurementQuantizer::new(12, 2.5).unwrap();
            let yq = mq.digitize(y);
            let err = vector::dist2(y, &yq);
            prop_assert!(
                err <= mq.noise_sigma(y.len()) * 3f64.sqrt() + 1e-12,
                "error {err} exceeds budget"
            );
            Ok(())
        },
    );
}
