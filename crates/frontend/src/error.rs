use std::error::Error;
use std::fmt;

/// Errors produced by the acquisition front-end models.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FrontEndError {
    /// A quantizer/ADC/RMPI parameter was outside its valid range.
    BadParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Value supplied (cast to f64 for reporting).
        value: f64,
    },
    /// A signal did not match the configured processing-window length.
    WindowMismatch {
        /// Window length the front end was built for.
        expected: usize,
        /// Length actually supplied.
        actual: usize,
    },
}

impl fmt::Display for FrontEndError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrontEndError::BadParameter { name, value } => {
                write!(f, "parameter {name} out of range: {value}")
            }
            FrontEndError::WindowMismatch { expected, actual } => write!(
                f,
                "window length mismatch: front end configured for {expected}, got {actual}"
            ),
        }
    }
}

impl Error for FrontEndError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = FrontEndError::WindowMismatch {
            expected: 512,
            actual: 100,
        };
        assert!(e.to_string().contains("512"));
        assert!(e.to_string().contains("100"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FrontEndError>();
    }
}
