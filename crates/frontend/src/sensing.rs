use crate::{ChippingSequence, FrontEndError};
use hybridcs_linalg::Matrix;
use hybridcs_rand::{Rng, SeedableRng};

/// A compressed-sensing measurement operator `Φ ∈ R^{m×n}` with fast
/// forward/adjoint application.
///
/// Two constructions are provided:
///
/// * [`SensingMatrix::bernoulli`] — dense `±1/√n` entries. This is the exact
///   behavioural model of the RMPI: row `i` is channel `i`'s chipping
///   sequence, normalized so rows have unit ℓ₂ norm.
/// * [`SensingMatrix::sparse_binary`] — each column carries `d` ones
///   (scaled `1/√d`) at random positions: the hardware-friendly digital-CS
///   matrix of the authors' earlier TBME 2011 work, used here in the
///   sensing-matrix ablation.
///
/// # Example
///
/// ```
/// use hybridcs_frontend::SensingMatrix;
///
/// # fn main() -> Result<(), hybridcs_frontend::FrontEndError> {
/// let phi = SensingMatrix::bernoulli(16, 64, 3)?;
/// let x = vec![1.0; 64];
/// let y = phi.apply(&x);
/// assert_eq!(y.len(), 16);
/// let xt = phi.apply_adjoint(&y);
/// assert_eq!(xt.len(), 64);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SensingMatrix {
    m: usize,
    n: usize,
    kind: Kind,
}

#[derive(Debug, Clone, PartialEq)]
enum Kind {
    /// Dense rows of ±scale.
    DenseBernoulli {
        /// Per-row chipping sequences (values ±1), scaled on application.
        rows: Vec<ChippingSequence>,
        /// Column-nibble planes for groups of four rows: in plane `g`,
        /// bit `4·(j mod 16) + r` of word `j / 16` is the sign bit of
        /// row `4g + r` at column `j`. Precomputed so the adjoint reads
        /// the four sign bits of a column in one nibble instead of
        /// gathering them from four row bitplanes.
        nibbles: Vec<Vec<u64>>,
        scale: f64,
    },
    /// Column-sparse binary: `cols[j]` lists the rows holding `scale`.
    SparseBinary { cols: Vec<Vec<u32>>, scale: f64 },
}

/// The 16 signed sums `((±w₀ ± w₁) ± w₂) ± w₃` indexed by sign nibble (bit
/// `r` set ⇔ term `r` negated). Negation of an f64 is exact, so entry
/// `idx` is bit-identical to evaluating the grouped expression with chips
/// `c_r = ±1` multiplied in (`±1·w` is exactly `±w`).
#[inline]
fn sign_table(w: [f64; 4]) -> [f64; 16] {
    let mut t = [0.0; 16];
    for (idx, slot) in t.iter_mut().enumerate() {
        let s0 = if idx & 1 == 0 { w[0] } else { -w[0] };
        let s1 = if idx & 2 == 0 { w[1] } else { -w[1] };
        let s2 = if idx & 4 == 0 { w[2] } else { -w[2] };
        let s3 = if idx & 8 == 0 { w[3] } else { -w[3] };
        *slot = ((s0 + s1) + s2) + s3;
    }
    t
}

/// Builds the column-nibble planes from the row sign bitplanes.
fn nibble_planes(rows: &[ChippingSequence], n: usize) -> Vec<Vec<u64>> {
    rows.chunks_exact(4)
        .map(|quad| {
            let mut words = vec![0u64; n.div_ceil(16)];
            for (r, row) in quad.iter().enumerate() {
                for (j, word) in words.iter_mut().enumerate() {
                    // 16 sign bits feeding word `j` of the plane.
                    let part = row.sign_words()[j / 4] >> (16 * (j % 4));
                    let mut spread = 0u64;
                    for b in 0..16 {
                        spread |= ((part >> b) & 1) << (4 * b);
                    }
                    *word |= spread << r;
                }
            }
            words
        })
        .collect()
}

impl SensingMatrix {
    /// Dense `±1/√n` Bernoulli matrix with `m` rows (RMPI channels) over a
    /// window of `n` samples. Row `i` uses the chipping seed `seed + i`, so
    /// the decoder can regenerate `Φ` from `(m, n, seed)` alone.
    ///
    /// # Errors
    ///
    /// Returns [`FrontEndError::BadParameter`] when `m == 0`, `n == 0` or
    /// `m > n`.
    pub fn bernoulli(m: usize, n: usize, seed: u64) -> Result<Self, FrontEndError> {
        check_shape(m, n)?;
        let rows: Vec<ChippingSequence> = (0..m)
            .map(|i| ChippingSequence::bernoulli(n, seed.wrapping_add(i as u64)))
            .collect();
        let nibbles = nibble_planes(&rows, n);
        Ok(SensingMatrix {
            m,
            n,
            kind: Kind::DenseBernoulli {
                rows,
                nibbles,
                scale: 1.0 / (n as f64).sqrt(),
            },
        })
    }

    /// Column-sparse binary matrix: every column holds exactly
    /// `ones_per_column` entries of `1/√d` at seeded random rows (without
    /// replacement within a column).
    ///
    /// # Errors
    ///
    /// Returns [`FrontEndError::BadParameter`] for degenerate shapes or when
    /// `ones_per_column` is 0 or exceeds `m`.
    pub fn sparse_binary(
        m: usize,
        n: usize,
        ones_per_column: usize,
        seed: u64,
    ) -> Result<Self, FrontEndError> {
        check_shape(m, n)?;
        if ones_per_column == 0 || ones_per_column > m {
            return Err(FrontEndError::BadParameter {
                name: "ones_per_column",
                value: ones_per_column as f64,
            });
        }
        let mut rng = hybridcs_rand::rngs::StdRng::seed_from_u64(seed);
        let cols = (0..n)
            .map(|_| sample_without_replacement(&mut rng, m, ones_per_column))
            .collect();
        Ok(SensingMatrix {
            m,
            n,
            kind: Kind::SparseBinary {
                cols,
                scale: 1.0 / (ones_per_column as f64).sqrt(),
            },
        })
    }

    /// Number of measurements (rows).
    #[must_use]
    pub fn measurements(&self) -> usize {
        self.m
    }

    /// Window length (columns).
    #[must_use]
    pub fn window(&self) -> usize {
        self.n
    }

    /// Forward application `y = Φx`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.window()`.
    #[must_use]
    pub fn apply(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.m];
        self.apply_into(x, &mut y);
        y
    }

    /// Allocation-free forward application `out = Φx`.
    ///
    /// Accumulation order (shared with [`UnpackedBernoulli::apply_into`],
    /// which is what makes the 0-ULP equivalence contract hold): each row
    /// folds columns in ascending groups of four, `acc += ((s₀+s₁)+s₂)+s₃`
    /// with `s_r = ±x[4g+r]`, then any `n mod 4` tail columns one at a
    /// time. The grouping shortens the dependency chain 4× over a serial
    /// fold and is what the table-driven fast path
    /// ([`SensingMatrix::apply_into_scratch`]) reproduces via lookups.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.window()` or `out.len() !=
    /// self.measurements()`.
    pub fn apply_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.n, "sensing apply: length mismatch");
        assert_eq!(out.len(), self.m, "sensing apply: output length mismatch");
        match &self.kind {
            Kind::DenseBernoulli { rows, scale, .. } => {
                for (yi, row) in out.iter_mut().zip(rows) {
                    *yi = scale * row_fold_grouped(row.sign_words(), x);
                }
            }
            Kind::SparseBinary { cols, scale } => {
                out.fill(0.0);
                for (j, col) in cols.iter().enumerate() {
                    let v = scale * x[j];
                    for &i in col {
                        out[i as usize] += v;
                    }
                }
            }
        }
    }

    /// Scratch length (in `f64`s) for [`SensingMatrix::apply_into_scratch`]:
    /// room for the per-4-column sign-sum table shared by all rows.
    #[must_use]
    pub fn forward_scratch_len(&self) -> usize {
        match self.kind {
            Kind::DenseBernoulli { .. } => (self.n / 4) * 16,
            Kind::SparseBinary { .. } => 0,
        }
    }

    /// Forward application using caller-provided scratch — the decode
    /// hot-path kernel.
    ///
    /// For the dense Bernoulli kind the scratch holds, per group of four
    /// columns, the 16 signed sums `((±x₀±x₁)±x₂)±x₃` (built once, shared
    /// by every row); each row then folds one table lookup per sign nibble
    /// of its bitplane — 4 columns per lookup, no per-element sign
    /// application. Bit-identical to [`SensingMatrix::apply_into`], which
    /// evaluates the same grouped expressions term by term.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches or if `scratch.len() <
    /// self.forward_scratch_len()`.
    pub fn apply_into_scratch(&self, x: &[f64], out: &mut [f64], scratch: &mut [f64]) {
        assert_eq!(x.len(), self.n, "sensing apply: length mismatch");
        assert_eq!(out.len(), self.m, "sensing apply: output length mismatch");
        let Kind::DenseBernoulli { rows, scale, .. } = &self.kind else {
            self.apply_into(x, out);
            return;
        };
        let groups = self.n / 4;
        let table = &mut scratch[..groups * 16];
        for (tg, v) in table.chunks_exact_mut(16).zip(x.chunks_exact(4)) {
            tg.copy_from_slice(&sign_table([v[0], v[1], v[2], v[3]]));
        }
        let mut i = 0;
        // Four rows per pass: four independent accumulator chains hide the
        // add latency that a one-row fold would serialize on.
        while i + 4 <= rows.len() {
            let w = [
                rows[i].sign_words(),
                rows[i + 1].sign_words(),
                rows[i + 2].sign_words(),
                rows[i + 3].sign_words(),
            ];
            let mut acc = [0.0f64; 4];
            let mut g = 0;
            let mut ci = 0;
            while g < groups {
                let take = (groups - g).min(16);
                let mut q = [w[0][ci], w[1][ci], w[2][ci], w[3][ci]];
                for s in 0..take {
                    let tg = &table[(g + s) * 16..(g + s) * 16 + 16];
                    for r in 0..4 {
                        acc[r] += tg[(q[r] & 15) as usize];
                        q[r] >>= 4;
                    }
                }
                g += take;
                ci += 1;
            }
            for (j, &v) in x.iter().enumerate().skip(groups * 4) {
                for r in 0..4 {
                    acc[r] += if (w[r][j >> 6] >> (j & 63)) & 1 == 1 {
                        -v
                    } else {
                        v
                    };
                }
            }
            for r in 0..4 {
                out[i + r] = scale * acc[r];
            }
            i += 4;
        }
        while i < rows.len() {
            out[i] = scale * row_fold_table(rows[i].sign_words(), x, table, groups);
            i += 1;
        }
    }

    /// Scratch length (in `f64`s) for the batched kernels
    /// ([`SensingMatrix::apply_batch_into_scratch`] /
    /// [`SensingMatrix::apply_adjoint_batch_into_scratch`]) at batch
    /// width `k`.
    #[must_use]
    pub fn batch_scratch_len(&self, k: usize) -> usize {
        // Forward panel table (groups·16·k), adjoint plane table (16·k),
        // and per-lane gather buffers for the sparse fallback.
        self.forward_scratch_len() * k + 16 * k + self.n + self.m
    }

    /// Batched forward application over a column-major panel: lane `l` of
    /// `x_panel` (elements `x_panel[j*k + l]`) maps to lane `l` of
    /// `out_panel` exactly as [`SensingMatrix::apply_into_scratch`] maps a
    /// single window — the per-4-column sign table is built once *per
    /// group for all K lanes* and shared across every row, which is where
    /// the batch amortization comes from. Per lane the accumulation order
    /// is identical to the serial kernel, so each lane is bit-identical
    /// to a serial solve; the SIMD tier vectorizes across lanes only.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, panel shapes don't match `(n·k, m·k)`, or
    /// `scratch.len() < self.batch_scratch_len(k)`.
    pub fn apply_batch_into_scratch(
        &self,
        x_panel: &[f64],
        k: usize,
        out_panel: &mut [f64],
        scratch: &mut [f64],
    ) {
        self.apply_batch_tier(
            x_panel,
            k,
            out_panel,
            scratch,
            hybridcs_linalg::simd::simd_enabled(),
        );
    }

    fn apply_batch_tier(
        &self,
        x_panel: &[f64],
        k: usize,
        out_panel: &mut [f64],
        scratch: &mut [f64],
        simd: bool,
    ) {
        assert!(k > 0, "sensing batch apply: zero lanes");
        assert_eq!(x_panel.len(), self.n * k, "sensing batch apply: panel");
        assert_eq!(out_panel.len(), self.m * k, "sensing batch apply: output");
        assert!(
            scratch.len() >= self.batch_scratch_len(k),
            "sensing batch apply: scratch too short"
        );
        match &self.kind {
            Kind::DenseBernoulli { rows, scale, .. } => {
                let groups = self.n / 4;
                let (table, _) = scratch.split_at_mut(groups * 16 * k);
                batch_kernels::forward(rows, *scale, x_panel, k, self.n, out_panel, table, simd);
            }
            Kind::SparseBinary { .. } => {
                // Per-lane gather → serial apply → scatter: trivially
                // bit-identical; the sparse kind is ablation-only.
                let (xbuf, rest) = scratch.split_at_mut(self.n);
                let (ybuf, _) = rest.split_at_mut(self.m);
                for lane in 0..k {
                    hybridcs_linalg::simd::gather_lane(x_panel, k, lane, xbuf);
                    self.apply_into(xbuf, ybuf);
                    hybridcs_linalg::simd::scatter_lane(ybuf, k, lane, out_panel);
                }
            }
        }
    }

    /// Batched adjoint application over a column-major panel — the lane-wise
    /// twin of [`SensingMatrix::apply_adjoint_into`], bit-identical per
    /// lane. See [`SensingMatrix::apply_batch_into_scratch`] for the panel
    /// contract.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, panel shapes don't match `(m·k, n·k)`, or
    /// `scratch.len() < self.batch_scratch_len(k)`.
    pub fn apply_adjoint_batch_into_scratch(
        &self,
        y_panel: &[f64],
        k: usize,
        out_panel: &mut [f64],
        scratch: &mut [f64],
    ) {
        self.apply_adjoint_batch_tier(
            y_panel,
            k,
            out_panel,
            scratch,
            hybridcs_linalg::simd::simd_enabled(),
        );
    }

    fn apply_adjoint_batch_tier(
        &self,
        y_panel: &[f64],
        k: usize,
        out_panel: &mut [f64],
        scratch: &mut [f64],
        simd: bool,
    ) {
        assert!(k > 0, "sensing batch adjoint: zero lanes");
        assert_eq!(y_panel.len(), self.m * k, "sensing batch adjoint: panel");
        assert_eq!(out_panel.len(), self.n * k, "sensing batch adjoint: output");
        assert!(
            scratch.len() >= self.batch_scratch_len(k),
            "sensing batch adjoint: scratch too short"
        );
        match &self.kind {
            Kind::DenseBernoulli {
                rows,
                nibbles,
                scale,
            } => {
                let (table16, _) = scratch.split_at_mut(16 * k);
                batch_kernels::adjoint(
                    rows, nibbles, *scale, y_panel, k, self.n, out_panel, table16, simd,
                );
            }
            Kind::SparseBinary { .. } => {
                let (xbuf, rest) = scratch.split_at_mut(self.n);
                let (ybuf, _) = rest.split_at_mut(self.m);
                for lane in 0..k {
                    hybridcs_linalg::simd::gather_lane(y_panel, k, lane, ybuf);
                    self.apply_adjoint_into(ybuf, xbuf);
                    hybridcs_linalg::simd::scatter_lane(xbuf, k, lane, out_panel);
                }
            }
        }
    }

    /// Adjoint application `x = Φᵀy`.
    ///
    /// # Panics
    ///
    /// Panics if `y.len() != self.measurements()`.
    #[must_use]
    pub fn apply_adjoint(&self, y: &[f64]) -> Vec<f64> {
        let mut x = vec![0.0; self.n];
        self.apply_adjoint_into(y, &mut x);
        x
    }

    /// Allocation-free adjoint application `out = Φᵀy`.
    ///
    /// Rows accumulate into `out` in ascending groups of four (the order
    /// [`UnpackedBernoulli::apply_adjoint_into`] shares): each element
    /// receives `((±w₀±w₁)±w₂)±w₃` with `w_r = scale·y[4g+r]`, looked up
    /// from a 16-entry sign table by the column's precomputed sign nibble —
    /// one lookup replaces four sign applications. Any `m mod 4` tail rows
    /// accumulate one at a time.
    ///
    /// # Panics
    ///
    /// Panics if `y.len() != self.measurements()` or `out.len() !=
    /// self.window()`.
    pub fn apply_adjoint_into(&self, y: &[f64], out: &mut [f64]) {
        assert_eq!(y.len(), self.m, "sensing adjoint: length mismatch");
        assert_eq!(out.len(), self.n, "sensing adjoint: output length mismatch");
        match &self.kind {
            Kind::DenseBernoulli {
                rows,
                nibbles,
                scale,
            } => {
                out.fill(0.0);
                for (g, plane) in nibbles.iter().enumerate() {
                    let t = sign_table([
                        scale * y[4 * g],
                        scale * y[4 * g + 1],
                        scale * y[4 * g + 2],
                        scale * y[4 * g + 3],
                    ]);
                    for (chunk, &word0) in out.chunks_mut(16).zip(plane) {
                        let mut word = word0;
                        for xj in chunk {
                            *xj += t[(word & 15) as usize];
                            word >>= 4;
                        }
                    }
                }
                for i in nibbles.len() * 4..rows.len() {
                    let w = scale * y[i];
                    let sw = [w, -w];
                    for (chunk, &word0) in out.chunks_mut(64).zip(rows[i].sign_words()) {
                        let mut word = word0;
                        for xj in chunk {
                            *xj += sw[(word & 1) as usize];
                            word >>= 1;
                        }
                    }
                }
            }
            Kind::SparseBinary { cols, scale } => {
                for (j, col) in cols.iter().enumerate() {
                    let mut acc = 0.0;
                    for &i in col {
                        acc += y[i as usize];
                    }
                    out[j] = scale * acc;
                }
            }
        }
    }

    /// Materializes `Φ` as a dense matrix (for the greedy solvers, which
    /// need explicit columns).
    #[must_use]
    pub fn to_matrix(&self) -> Matrix {
        match &self.kind {
            Kind::DenseBernoulli { rows, scale, .. } => {
                Matrix::from_fn(self.m, self.n, |i, j| scale * rows[i].chip(j))
            }
            Kind::SparseBinary { cols, scale } => {
                let mut mat = Matrix::zeros(self.m, self.n);
                for (j, col) in cols.iter().enumerate() {
                    for &i in col {
                        mat.set(i as usize, j, *scale);
                    }
                }
                mat
            }
        }
    }

    /// Short label for reports (`"bernoulli"` / `"sparse-binary"`).
    #[must_use]
    pub fn kind_name(&self) -> &'static str {
        match self.kind {
            Kind::DenseBernoulli { .. } => "bernoulli",
            Kind::SparseBinary { .. } => "sparse-binary",
        }
    }

    /// Materializes the unpacked f64-chip reference for a dense Bernoulli
    /// matrix; `None` for other kinds.
    ///
    /// This is the pre-packing representation, retained for two purposes:
    /// the 0-ULP equivalence property tests, and the decode-throughput
    /// bench's "pre-change" baseline (same arithmetic, 8 bytes per chip).
    #[must_use]
    pub fn to_unpacked(&self) -> Option<UnpackedBernoulli> {
        match &self.kind {
            Kind::DenseBernoulli { rows, scale, .. } => Some(UnpackedBernoulli {
                rows: rows.iter().map(ChippingSequence::chips).collect(),
                scale: *scale,
                n: self.n,
            }),
            Kind::SparseBinary { .. } => None,
        }
    }
}

/// Unpacked ±1 Bernoulli sensing reference: chips stored as one `f64` each
/// and multiplied in explicitly (`c·v`), in the same 4-wide grouped
/// accumulation order as the bit-packed kernels — `±1·v` is exactly `±v`,
/// so sharing the order is what makes the equivalence exact rather than
/// approximate.
///
/// See [`SensingMatrix::to_unpacked`]. The equivalence contract (checked by
/// property tests) is 0 ULP: for every input, [`SensingMatrix::apply_into`]
/// and [`UnpackedBernoulli::apply_into`] produce identical bits.
#[derive(Debug, Clone, PartialEq)]
pub struct UnpackedBernoulli {
    rows: Vec<Vec<f64>>,
    scale: f64,
    n: usize,
}

impl UnpackedBernoulli {
    /// Number of measurements (rows).
    #[must_use]
    pub fn measurements(&self) -> usize {
        self.rows.len()
    }

    /// Window length (columns).
    #[must_use]
    pub fn window(&self) -> usize {
        self.n
    }

    /// Forward application `out = Φx` via the unpacked multiply-accumulate.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches.
    pub fn apply_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.n, "sensing apply: length mismatch");
        assert_eq!(out.len(), self.rows.len(), "sensing apply: output length");
        let tail = self.n - self.n % 4;
        for (yi, row) in out.iter_mut().zip(&self.rows) {
            let mut acc = 0.0;
            for (c, v) in row.chunks_exact(4).zip(x.chunks_exact(4)) {
                acc += ((c[0] * v[0] + c[1] * v[1]) + c[2] * v[2]) + c[3] * v[3];
            }
            for (c, v) in row[tail..].iter().zip(&x[tail..]) {
                acc += c * v;
            }
            *yi = self.scale * acc;
        }
    }

    /// Adjoint application `out = Φᵀy` via the unpacked multiply-accumulate.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches.
    pub fn apply_adjoint_into(&self, y: &[f64], out: &mut [f64]) {
        assert_eq!(y.len(), self.rows.len(), "sensing adjoint: length mismatch");
        assert_eq!(out.len(), self.n, "sensing adjoint: output length");
        out.fill(0.0);
        let m = self.rows.len();
        let mut i = 0;
        while i + 4 <= m {
            let (w0, w1, w2, w3) = (
                self.scale * y[i],
                self.scale * y[i + 1],
                self.scale * y[i + 2],
                self.scale * y[i + 3],
            );
            let (r0, r1, r2, r3) = (
                &self.rows[i],
                &self.rows[i + 1],
                &self.rows[i + 2],
                &self.rows[i + 3],
            );
            for (j, xj) in out.iter_mut().enumerate() {
                *xj += ((w0 * r0[j] + w1 * r1[j]) + w2 * r2[j]) + w3 * r3[j];
            }
            i += 4;
        }
        while i < m {
            let w = self.scale * y[i];
            for (xj, c) in out.iter_mut().zip(&self.rows[i]) {
                *xj += w * c;
            }
            i += 1;
        }
    }
}

/// One row's grouped fold `Σ_g ((±x₀±x₁)±x₂)±x₃` (plus the serial tail),
/// evaluating each group's signed sum term by term from the sign bitplane.
fn row_fold_grouped(words: &[u64], x: &[f64]) -> f64 {
    let mut acc = 0.0;
    for (g, v) in x.chunks_exact(4).enumerate() {
        let nib = (words[g / 16] >> (4 * (g % 16))) & 15;
        let s0 = if nib & 1 == 0 { v[0] } else { -v[0] };
        let s1 = if nib & 2 == 0 { v[1] } else { -v[1] };
        let s2 = if nib & 4 == 0 { v[2] } else { -v[2] };
        let s3 = if nib & 8 == 0 { v[3] } else { -v[3] };
        acc += ((s0 + s1) + s2) + s3;
    }
    for (j, &v) in x.iter().enumerate().skip(x.len() - x.len() % 4) {
        acc += if (words[j >> 6] >> (j & 63)) & 1 == 1 {
            -v
        } else {
            v
        };
    }
    acc
}

/// The same fold with the group sums looked up from the shared sign table.
fn row_fold_table(words: &[u64], x: &[f64], table: &[f64], groups: usize) -> f64 {
    let mut acc = 0.0;
    let mut g = 0;
    let mut ci = 0;
    while g < groups {
        let take = (groups - g).min(16);
        let mut q = words[ci];
        for s in 0..take {
            acc += table[(g + s) * 16 + (q & 15) as usize];
            q >>= 4;
        }
        g += take;
        ci += 1;
    }
    for (j, &v) in x.iter().enumerate().skip(groups * 4) {
        acc += if (words[j >> 6] >> (j & 63)) & 1 == 1 {
            -v
        } else {
            v
        };
    }
    acc
}

/// Lane-parallel twins of the packed-sign kernels over column-major
/// panels. Per lane the group/tail accumulation order is identical to
/// [`SensingMatrix::apply_into_scratch`] / `apply_adjoint_into`, so every
/// lane is bit-identical to a serial application; the sign flips are exact
/// negations (sign-bit xor) and the group sums use the same
/// `((s₀+s₁)+s₂)+s₃` tree, so the SIMD tier cannot diverge either.
#[allow(unsafe_code)]
mod batch_kernels {
    use crate::ChippingSequence;

    /// Sign nibble of group `g` in a row's sign bitplane.
    #[inline]
    fn group_nibble(words: &[u64], g: usize) -> usize {
        ((words[g / 16] >> (4 * (g % 16))) & 15) as usize
    }

    /// Sign bit of column/row `j` in a bitplane.
    #[inline]
    fn sign_bit(words: &[u64], j: usize) -> bool {
        (words[j >> 6] >> (j & 63)) & 1 == 1
    }

    #[allow(clippy::too_many_arguments)]
    pub fn forward(
        rows: &[ChippingSequence],
        scale: f64,
        x_panel: &[f64],
        k: usize,
        n: usize,
        out_panel: &mut [f64],
        table: &mut [f64],
        simd: bool,
    ) {
        #[cfg(target_arch = "x86_64")]
        if simd {
            // SAFETY: `simd` comes from `simd_enabled`, which requires
            // runtime AVX2 support.
            unsafe { forward_avx(rows, scale, x_panel, k, n, out_panel, table) };
            return;
        }
        let _ = simd;
        forward_scalar(rows, scale, x_panel, k, n, out_panel, table);
    }

    #[allow(clippy::too_many_arguments)]
    pub fn adjoint(
        rows: &[ChippingSequence],
        nibbles: &[Vec<u64>],
        scale: f64,
        y_panel: &[f64],
        k: usize,
        n: usize,
        out_panel: &mut [f64],
        table16: &mut [f64],
        simd: bool,
    ) {
        #[cfg(target_arch = "x86_64")]
        if simd {
            // SAFETY: `simd` comes from `simd_enabled`, which requires
            // runtime AVX2 support.
            unsafe { adjoint_avx(rows, nibbles, scale, y_panel, k, n, out_panel, table16) };
            return;
        }
        let _ = simd;
        adjoint_scalar(rows, nibbles, scale, y_panel, k, n, out_panel, table16);
    }

    /// Builds the K-wide sign-sum table rows for one 4-column group:
    /// `table[idx*k + lane] = ((±q₀ ± q₁) ± q₂) ± q₃` over the four
    /// quad rows, matching `sign_table` per lane.
    #[inline]
    fn fill_group_table(quad: [&[f64]; 4], k: usize, table: &mut [f64]) {
        for idx in 0..16 {
            let row = &mut table[idx * k..idx * k + k];
            for (lane, slot) in row.iter_mut().enumerate() {
                let s0 = if idx & 1 == 0 {
                    quad[0][lane]
                } else {
                    -quad[0][lane]
                };
                let s1 = if idx & 2 == 0 {
                    quad[1][lane]
                } else {
                    -quad[1][lane]
                };
                let s2 = if idx & 4 == 0 {
                    quad[2][lane]
                } else {
                    -quad[2][lane]
                };
                let s3 = if idx & 8 == 0 {
                    quad[3][lane]
                } else {
                    -quad[3][lane]
                };
                *slot = ((s0 + s1) + s2) + s3;
            }
        }
    }

    fn forward_scalar(
        rows: &[ChippingSequence],
        scale: f64,
        x_panel: &[f64],
        k: usize,
        n: usize,
        out_panel: &mut [f64],
        table: &mut [f64],
    ) {
        let groups = n / 4;
        for g in 0..groups {
            let base = g * 4 * k;
            fill_group_table(
                [
                    &x_panel[base..base + k],
                    &x_panel[base + k..base + 2 * k],
                    &x_panel[base + 2 * k..base + 3 * k],
                    &x_panel[base + 3 * k..base + 4 * k],
                ],
                k,
                &mut table[g * 16 * k..(g + 1) * 16 * k],
            );
        }
        for (i, row) in rows.iter().enumerate() {
            let words = row.sign_words();
            let out_row = &mut out_panel[i * k..(i + 1) * k];
            out_row.fill(0.0);
            for g in 0..groups {
                let nib = group_nibble(words, g);
                let trow = &table[(g * 16 + nib) * k..(g * 16 + nib) * k + k];
                for (o, &t) in out_row.iter_mut().zip(trow) {
                    *o += t;
                }
            }
            for j in groups * 4..n {
                let xr = &x_panel[j * k..(j + 1) * k];
                if sign_bit(words, j) {
                    for (o, &v) in out_row.iter_mut().zip(xr) {
                        *o += -v;
                    }
                } else {
                    for (o, &v) in out_row.iter_mut().zip(xr) {
                        *o += v;
                    }
                }
            }
            for o in out_row.iter_mut() {
                *o *= scale;
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn adjoint_scalar(
        rows: &[ChippingSequence],
        nibbles: &[Vec<u64>],
        scale: f64,
        y_panel: &[f64],
        k: usize,
        n: usize,
        out_panel: &mut [f64],
        table16: &mut [f64],
    ) {
        out_panel.fill(0.0);
        for (g, plane) in nibbles.iter().enumerate() {
            // w_r = scale · y-row — scaled before the sign tree, exactly
            // like the serial adjoint's `sign_table([scale*y, ...])`.
            let base = 4 * g * k;
            for idx in 0..16 {
                let row = &mut table16[idx * k..idx * k + k];
                for (lane, slot) in row.iter_mut().enumerate() {
                    let w0 = scale * y_panel[base + lane];
                    let w1 = scale * y_panel[base + k + lane];
                    let w2 = scale * y_panel[base + 2 * k + lane];
                    let w3 = scale * y_panel[base + 3 * k + lane];
                    let s0 = if idx & 1 == 0 { w0 } else { -w0 };
                    let s1 = if idx & 2 == 0 { w1 } else { -w1 };
                    let s2 = if idx & 4 == 0 { w2 } else { -w2 };
                    let s3 = if idx & 8 == 0 { w3 } else { -w3 };
                    *slot = ((s0 + s1) + s2) + s3;
                }
            }
            for j in 0..n {
                let nib = ((plane[j / 16] >> (4 * (j % 16))) & 15) as usize;
                let trow = &table16[nib * k..nib * k + k];
                let or = &mut out_panel[j * k..(j + 1) * k];
                for (o, &t) in or.iter_mut().zip(trow) {
                    *o += t;
                }
            }
        }
        for (i, row) in rows.iter().enumerate().skip(nibbles.len() * 4) {
            let words = row.sign_words();
            let wrow = &mut table16[..k];
            for (w, y) in wrow.iter_mut().zip(&y_panel[i * k..(i + 1) * k]) {
                *w = scale * y;
            }
            for j in 0..n {
                let or = &mut out_panel[j * k..(j + 1) * k];
                if sign_bit(words, j) {
                    for (o, &w) in or.iter_mut().zip(wrow.iter()) {
                        *o += -w;
                    }
                } else {
                    for (o, &w) in or.iter_mut().zip(wrow.iter()) {
                        *o += w;
                    }
                }
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    use std::arch::x86_64::{
        __m256d, _mm256_add_pd, _mm256_loadu_pd, _mm256_mul_pd, _mm256_set1_pd, _mm256_storeu_pd,
        _mm256_sub_pd, _mm256_xor_pd,
    };

    /// Exact 4-lane negation (sign-bit xor — identical bits to scalar `-x`).
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn neg4(v: __m256d) -> __m256d {
        _mm256_xor_pd(v, _mm256_set1_pd(-0.0))
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn fill_group_table_avx(quad: [*const f64; 4], k: usize, table: &mut [f64]) {
        let chunks = k / 4;
        for c in 0..chunks {
            let lane = c * 4;
            let q = [
                _mm256_loadu_pd(quad[0].add(lane)),
                _mm256_loadu_pd(quad[1].add(lane)),
                _mm256_loadu_pd(quad[2].add(lane)),
                _mm256_loadu_pd(quad[3].add(lane)),
            ];
            for idx in 0..16usize {
                let s0 = if idx & 1 == 0 { q[0] } else { neg4(q[0]) };
                let s1 = if idx & 2 == 0 { q[1] } else { neg4(q[1]) };
                let s2 = if idx & 4 == 0 { q[2] } else { neg4(q[2]) };
                let s3 = if idx & 8 == 0 { q[3] } else { neg4(q[3]) };
                let sum = _mm256_add_pd(_mm256_add_pd(_mm256_add_pd(s0, s1), s2), s3);
                _mm256_storeu_pd(table.as_mut_ptr().add(idx * k + lane), sum);
            }
        }
        for lane in chunks * 4..k {
            for idx in 0..16usize {
                let pick = |r: usize, bit: usize| {
                    let v = *quad[r].add(lane);
                    if idx & bit == 0 {
                        v
                    } else {
                        -v
                    }
                };
                let s0 = pick(0, 1);
                let s1 = pick(1, 2);
                let s2 = pick(2, 4);
                let s3 = pick(3, 8);
                table[idx * k + lane] = ((s0 + s1) + s2) + s3;
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn forward_avx(
        rows: &[ChippingSequence],
        scale: f64,
        x_panel: &[f64],
        k: usize,
        n: usize,
        out_panel: &mut [f64],
        table: &mut [f64],
    ) {
        let groups = n / 4;
        for g in 0..groups {
            let base = g * 4 * k;
            fill_group_table_avx(
                [
                    x_panel.as_ptr().add(base),
                    x_panel.as_ptr().add(base + k),
                    x_panel.as_ptr().add(base + 2 * k),
                    x_panel.as_ptr().add(base + 3 * k),
                ],
                k,
                &mut table[g * 16 * k..(g + 1) * 16 * k],
            );
        }
        let chunks = k / 4;
        let sv = _mm256_set1_pd(scale);
        for (i, row) in rows.iter().enumerate() {
            let words = row.sign_words();
            for c in 0..chunks {
                let lane = c * 4;
                let mut acc = std::arch::x86_64::_mm256_setzero_pd();
                for g in 0..groups {
                    let nib = group_nibble(words, g);
                    let t = _mm256_loadu_pd(table.as_ptr().add((g * 16 + nib) * k + lane));
                    acc = _mm256_add_pd(acc, t);
                }
                for j in groups * 4..n {
                    let xv = _mm256_loadu_pd(x_panel.as_ptr().add(j * k + lane));
                    acc = if sign_bit(words, j) {
                        _mm256_sub_pd(acc, xv)
                    } else {
                        _mm256_add_pd(acc, xv)
                    };
                }
                _mm256_storeu_pd(
                    out_panel.as_mut_ptr().add(i * k + lane),
                    _mm256_mul_pd(acc, sv),
                );
            }
            for lane in chunks * 4..k {
                let mut acc = 0.0;
                for g in 0..groups {
                    let nib = group_nibble(words, g);
                    acc += table[(g * 16 + nib) * k + lane];
                }
                for j in groups * 4..n {
                    let v = x_panel[j * k + lane];
                    acc += if sign_bit(words, j) { -v } else { v };
                }
                out_panel[i * k + lane] = acc * scale;
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2")]
    unsafe fn adjoint_avx(
        rows: &[ChippingSequence],
        nibbles: &[Vec<u64>],
        scale: f64,
        y_panel: &[f64],
        k: usize,
        n: usize,
        out_panel: &mut [f64],
        table16: &mut [f64],
    ) {
        out_panel.fill(0.0);
        let chunks = k / 4;
        let sv = _mm256_set1_pd(scale);
        for (g, plane) in nibbles.iter().enumerate() {
            let base = 4 * g * k;
            // Scaled quad rows: the serial adjoint scales before the sign
            // tree, so multiply each load by `scale` before the tree.
            for c in 0..chunks {
                let lane = c * 4;
                let q = [
                    _mm256_mul_pd(sv, _mm256_loadu_pd(y_panel.as_ptr().add(base + lane))),
                    _mm256_mul_pd(sv, _mm256_loadu_pd(y_panel.as_ptr().add(base + k + lane))),
                    _mm256_mul_pd(
                        sv,
                        _mm256_loadu_pd(y_panel.as_ptr().add(base + 2 * k + lane)),
                    ),
                    _mm256_mul_pd(
                        sv,
                        _mm256_loadu_pd(y_panel.as_ptr().add(base + 3 * k + lane)),
                    ),
                ];
                for idx in 0..16usize {
                    let s0 = if idx & 1 == 0 { q[0] } else { neg4(q[0]) };
                    let s1 = if idx & 2 == 0 { q[1] } else { neg4(q[1]) };
                    let s2 = if idx & 4 == 0 { q[2] } else { neg4(q[2]) };
                    let s3 = if idx & 8 == 0 { q[3] } else { neg4(q[3]) };
                    let sum = _mm256_add_pd(_mm256_add_pd(_mm256_add_pd(s0, s1), s2), s3);
                    _mm256_storeu_pd(table16.as_mut_ptr().add(idx * k + lane), sum);
                }
            }
            for lane in chunks * 4..k {
                let w = [
                    scale * y_panel[base + lane],
                    scale * y_panel[base + k + lane],
                    scale * y_panel[base + 2 * k + lane],
                    scale * y_panel[base + 3 * k + lane],
                ];
                for idx in 0..16usize {
                    let s0 = if idx & 1 == 0 { w[0] } else { -w[0] };
                    let s1 = if idx & 2 == 0 { w[1] } else { -w[1] };
                    let s2 = if idx & 4 == 0 { w[2] } else { -w[2] };
                    let s3 = if idx & 8 == 0 { w[3] } else { -w[3] };
                    table16[idx * k + lane] = ((s0 + s1) + s2) + s3;
                }
            }
            for j in 0..n {
                let nib = ((plane[j / 16] >> (4 * (j % 16))) & 15) as usize;
                for c in 0..chunks {
                    let lane = c * 4;
                    let t = _mm256_loadu_pd(table16.as_ptr().add(nib * k + lane));
                    let o = _mm256_loadu_pd(out_panel.as_ptr().add(j * k + lane));
                    _mm256_storeu_pd(
                        out_panel.as_mut_ptr().add(j * k + lane),
                        _mm256_add_pd(o, t),
                    );
                }
                for lane in chunks * 4..k {
                    out_panel[j * k + lane] += table16[nib * k + lane];
                }
            }
        }
        for (i, row) in rows.iter().enumerate().skip(nibbles.len() * 4) {
            let words = row.sign_words();
            for (w, y) in table16[..k].iter_mut().zip(&y_panel[i * k..(i + 1) * k]) {
                *w = scale * y;
            }
            for j in 0..n {
                let neg = sign_bit(words, j);
                for c in 0..chunks {
                    let lane = c * 4;
                    let wv = _mm256_loadu_pd(table16.as_ptr().add(lane));
                    let o = _mm256_loadu_pd(out_panel.as_ptr().add(j * k + lane));
                    let r = if neg {
                        _mm256_sub_pd(o, wv)
                    } else {
                        _mm256_add_pd(o, wv)
                    };
                    _mm256_storeu_pd(out_panel.as_mut_ptr().add(j * k + lane), r);
                }
                for lane in chunks * 4..k {
                    let w = table16[lane];
                    out_panel[j * k + lane] += if neg { -w } else { w };
                }
            }
        }
    }
}

fn check_shape(m: usize, n: usize) -> Result<(), FrontEndError> {
    if m == 0 {
        return Err(FrontEndError::BadParameter {
            name: "measurements",
            value: 0.0,
        });
    }
    if n == 0 || m > n {
        return Err(FrontEndError::BadParameter {
            name: "window (need measurements <= window)",
            value: n as f64,
        });
    }
    Ok(())
}

/// Draws `k` distinct values from `0..m` (partial Fisher–Yates).
fn sample_without_replacement<R: Rng + ?Sized>(rng: &mut R, m: usize, k: usize) -> Vec<u32> {
    use hybridcs_rand::RngExt;
    let mut pool: Vec<u32> = (0..m as u32).collect();
    for i in 0..k {
        let j = rng.random_range(i..m);
        pool.swap(i, j);
    }
    pool.truncate(k);
    pool.sort_unstable();
    pool
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybridcs_linalg::vector;

    #[test]
    fn bernoulli_shape_and_determinism() {
        let a = SensingMatrix::bernoulli(8, 32, 5).unwrap();
        let b = SensingMatrix::bernoulli(8, 32, 5).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.measurements(), 8);
        assert_eq!(a.window(), 32);
        assert_eq!(a.kind_name(), "bernoulli");
    }

    #[test]
    fn bernoulli_rows_have_unit_norm() {
        let phi = SensingMatrix::bernoulli(4, 64, 1).unwrap();
        let mat = phi.to_matrix();
        for i in 0..4 {
            let norm = vector::norm2(mat.row(i));
            assert!((norm - 1.0).abs() < 1e-12, "row {i} norm {norm}");
        }
    }

    #[test]
    fn apply_matches_materialized_matrix() {
        for phi in [
            SensingMatrix::bernoulli(8, 32, 7).unwrap(),
            SensingMatrix::sparse_binary(8, 32, 3, 7).unwrap(),
        ] {
            let x: Vec<f64> = (0..32).map(|i| (i as f64 * 0.3).sin()).collect();
            let fast = phi.apply(&x);
            let dense = phi.to_matrix().matvec(&x);
            for (a, b) in fast.iter().zip(&dense) {
                assert!((a - b).abs() < 1e-12, "{}", phi.kind_name());
            }
        }
    }

    #[test]
    fn adjoint_identity() {
        for phi in [
            SensingMatrix::bernoulli(6, 24, 2).unwrap(),
            SensingMatrix::sparse_binary(6, 24, 2, 2).unwrap(),
        ] {
            let x: Vec<f64> = (0..24).map(|i| i as f64 - 12.0).collect();
            let y: Vec<f64> = (0..6).map(|i| (i as f64).cos()).collect();
            let lhs = vector::dot(&phi.apply(&x), &y);
            let rhs = vector::dot(&x, &phi.apply_adjoint(&y));
            assert!(
                (lhs - rhs).abs() < 1e-9 * lhs.abs().max(1.0),
                "{}",
                phi.kind_name()
            );
        }
    }

    #[test]
    fn sparse_binary_columns_have_exact_weight() {
        let phi = SensingMatrix::sparse_binary(16, 40, 4, 11).unwrap();
        let mat = phi.to_matrix();
        for j in 0..40 {
            let col = mat.col(j);
            let nonzeros = col.iter().filter(|v| **v != 0.0).count();
            assert_eq!(nonzeros, 4, "column {j}");
            let norm = vector::norm2(&col);
            assert!((norm - 1.0).abs() < 1e-12, "column {j} norm {norm}");
        }
    }

    #[test]
    fn sparse_binary_rows_are_distinct_within_column() {
        let phi = SensingMatrix::sparse_binary(8, 100, 8, 3).unwrap();
        // ones_per_column == m: every column must be all rows exactly once.
        let mat = phi.to_matrix();
        for j in 0..100 {
            assert!(mat.col(j).iter().all(|v| *v != 0.0));
        }
    }

    #[test]
    fn rejects_degenerate_shapes() {
        assert!(SensingMatrix::bernoulli(0, 10, 0).is_err());
        assert!(SensingMatrix::bernoulli(10, 0, 0).is_err());
        assert!(SensingMatrix::bernoulli(20, 10, 0).is_err());
        assert!(SensingMatrix::sparse_binary(8, 32, 0, 0).is_err());
        assert!(SensingMatrix::sparse_binary(8, 32, 9, 0).is_err());
    }

    #[test]
    fn batch_kernels_bit_identical_to_serial_per_lane() {
        // Shapes chosen to exercise the 4-column group tail (n % 4 != 0),
        // the 4-row quad tail (m % 4 != 0), full 4-lane SIMD chunks and
        // remainder lanes — under both dispatch tiers.
        let tiers: &[bool] = if hybridcs_linalg::simd::simd_available() {
            &[false, true]
        } else {
            &[false]
        };
        let mats = [
            SensingMatrix::bernoulli(8, 32, 3).unwrap(),
            SensingMatrix::bernoulli(6, 37, 11).unwrap(),
            SensingMatrix::sparse_binary(8, 32, 3, 7).unwrap(),
        ];
        for phi in &mats {
            let (m, n) = (phi.measurements(), phi.window());
            for &k in &[1usize, 3, 4, 7, 8] {
                let mut x_panel = vec![0.0; n * k];
                let mut y_panel = vec![0.0; m * k];
                let mut lanes_x: Vec<Vec<f64>> = Vec::new();
                let mut lanes_y: Vec<Vec<f64>> = Vec::new();
                for lane in 0..k {
                    let sx: Vec<f64> = (0..n)
                        .map(|i| {
                            ((i * 13 + lane * 7) as f64 * 0.37).sin()
                                * 1e3_f64.powi(lane as i32 % 3 - 1)
                        })
                        .collect();
                    let sy: Vec<f64> = (0..m)
                        .map(|i| ((i * 5 + lane * 3) as f64 * 0.71).cos())
                        .collect();
                    for (i, &v) in sx.iter().enumerate() {
                        x_panel[i * k + lane] = v;
                    }
                    for (i, &v) in sy.iter().enumerate() {
                        y_panel[i * k + lane] = v;
                    }
                    lanes_x.push(sx);
                    lanes_y.push(sy);
                }
                let mut serial_scratch = vec![0.0; phi.forward_scratch_len()];
                for &simd in tiers {
                    let mut scratch = vec![0.0; phi.batch_scratch_len(k)];
                    let mut fwd = vec![f64::NAN; m * k];
                    phi.apply_batch_tier(&x_panel, k, &mut fwd, &mut scratch, simd);
                    for (lane, sx) in lanes_x.iter().enumerate() {
                        let mut want = vec![0.0; m];
                        phi.apply_into_scratch(sx, &mut want, &mut serial_scratch);
                        for (i, w) in want.iter().enumerate() {
                            assert_eq!(
                                fwd[i * k + lane].to_bits(),
                                w.to_bits(),
                                "{} fwd k{k} lane{lane} simd={simd}",
                                phi.kind_name()
                            );
                        }
                    }
                    let mut adj = vec![f64::NAN; n * k];
                    phi.apply_adjoint_batch_tier(&y_panel, k, &mut adj, &mut scratch, simd);
                    for (lane, sy) in lanes_y.iter().enumerate() {
                        let mut want = vec![0.0; n];
                        phi.apply_adjoint_into(sy, &mut want);
                        for (i, w) in want.iter().enumerate() {
                            assert_eq!(
                                adj[i * k + lane].to_bits(),
                                w.to_bits(),
                                "{} adj k{k} lane{lane} simd={simd}",
                                phi.kind_name()
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn operator_norm_is_modest() {
        // A normalized Bernoulli matrix should have ‖Φ‖ near √(m/n)·√n/√n…
        // empirically below ~2.2 for these shapes; guard against scaling bugs.
        let phi = SensingMatrix::bernoulli(32, 128, 9).unwrap();
        let (norm, _) = hybridcs_linalg::operator_norm_est(
            128,
            32,
            |x, out| out.copy_from_slice(&phi.apply(x)),
            |y, out| out.copy_from_slice(&phi.apply_adjoint(y)),
            hybridcs_linalg::PowerIterationOptions::default(),
        );
        assert!(norm > 0.5 && norm < 2.5, "‖Φ‖ = {norm}");
    }
}
