use crate::{ChippingSequence, FrontEndError};
use hybridcs_linalg::Matrix;
use hybridcs_rand::{Rng, SeedableRng};

/// A compressed-sensing measurement operator `Φ ∈ R^{m×n}` with fast
/// forward/adjoint application.
///
/// Two constructions are provided:
///
/// * [`SensingMatrix::bernoulli`] — dense `±1/√n` entries. This is the exact
///   behavioural model of the RMPI: row `i` is channel `i`'s chipping
///   sequence, normalized so rows have unit ℓ₂ norm.
/// * [`SensingMatrix::sparse_binary`] — each column carries `d` ones
///   (scaled `1/√d`) at random positions: the hardware-friendly digital-CS
///   matrix of the authors' earlier TBME 2011 work, used here in the
///   sensing-matrix ablation.
///
/// # Example
///
/// ```
/// use hybridcs_frontend::SensingMatrix;
///
/// # fn main() -> Result<(), hybridcs_frontend::FrontEndError> {
/// let phi = SensingMatrix::bernoulli(16, 64, 3)?;
/// let x = vec![1.0; 64];
/// let y = phi.apply(&x);
/// assert_eq!(y.len(), 16);
/// let xt = phi.apply_adjoint(&y);
/// assert_eq!(xt.len(), 64);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SensingMatrix {
    m: usize,
    n: usize,
    kind: Kind,
}

#[derive(Debug, Clone, PartialEq)]
enum Kind {
    /// Dense rows of ±scale.
    DenseBernoulli {
        /// Per-row chipping sequences (values ±1), scaled on application.
        rows: Vec<ChippingSequence>,
        scale: f64,
    },
    /// Column-sparse binary: `cols[j]` lists the rows holding `scale`.
    SparseBinary { cols: Vec<Vec<u32>>, scale: f64 },
}

impl SensingMatrix {
    /// Dense `±1/√n` Bernoulli matrix with `m` rows (RMPI channels) over a
    /// window of `n` samples. Row `i` uses the chipping seed `seed + i`, so
    /// the decoder can regenerate `Φ` from `(m, n, seed)` alone.
    ///
    /// # Errors
    ///
    /// Returns [`FrontEndError::BadParameter`] when `m == 0`, `n == 0` or
    /// `m > n`.
    pub fn bernoulli(m: usize, n: usize, seed: u64) -> Result<Self, FrontEndError> {
        check_shape(m, n)?;
        let rows = (0..m)
            .map(|i| ChippingSequence::bernoulli(n, seed.wrapping_add(i as u64)))
            .collect();
        Ok(SensingMatrix {
            m,
            n,
            kind: Kind::DenseBernoulli {
                rows,
                scale: 1.0 / (n as f64).sqrt(),
            },
        })
    }

    /// Column-sparse binary matrix: every column holds exactly
    /// `ones_per_column` entries of `1/√d` at seeded random rows (without
    /// replacement within a column).
    ///
    /// # Errors
    ///
    /// Returns [`FrontEndError::BadParameter`] for degenerate shapes or when
    /// `ones_per_column` is 0 or exceeds `m`.
    pub fn sparse_binary(
        m: usize,
        n: usize,
        ones_per_column: usize,
        seed: u64,
    ) -> Result<Self, FrontEndError> {
        check_shape(m, n)?;
        if ones_per_column == 0 || ones_per_column > m {
            return Err(FrontEndError::BadParameter {
                name: "ones_per_column",
                value: ones_per_column as f64,
            });
        }
        let mut rng = hybridcs_rand::rngs::StdRng::seed_from_u64(seed);
        let cols = (0..n)
            .map(|_| sample_without_replacement(&mut rng, m, ones_per_column))
            .collect();
        Ok(SensingMatrix {
            m,
            n,
            kind: Kind::SparseBinary {
                cols,
                scale: 1.0 / (ones_per_column as f64).sqrt(),
            },
        })
    }

    /// Number of measurements (rows).
    #[must_use]
    pub fn measurements(&self) -> usize {
        self.m
    }

    /// Window length (columns).
    #[must_use]
    pub fn window(&self) -> usize {
        self.n
    }

    /// Forward application `y = Φx`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.window()`.
    #[must_use]
    pub fn apply(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n, "sensing apply: length mismatch");
        match &self.kind {
            Kind::DenseBernoulli { rows, scale } => {
                rows.iter().map(|row| scale * row.integrate(x)).collect()
            }
            Kind::SparseBinary { cols, scale } => {
                let mut y = vec![0.0; self.m];
                for (j, col) in cols.iter().enumerate() {
                    let v = scale * x[j];
                    for &i in col {
                        y[i as usize] += v;
                    }
                }
                y
            }
        }
    }

    /// Adjoint application `x = Φᵀy`.
    ///
    /// # Panics
    ///
    /// Panics if `y.len() != self.measurements()`.
    #[must_use]
    pub fn apply_adjoint(&self, y: &[f64]) -> Vec<f64> {
        assert_eq!(y.len(), self.m, "sensing adjoint: length mismatch");
        match &self.kind {
            Kind::DenseBernoulli { rows, scale } => {
                let mut x = vec![0.0; self.n];
                for (row, &yi) in rows.iter().zip(y) {
                    let w = scale * yi;
                    for (xj, c) in x.iter_mut().zip(row.chips()) {
                        *xj += w * c;
                    }
                }
                x
            }
            Kind::SparseBinary { cols, scale } => {
                let mut x = vec![0.0; self.n];
                for (j, col) in cols.iter().enumerate() {
                    let mut acc = 0.0;
                    for &i in col {
                        acc += y[i as usize];
                    }
                    x[j] = scale * acc;
                }
                x
            }
        }
    }

    /// Materializes `Φ` as a dense matrix (for the greedy solvers, which
    /// need explicit columns).
    #[must_use]
    pub fn to_matrix(&self) -> Matrix {
        match &self.kind {
            Kind::DenseBernoulli { rows, scale } => {
                Matrix::from_fn(self.m, self.n, |i, j| scale * rows[i].chips()[j])
            }
            Kind::SparseBinary { cols, scale } => {
                let mut mat = Matrix::zeros(self.m, self.n);
                for (j, col) in cols.iter().enumerate() {
                    for &i in col {
                        mat.set(i as usize, j, *scale);
                    }
                }
                mat
            }
        }
    }

    /// Short label for reports (`"bernoulli"` / `"sparse-binary"`).
    #[must_use]
    pub fn kind_name(&self) -> &'static str {
        match self.kind {
            Kind::DenseBernoulli { .. } => "bernoulli",
            Kind::SparseBinary { .. } => "sparse-binary",
        }
    }
}

fn check_shape(m: usize, n: usize) -> Result<(), FrontEndError> {
    if m == 0 {
        return Err(FrontEndError::BadParameter {
            name: "measurements",
            value: 0.0,
        });
    }
    if n == 0 || m > n {
        return Err(FrontEndError::BadParameter {
            name: "window (need measurements <= window)",
            value: n as f64,
        });
    }
    Ok(())
}

/// Draws `k` distinct values from `0..m` (partial Fisher–Yates).
fn sample_without_replacement<R: Rng + ?Sized>(rng: &mut R, m: usize, k: usize) -> Vec<u32> {
    use hybridcs_rand::RngExt;
    let mut pool: Vec<u32> = (0..m as u32).collect();
    for i in 0..k {
        let j = rng.random_range(i..m);
        pool.swap(i, j);
    }
    pool.truncate(k);
    pool.sort_unstable();
    pool
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybridcs_linalg::vector;

    #[test]
    fn bernoulli_shape_and_determinism() {
        let a = SensingMatrix::bernoulli(8, 32, 5).unwrap();
        let b = SensingMatrix::bernoulli(8, 32, 5).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.measurements(), 8);
        assert_eq!(a.window(), 32);
        assert_eq!(a.kind_name(), "bernoulli");
    }

    #[test]
    fn bernoulli_rows_have_unit_norm() {
        let phi = SensingMatrix::bernoulli(4, 64, 1).unwrap();
        let mat = phi.to_matrix();
        for i in 0..4 {
            let norm = vector::norm2(mat.row(i));
            assert!((norm - 1.0).abs() < 1e-12, "row {i} norm {norm}");
        }
    }

    #[test]
    fn apply_matches_materialized_matrix() {
        for phi in [
            SensingMatrix::bernoulli(8, 32, 7).unwrap(),
            SensingMatrix::sparse_binary(8, 32, 3, 7).unwrap(),
        ] {
            let x: Vec<f64> = (0..32).map(|i| (i as f64 * 0.3).sin()).collect();
            let fast = phi.apply(&x);
            let dense = phi.to_matrix().matvec(&x);
            for (a, b) in fast.iter().zip(&dense) {
                assert!((a - b).abs() < 1e-12, "{}", phi.kind_name());
            }
        }
    }

    #[test]
    fn adjoint_identity() {
        for phi in [
            SensingMatrix::bernoulli(6, 24, 2).unwrap(),
            SensingMatrix::sparse_binary(6, 24, 2, 2).unwrap(),
        ] {
            let x: Vec<f64> = (0..24).map(|i| i as f64 - 12.0).collect();
            let y: Vec<f64> = (0..6).map(|i| (i as f64).cos()).collect();
            let lhs = vector::dot(&phi.apply(&x), &y);
            let rhs = vector::dot(&x, &phi.apply_adjoint(&y));
            assert!(
                (lhs - rhs).abs() < 1e-9 * lhs.abs().max(1.0),
                "{}",
                phi.kind_name()
            );
        }
    }

    #[test]
    fn sparse_binary_columns_have_exact_weight() {
        let phi = SensingMatrix::sparse_binary(16, 40, 4, 11).unwrap();
        let mat = phi.to_matrix();
        for j in 0..40 {
            let col = mat.col(j);
            let nonzeros = col.iter().filter(|v| **v != 0.0).count();
            assert_eq!(nonzeros, 4, "column {j}");
            let norm = vector::norm2(&col);
            assert!((norm - 1.0).abs() < 1e-12, "column {j} norm {norm}");
        }
    }

    #[test]
    fn sparse_binary_rows_are_distinct_within_column() {
        let phi = SensingMatrix::sparse_binary(8, 100, 8, 3).unwrap();
        // ones_per_column == m: every column must be all rows exactly once.
        let mat = phi.to_matrix();
        for j in 0..100 {
            assert!(mat.col(j).iter().all(|v| *v != 0.0));
        }
    }

    #[test]
    fn rejects_degenerate_shapes() {
        assert!(SensingMatrix::bernoulli(0, 10, 0).is_err());
        assert!(SensingMatrix::bernoulli(10, 0, 0).is_err());
        assert!(SensingMatrix::bernoulli(20, 10, 0).is_err());
        assert!(SensingMatrix::sparse_binary(8, 32, 0, 0).is_err());
        assert!(SensingMatrix::sparse_binary(8, 32, 9, 0).is_err());
    }

    #[test]
    fn operator_norm_is_modest() {
        // A normalized Bernoulli matrix should have ‖Φ‖ near √(m/n)·√n/√n…
        // empirically below ~2.2 for these shapes; guard against scaling bugs.
        let phi = SensingMatrix::bernoulli(32, 128, 9).unwrap();
        let (norm, _) = hybridcs_linalg::operator_norm_est(
            128,
            32,
            |x, out| out.copy_from_slice(&phi.apply(x)),
            |y, out| out.copy_from_slice(&phi.apply_adjoint(y)),
            hybridcs_linalg::PowerIterationOptions::default(),
        );
        assert!(norm > 0.5 && norm < 2.5, "‖Φ‖ = {norm}");
    }
}
