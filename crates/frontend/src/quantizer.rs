use crate::FrontEndError;

/// Rounding convention of a uniform quantizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum QuantizerKind {
    /// Truncating quantizer: code `k` covers `[lo + k·d, lo + (k+1)·d)`.
    ///
    /// The reconstruction level is the **lower edge** of the cell, so a
    /// decoded sample `ẋ` certifies `ẋ ≤ x < ẋ + d` — exactly the bound the
    /// hybrid decoder feeds into Eq. (1) of the paper.
    #[default]
    Floor,
    /// Rounding quantizer: the reconstruction level is the cell midpoint,
    /// certifying `|x − x̂| ≤ d/2`. Used for CS-measurement digitization,
    /// where a symmetric error model is more natural.
    MidTread,
}

/// A uniform scalar quantizer over a fixed analog span.
///
/// # Example
///
/// ```
/// use hybridcs_frontend::{Quantizer, QuantizerKind};
///
/// # fn main() -> Result<(), hybridcs_frontend::FrontEndError> {
/// let q = Quantizer::new(3, -4.0, 4.0, QuantizerKind::Floor)?;
/// assert_eq!(q.levels(), 8);
/// assert_eq!(q.step(), 1.0);
/// let code = q.quantize(0.7);
/// let (lo, hi) = q.cell_bounds(code);
/// assert!(lo <= 0.7 && 0.7 < hi);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quantizer {
    bits: u32,
    lo: f64,
    hi: f64,
    kind: QuantizerKind,
}

impl Quantizer {
    /// Creates a `bits`-bit quantizer covering `[lo, hi]`.
    ///
    /// # Errors
    ///
    /// Returns [`FrontEndError::BadParameter`] when `bits` is 0 or above 24,
    /// or when the span is empty or non-finite.
    pub fn new(bits: u32, lo: f64, hi: f64, kind: QuantizerKind) -> Result<Self, FrontEndError> {
        if bits == 0 || bits > 24 {
            return Err(FrontEndError::BadParameter {
                name: "bits",
                value: bits as f64,
            });
        }
        if !(lo.is_finite() && hi.is_finite()) || lo >= hi {
            return Err(FrontEndError::BadParameter {
                name: "span (lo must be < hi, finite)",
                value: hi - lo,
            });
        }
        Ok(Quantizer { bits, lo, hi, kind })
    }

    /// Resolution in bits.
    #[must_use]
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Number of quantization levels, `2^bits`.
    #[must_use]
    pub fn levels(&self) -> u32 {
        1u32 << self.bits
    }

    /// Quantization step `d = (hi − lo) / 2^bits`.
    #[must_use]
    pub fn step(&self) -> f64 {
        (self.hi - self.lo) / self.levels() as f64
    }

    /// Lower edge of the analog span.
    #[must_use]
    pub fn span_lo(&self) -> f64 {
        self.lo
    }

    /// Upper edge of the analog span.
    #[must_use]
    pub fn span_hi(&self) -> f64 {
        self.hi
    }

    /// The rounding convention.
    #[must_use]
    pub fn kind(&self) -> QuantizerKind {
        self.kind
    }

    /// Quantizes one sample to a code in `[0, levels)`. Out-of-span inputs
    /// saturate at the edge codes.
    #[must_use]
    pub fn quantize(&self, x: f64) -> u32 {
        let max_code = self.levels() - 1;
        let normalized = (x - self.lo) / self.step();
        let code = match self.kind {
            QuantizerKind::Floor => normalized.floor(),
            QuantizerKind::MidTread => normalized.floor(), // cells are identical; levels differ
        };
        if code.is_nan() {
            return 0;
        }
        code.clamp(0.0, max_code as f64) as u32
    }

    /// Reconstruction level for a code: the cell's lower edge for
    /// [`QuantizerKind::Floor`], its midpoint for [`QuantizerKind::MidTread`].
    ///
    /// # Panics
    ///
    /// Panics if `code >= levels()`.
    #[must_use]
    pub fn dequantize(&self, code: u32) -> f64 {
        assert!(code < self.levels(), "code out of range");
        let edge = self.lo + code as f64 * self.step();
        match self.kind {
            QuantizerKind::Floor => edge,
            QuantizerKind::MidTread => edge + 0.5 * self.step(),
        }
    }

    /// Analog cell `[lo_edge, hi_edge)` covered by a code. For in-span
    /// inputs `x`, `quantize(x) == c` implies `cell_bounds(c).0 ≤ x <
    /// cell_bounds(c).1`.
    ///
    /// # Panics
    ///
    /// Panics if `code >= levels()`.
    #[must_use]
    pub fn cell_bounds(&self, code: u32) -> (f64, f64) {
        assert!(code < self.levels(), "code out of range");
        let lo = self.lo + code as f64 * self.step();
        (lo, lo + self.step())
    }

    /// Quantizes a slice.
    #[must_use]
    pub fn quantize_all(&self, x: &[f64]) -> Vec<u32> {
        x.iter().map(|&v| self.quantize(v)).collect()
    }

    /// Dequantizes a slice of codes.
    ///
    /// # Panics
    ///
    /// Panics if any code is out of range.
    #[must_use]
    pub fn dequantize_all(&self, codes: &[u32]) -> Vec<f64> {
        codes.iter().map(|&c| self.dequantize(c)).collect()
    }

    /// RMS of the quantization error for in-span inputs under the uniform
    /// model: `d/√12`.
    #[must_use]
    pub fn noise_rms(&self) -> f64 {
        self.step() / 12f64.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn floor_q(bits: u32) -> Quantizer {
        Quantizer::new(bits, -4.0, 4.0, QuantizerKind::Floor).unwrap()
    }

    #[test]
    fn step_and_levels() {
        let q = floor_q(3);
        assert_eq!(q.levels(), 8);
        assert!((q.step() - 1.0).abs() < 1e-12);
        assert!((q.noise_rms() - 1.0 / 12f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn floor_certifies_lower_bound() {
        let q = floor_q(7);
        for i in 0..1000 {
            let x = -4.0 + 8.0 * i as f64 / 1000.0;
            let code = q.quantize(x);
            let (lo, hi) = q.cell_bounds(code);
            assert!(lo <= x && x < hi + 1e-12, "x={x} lo={lo} hi={hi}");
            assert_eq!(q.dequantize(code), lo);
        }
    }

    #[test]
    fn mid_tread_error_is_half_step() {
        let q = Quantizer::new(6, -1.0, 1.0, QuantizerKind::MidTread).unwrap();
        for i in 0..500 {
            let x = -1.0 + 2.0 * i as f64 / 500.0 * 0.999;
            let xhat = q.dequantize(q.quantize(x));
            assert!((x - xhat).abs() <= q.step() / 2.0 + 1e-12);
        }
    }

    #[test]
    fn saturation_at_edges() {
        let q = floor_q(4);
        assert_eq!(q.quantize(-100.0), 0);
        assert_eq!(q.quantize(100.0), q.levels() - 1);
        assert_eq!(q.quantize(f64::NAN), 0);
    }

    #[test]
    fn exact_span_edges() {
        let q = floor_q(4);
        assert_eq!(q.quantize(-4.0), 0);
        // hi is exactly at the top edge; it saturates into the last cell.
        assert_eq!(q.quantize(4.0), 15);
    }

    #[test]
    fn quantize_all_roundtrip_within_step() {
        let q = Quantizer::new(8, -5.12, 5.12, QuantizerKind::Floor).unwrap();
        let x: Vec<f64> = (0..256).map(|i| -5.0 + 0.039 * i as f64).collect();
        let codes = q.quantize_all(&x);
        let xhat = q.dequantize_all(&codes);
        for (a, b) in x.iter().zip(&xhat) {
            assert!((a - b).abs() < q.step() + 1e-12);
        }
    }

    #[test]
    fn rejects_bad_configs() {
        assert!(Quantizer::new(0, -1.0, 1.0, QuantizerKind::Floor).is_err());
        assert!(Quantizer::new(30, -1.0, 1.0, QuantizerKind::Floor).is_err());
        assert!(Quantizer::new(8, 1.0, -1.0, QuantizerKind::Floor).is_err());
        assert!(Quantizer::new(8, 0.0, f64::INFINITY, QuantizerKind::Floor).is_err());
    }

    #[test]
    #[should_panic(expected = "code out of range")]
    fn dequantize_rejects_bad_code() {
        let _ = floor_q(3).dequantize(8);
    }

    #[test]
    fn seven_bit_step_matches_paper_figure() {
        // Paper Fig. 2(a): 7-bit steps over the MIT-BIH span look like ~16 adu.
        let q = Quantizer::new(
            7,
            crate::MIT_BIH_SPAN_MV.0,
            crate::MIT_BIH_SPAN_MV.1,
            QuantizerKind::Floor,
        )
        .unwrap();
        let step_adu = q.step() * 200.0; // 200 adu per mV
        assert!((step_adu - 16.0).abs() < 1e-9, "step {step_adu} adu");
    }
}
