use crate::{FrontEndError, Quantizer, QuantizerKind, MIT_BIH_SPAN_MV};

/// The parallel ultra-low-power low-resolution acquisition path of Fig. 1.
///
/// A B-bit floor quantizer samples the same analog window as the CS channel
/// at Nyquist rate. Its codes are cheap to acquire (a B-bit SAR at ECG rates
/// costs nanowatts under the paper's Eq. 4) and, crucially, certify the cell
/// bound `ẋ ≤ x < ẋ + d` that the hybrid decoder adds to Eq. (1).
///
/// # Example
///
/// ```
/// use hybridcs_frontend::LowResChannel;
///
/// # fn main() -> Result<(), hybridcs_frontend::FrontEndError> {
/// let channel = LowResChannel::new(7)?;
/// let x = vec![0.03, 0.51, -0.47, 1.23];
/// let frame = channel.acquire(&x);
/// let (lo, hi) = frame.bounds();
/// for ((v, l), h) in x.iter().zip(&lo).zip(&hi) {
///     assert!(*l <= *v && *v <= *h);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LowResChannel {
    quantizer: Quantizer,
}

impl LowResChannel {
    /// Creates a `bits`-bit channel over the MIT-BIH ±5.12 mV span.
    ///
    /// # Errors
    ///
    /// Returns [`FrontEndError::BadParameter`] for unsupported bit depths.
    pub fn new(bits: u32) -> Result<Self, FrontEndError> {
        LowResChannel::with_span(bits, MIT_BIH_SPAN_MV.0, MIT_BIH_SPAN_MV.1)
    }

    /// Creates a channel over a custom analog span.
    ///
    /// # Errors
    ///
    /// Returns [`FrontEndError::BadParameter`] for an invalid quantizer
    /// configuration.
    pub fn with_span(bits: u32, lo: f64, hi: f64) -> Result<Self, FrontEndError> {
        Ok(LowResChannel {
            quantizer: Quantizer::new(bits, lo, hi, QuantizerKind::Floor)?,
        })
    }

    /// Resolution in bits.
    #[must_use]
    pub fn bits(&self) -> u32 {
        self.quantizer.bits()
    }

    /// Quantization step `d` (the paper's "resolution depth step").
    #[must_use]
    pub fn step(&self) -> f64 {
        self.quantizer.step()
    }

    /// The underlying quantizer.
    #[must_use]
    pub fn quantizer(&self) -> &Quantizer {
        &self.quantizer
    }

    /// Acquires one processing window.
    #[must_use]
    pub fn acquire(&self, x: &[f64]) -> LowResFrame {
        LowResFrame {
            codes: self.quantizer.quantize_all(x),
            quantizer: self.quantizer,
        }
    }
}

/// One acquired low-resolution window: the raw codes plus the quantizer that
/// interprets them.
#[derive(Debug, Clone, PartialEq)]
pub struct LowResFrame {
    codes: Vec<u32>,
    quantizer: Quantizer,
}

impl LowResFrame {
    /// Reassembles a frame from codes previously produced by a channel with
    /// the same configuration (the receive side, after entropy decoding).
    ///
    /// # Errors
    ///
    /// Returns [`FrontEndError::BadParameter`] if any code exceeds the
    /// quantizer's level count.
    pub fn from_codes(codes: Vec<u32>, channel: &LowResChannel) -> Result<Self, FrontEndError> {
        let levels = channel.quantizer.levels();
        if let Some(&bad) = codes.iter().find(|&&c| c >= levels) {
            return Err(FrontEndError::BadParameter {
                name: "code",
                value: bad as f64,
            });
        }
        Ok(LowResFrame {
            codes,
            quantizer: channel.quantizer,
        })
    }

    /// The raw quantizer codes.
    #[must_use]
    pub fn codes(&self) -> &[u32] {
        &self.codes
    }

    /// Window length.
    #[must_use]
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// Whether the frame is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// The low-resolution reconstruction `ẋ` (cell lower edges).
    #[must_use]
    pub fn samples(&self) -> Vec<f64> {
        self.quantizer.dequantize_all(&self.codes)
    }

    /// Per-sample box bounds `(lo, hi)` — the constraint vectors of Eq. (1).
    ///
    /// For every in-span input the *closed* cell `[lo, hi]` contains the
    /// sample up to floating-point rounding at exact cell edges (a sample
    /// landing precisely on an edge may be attributed to either neighbouring
    /// cell). Decoders should therefore treat the box as closed.
    #[must_use]
    pub fn bounds(&self) -> (Vec<f64>, Vec<f64>) {
        let mut lo = Vec::with_capacity(self.codes.len());
        let mut hi = Vec::with_capacity(self.codes.len());
        for &c in &self.codes {
            let (l, h) = self.quantizer.cell_bounds(c);
            lo.push(l);
            hi.push(h);
        }
        (lo, hi)
    }

    /// The quantization step of the acquiring channel.
    #[must_use]
    pub fn step(&self) -> f64 {
        self.quantizer.step()
    }

    /// Raw (uncoded) payload size in bits: `len × bits`.
    #[must_use]
    pub fn raw_payload_bits(&self) -> usize {
        self.codes.len() * self.quantizer.bits() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize) -> Vec<f64> {
        (0..n).map(|i| -5.0 + 10.0 * i as f64 / n as f64).collect()
    }

    #[test]
    fn bounds_contain_signal() {
        let channel = LowResChannel::new(7).unwrap();
        let x = ramp(500);
        let frame = channel.acquire(&x);
        let (lo, hi) = frame.bounds();
        let eps = 1e-9;
        for ((v, l), h) in x.iter().zip(&lo).zip(&hi) {
            assert!(*l - eps <= *v && *v <= *h + eps, "v={v} not in [{l}, {h}]");
        }
    }

    #[test]
    fn bound_width_equals_step() {
        let channel = LowResChannel::new(5).unwrap();
        let frame = channel.acquire(&ramp(64));
        let (lo, hi) = frame.bounds();
        for (l, h) in lo.iter().zip(&hi) {
            assert!((h - l - channel.step()).abs() < 1e-12);
        }
    }

    #[test]
    fn samples_are_cell_lower_edges() {
        let channel = LowResChannel::new(4).unwrap();
        let frame = channel.acquire(&[0.3]);
        let (lo, _) = frame.bounds();
        assert_eq!(frame.samples(), lo);
    }

    #[test]
    fn step_halves_per_extra_bit() {
        let s7 = LowResChannel::new(7).unwrap().step();
        let s8 = LowResChannel::new(8).unwrap().step();
        assert!((s7 / s8 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn from_codes_roundtrip() {
        let channel = LowResChannel::new(6).unwrap();
        let frame = channel.acquire(&ramp(100));
        let rebuilt = LowResFrame::from_codes(frame.codes().to_vec(), &channel).unwrap();
        assert_eq!(frame, rebuilt);
    }

    #[test]
    fn from_codes_rejects_overflow() {
        let channel = LowResChannel::new(3).unwrap();
        assert!(LowResFrame::from_codes(vec![8], &channel).is_err());
        assert!(LowResFrame::from_codes(vec![7], &channel).is_ok());
    }

    #[test]
    fn payload_accounting() {
        let channel = LowResChannel::new(7).unwrap();
        let frame = channel.acquire(&ramp(512));
        assert_eq!(frame.raw_payload_bits(), 512 * 7);
    }

    #[test]
    fn out_of_span_saturates_but_still_bounds_in_span_samples() {
        let channel = LowResChannel::new(7).unwrap();
        let frame = channel.acquire(&[100.0, -100.0]);
        let (lo, hi) = frame.bounds();
        // Saturated cells are the extreme cells of the span.
        assert!((hi[0] - MIT_BIH_SPAN_MV.1).abs() < 1e-9);
        assert!((lo[1] - MIT_BIH_SPAN_MV.0).abs() < 1e-9);
    }

    #[test]
    fn empty_window_is_fine() {
        let channel = LowResChannel::new(7).unwrap();
        let frame = channel.acquire(&[]);
        assert!(frame.is_empty());
        assert_eq!(frame.bounds(), (vec![], vec![]));
    }
}
