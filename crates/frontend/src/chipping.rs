use hybridcs_rand::{RngExt, SeedableRng};

/// A ±1 pseudo-random chipping sequence — the modulation waveform of one
/// RMPI channel (the `p_c(t)` of Fig. 3 in the paper).
///
/// On silicon these are LFSR outputs; behaviourally a seeded Bernoulli
/// sequence is equivalent, and seeding makes encoder and decoder agree on
/// `Φ` without transmitting it.
///
/// Chips are stored bit-packed: one `u64` word holds 64 chips, with bit
/// `j mod 64` of word `j / 64` **set when chip `j` is −1** (i.e. the sign
/// bit of the chip). [`ChippingSequence::integrate`] exploits this with a
/// branchless sign flip — `c·v` for `c = ±1` is exactly `±v`, so XOR-ing
/// the sign bit into `v` reproduces the unpacked multiply bit-for-bit while
/// cutting chip memory traffic 64×.
///
/// # Example
///
/// ```
/// use hybridcs_frontend::ChippingSequence;
///
/// let seq = ChippingSequence::bernoulli(512, 42);
/// assert_eq!(seq.len(), 512);
/// assert!(seq.chips().iter().all(|&c| c == 1.0 || c == -1.0));
/// // The same seed regenerates the same sequence (decoder side).
/// assert_eq!(seq, ChippingSequence::bernoulli(512, 42));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChippingSequence {
    /// Sign bitplane: bit `j & 63` of word `j >> 6` is 1 ⇔ chip `j` is −1.
    neg: Vec<u64>,
    len: usize,
}

impl ChippingSequence {
    /// Generates a fair ±1 Bernoulli sequence of length `len` from `seed`.
    #[must_use]
    pub fn bernoulli(len: usize, seed: u64) -> Self {
        let mut rng = hybridcs_rand::rngs::StdRng::seed_from_u64(seed);
        let mut neg = vec![0u64; len.div_ceil(64)];
        // One draw per chip in chip order — the same RNG consumption as the
        // unpacked representation, so seeds regenerate identical sequences.
        for j in 0..len {
            if !rng.random_bool(0.5) {
                neg[j >> 6] |= 1u64 << (j & 63);
            }
        }
        ChippingSequence { neg, len }
    }

    /// Chip `j` as `±1.0`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.len()`.
    #[must_use]
    pub fn chip(&self, j: usize) -> f64 {
        assert!(j < self.len, "chip index out of range");
        if (self.neg[j >> 6] >> (j & 63)) & 1 == 1 {
            -1.0
        } else {
            1.0
        }
    }

    /// The chip values (±1), materialized from the packed bitplane.
    #[must_use]
    pub fn chips(&self) -> Vec<f64> {
        (0..self.len).map(|j| self.chip(j)).collect()
    }

    /// The packed sign bitplane (bit set ⇔ chip is −1). Bits past
    /// `self.len()` in the last word are zero.
    #[must_use]
    pub fn sign_words(&self) -> &[u64] {
        &self.neg
    }

    /// Sequence length.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the sequence is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Demodulate-and-integrate: `Σₜ p(t)·x(t)`, the integrate-and-dump
    /// output of one RMPI channel over a processing window.
    ///
    /// Accumulates left-to-right with a single accumulator — the same order
    /// as the unpacked `Σ c·v` fold, so results are bit-identical to the
    /// f64-chip reference.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.len()`.
    #[must_use]
    pub fn integrate(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.len, "chipping length mismatch");
        let mut acc = 0.0;
        for (chunk, &word0) in x.chunks(64).zip(&self.neg) {
            let mut word = word0;
            for &v in chunk {
                acc += f64::from_bits(v.to_bits() ^ ((word & 1) << 63));
                word >>= 1;
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            ChippingSequence::bernoulli(64, 1),
            ChippingSequence::bernoulli(64, 1)
        );
        assert_ne!(
            ChippingSequence::bernoulli(64, 1),
            ChippingSequence::bernoulli(64, 2)
        );
    }

    #[test]
    fn roughly_balanced() {
        let seq = ChippingSequence::bernoulli(10_000, 3);
        let sum: f64 = seq.chips().iter().sum();
        assert!(sum.abs() < 300.0, "imbalance {sum}");
    }

    #[test]
    fn packed_matches_unpacked_fold_to_zero_ulp() {
        // The load-bearing equivalence: the branchless sign-XOR integrate
        // must reproduce the unpacked `Σ c·v` left fold bit-for-bit.
        for (len, seed) in [(1usize, 0u64), (63, 7), (64, 8), (65, 9), (512, 0x601D)] {
            let seq = ChippingSequence::bernoulli(len, seed);
            let chips = seq.chips();
            let x: Vec<f64> = (0..len).map(|i| (i as f64 * 0.37).sin() * 3.25).collect();
            let reference: f64 = chips.iter().zip(&x).map(|(c, v)| c * v).sum();
            assert_eq!(
                seq.integrate(&x).to_bits(),
                reference.to_bits(),
                "len {len}"
            );
        }
    }

    #[test]
    fn chip_accessor_matches_chips_vec() {
        let seq = ChippingSequence::bernoulli(130, 5);
        let chips = seq.chips();
        for (j, &c) in chips.iter().enumerate() {
            assert_eq!(seq.chip(j), c);
        }
        // Tail bits past len stay zero, so sign_words comparisons are exact.
        assert_eq!(seq.sign_words().len(), 3);
    }

    #[test]
    fn integrate_constant_signal_measures_imbalance() {
        let seq = ChippingSequence::bernoulli(128, 9);
        let ones = vec![1.0; 128];
        let sum: f64 = seq.chips().iter().sum();
        assert_eq!(seq.integrate(&ones), sum);
    }

    #[test]
    fn integrate_is_linear() {
        let seq = ChippingSequence::bernoulli(32, 5);
        let x: Vec<f64> = (0..32).map(|i| i as f64).collect();
        let y: Vec<f64> = (0..32).map(|i| (i * i) as f64 * 0.01).collect();
        let mixed: Vec<f64> = x.iter().zip(&y).map(|(a, b)| 2.0 * a + b).collect();
        let lhs = seq.integrate(&mixed);
        let rhs = 2.0 * seq.integrate(&x) + seq.integrate(&y);
        assert!((lhs - rhs).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn integrate_rejects_mismatch() {
        let seq = ChippingSequence::bernoulli(8, 0);
        let _ = seq.integrate(&[1.0; 4]);
    }

    #[test]
    fn empty_sequence() {
        let seq = ChippingSequence::bernoulli(0, 0);
        assert!(seq.is_empty());
        assert_eq!(seq.integrate(&[]), 0.0);
    }
}
