use hybridcs_rand::{RngExt, SeedableRng};

/// A ±1 pseudo-random chipping sequence — the modulation waveform of one
/// RMPI channel (the `p_c(t)` of Fig. 3 in the paper).
///
/// On silicon these are LFSR outputs; behaviourally a seeded Bernoulli
/// sequence is equivalent, and seeding makes encoder and decoder agree on
/// `Φ` without transmitting it.
///
/// # Example
///
/// ```
/// use hybridcs_frontend::ChippingSequence;
///
/// let seq = ChippingSequence::bernoulli(512, 42);
/// assert_eq!(seq.len(), 512);
/// assert!(seq.chips().iter().all(|&c| c == 1.0 || c == -1.0));
/// // The same seed regenerates the same sequence (decoder side).
/// assert_eq!(seq, ChippingSequence::bernoulli(512, 42));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ChippingSequence {
    chips: Vec<f64>,
}

impl ChippingSequence {
    /// Generates a fair ±1 Bernoulli sequence of length `len` from `seed`.
    #[must_use]
    pub fn bernoulli(len: usize, seed: u64) -> Self {
        let mut rng = hybridcs_rand::rngs::StdRng::seed_from_u64(seed);
        let chips = (0..len)
            .map(|_| if rng.random_bool(0.5) { 1.0 } else { -1.0 })
            .collect();
        ChippingSequence { chips }
    }

    /// The chip values (±1).
    #[must_use]
    pub fn chips(&self) -> &[f64] {
        &self.chips
    }

    /// Sequence length.
    #[must_use]
    pub fn len(&self) -> usize {
        self.chips.len()
    }

    /// Whether the sequence is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.chips.is_empty()
    }

    /// Demodulate-and-integrate: `Σₜ p(t)·x(t)`, the integrate-and-dump
    /// output of one RMPI channel over a processing window.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.len()`.
    #[must_use]
    pub fn integrate(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.chips.len(), "chipping length mismatch");
        self.chips.iter().zip(x).map(|(c, v)| c * v).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            ChippingSequence::bernoulli(64, 1),
            ChippingSequence::bernoulli(64, 1)
        );
        assert_ne!(
            ChippingSequence::bernoulli(64, 1),
            ChippingSequence::bernoulli(64, 2)
        );
    }

    #[test]
    fn roughly_balanced() {
        let seq = ChippingSequence::bernoulli(10_000, 3);
        let sum: f64 = seq.chips().iter().sum();
        assert!(sum.abs() < 300.0, "imbalance {sum}");
    }

    #[test]
    fn integrate_constant_signal_measures_imbalance() {
        let seq = ChippingSequence::bernoulli(128, 9);
        let ones = vec![1.0; 128];
        let sum: f64 = seq.chips().iter().sum();
        assert_eq!(seq.integrate(&ones), sum);
    }

    #[test]
    fn integrate_is_linear() {
        let seq = ChippingSequence::bernoulli(32, 5);
        let x: Vec<f64> = (0..32).map(|i| i as f64).collect();
        let y: Vec<f64> = (0..32).map(|i| (i * i) as f64 * 0.01).collect();
        let mixed: Vec<f64> = x.iter().zip(&y).map(|(a, b)| 2.0 * a + b).collect();
        let lhs = seq.integrate(&mixed);
        let rhs = 2.0 * seq.integrate(&x) + seq.integrate(&y);
        assert!((lhs - rhs).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn integrate_rejects_mismatch() {
        let seq = ChippingSequence::bernoulli(8, 0);
        let _ = seq.integrate(&[1.0; 4]);
    }

    #[test]
    fn empty_sequence() {
        let seq = ChippingSequence::bernoulli(0, 0);
        assert!(seq.is_empty());
        assert_eq!(seq.integrate(&[]), 0.0);
    }
}
