//! Acquisition front-end substrate: ADC models, quantizers, the parallel
//! low-resolution channel, and the RMPI compressed-sensing channel.
//!
//! This crate is the behavioural model of the hardware in Fig. 1 and Fig. 3
//! of the paper:
//!
//! * [`Quantizer`] — uniform floor/mid-tread quantizers with exact cell
//!   bounds. The *floor* convention is what turns the paper's low-resolution
//!   samples into the hard constraint `ẋ ≤ x < ẋ + d` of Eq. (1).
//! * [`AdcModel`] — sampling + input noise + quantization, used both for the
//!   low-resolution Nyquist path and for digitizing CS measurements.
//! * [`LowResChannel`] — the parallel ultra-low-power path: a B-bit floor
//!   quantizer over the MIT-BIH ±5.12 mV span producing codes and
//!   reconstruction bounds.
//! * [`ChippingSequence`] — ±1 pseudo-random modulation sequences, one per
//!   RMPI channel.
//! * [`SensingMatrix`] — dense Bernoulli (`±1/√n`, the exact RMPI
//!   integrate-and-dump model) and sparse binary sensing operators with
//!   forward/adjoint application.
//! * [`Rmpi`] — the m-channel random-modulator pre-integrator: chipping,
//!   integration over the processing window, optional input-referred
//!   amplifier noise, and measurement quantization
//!   ([`MeasurementQuantizer`]).
//!
//! # Example
//!
//! ```
//! use hybridcs_frontend::{LowResChannel, Rmpi, RmpiConfig};
//!
//! # fn main() -> Result<(), hybridcs_frontend::FrontEndError> {
//! let x: Vec<f64> = (0..512).map(|i| (i as f64 * 0.05).sin()).collect();
//! // CS path: 64 channels over a 512-sample window.
//! let rmpi = Rmpi::new(RmpiConfig { channels: 64, window: 512, seed: 7, ..RmpiConfig::default() })?;
//! let y = rmpi.measure(&x);
//! assert_eq!(y.len(), 64);
//! // Low-resolution path: 7-bit parallel ADC.
//! let lowres = LowResChannel::new(7)?;
//! let frame = lowres.acquire(&x);
//! let (lo, hi) = frame.bounds();
//! assert!(x.iter().zip(&lo).zip(&hi).all(|((v, l), h)| l <= v && v < h));
//! # Ok(())
//! # }
//! ```

// `deny` rather than `forbid`: `sensing::batch_kernels` scopes a single
// `allow(unsafe_code)` around its runtime-dispatched AVX2 twins of the
// packed-sign kernels; everything else still refuses unsafe at compile
// time.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod adc;
mod chipping;
mod error;
mod lowres;
mod quantizer;
mod rmpi;
mod sensing;

pub use adc::{AdcModel, MeasurementQuantizer};
pub use chipping::ChippingSequence;
pub use error::FrontEndError;
pub use lowres::{LowResChannel, LowResFrame};
pub use quantizer::{Quantizer, QuantizerKind};
pub use rmpi::{Rmpi, RmpiConfig, StuckChip};
pub use sensing::{SensingMatrix, UnpackedBernoulli};

/// MIT-BIH analog span in millivolts: an 11-bit converter at 200 adu/mV
/// covers ±5.12 mV.
pub const MIT_BIH_SPAN_MV: (f64, f64) = (-5.12, 5.12);
