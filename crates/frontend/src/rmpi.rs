use crate::{FrontEndError, MeasurementQuantizer, SensingMatrix};
use hybridcs_rand::normal::standard_normal;
use hybridcs_rand::SeedableRng;

/// Configuration of the [`Rmpi`] behavioural model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmpiConfig {
    /// Number of parallel channels `m` (= measurements per window).
    pub channels: usize,
    /// Processing-window length `n` in Nyquist samples.
    pub window: usize,
    /// Seed for the chipping sequences; sharing it with the decoder is what
    /// lets both sides agree on `Φ`.
    pub seed: u64,
    /// Input-referred amplifier noise, RMS in input units (mV). Zero gives
    /// an ideal front end.
    pub amplifier_noise_rms: f64,
    /// Measurement digitizer resolution in bits (the paper uses 12).
    pub measurement_bits: u32,
    /// Digitizer full scale in measurement units. Measurements beyond it
    /// saturate.
    pub measurement_full_scale: f64,
}

impl Default for RmpiConfig {
    fn default() -> Self {
        RmpiConfig {
            channels: 96,
            window: 512,
            seed: 0x51C5,
            amplifier_noise_rms: 0.0,
            measurement_bits: 12,
            measurement_full_scale: 2.5,
        }
    }
}

/// A chipping-sequence stuck-at fault on one RMPI channel: the pseudo-random
/// ±1 modulator is frozen at a constant `value`, so the channel degenerates
/// from a Bernoulli projection into a plain scaled integrator,
/// `y[channel] = value · Σx / √n`. This is the hardware failure mode of a
/// stuck shift-register bit in the chipping generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StuckChip {
    /// Which RMPI channel is stuck (`0 ≤ channel < m`).
    pub channel: usize,
    /// The frozen chip value, typically `+1.0` or `-1.0`.
    pub value: f64,
}

/// Behavioural random-modulator pre-integrator (Fig. 3 of the paper).
///
/// Each of the `m` channels multiplies the analog window by its ±1 chipping
/// sequence and integrates over the window (integrate-and-dump), which is
/// algebraically `y = Φx` with `Φ` a `±1/√n` Bernoulli matrix. The model
/// optionally injects input-referred amplifier noise before modulation and
/// digitizes the integrator outputs at 12 bits.
///
/// # Example
///
/// ```
/// use hybridcs_frontend::{Rmpi, RmpiConfig};
///
/// # fn main() -> Result<(), hybridcs_frontend::FrontEndError> {
/// let rmpi = Rmpi::new(RmpiConfig { channels: 32, window: 256, ..RmpiConfig::default() })?;
/// let x = vec![0.5; 256];
/// let clean = rmpi.measure(&x);
/// let digitized = rmpi.acquire(&x, 0)?;
/// assert_eq!(clean.len(), 32);
/// assert_eq!(digitized.len(), 32);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Rmpi {
    config: RmpiConfig,
    sensing: SensingMatrix,
    digitizer: MeasurementQuantizer,
}

impl Rmpi {
    /// Builds the RMPI model and its sensing operator.
    ///
    /// # Errors
    ///
    /// Returns [`FrontEndError::BadParameter`] on degenerate shapes, a
    /// negative noise level, or an invalid digitizer configuration.
    pub fn new(config: RmpiConfig) -> Result<Self, FrontEndError> {
        if config.amplifier_noise_rms < 0.0 || !config.amplifier_noise_rms.is_finite() {
            return Err(FrontEndError::BadParameter {
                name: "amplifier_noise_rms",
                value: config.amplifier_noise_rms,
            });
        }
        let sensing = SensingMatrix::bernoulli(config.channels, config.window, config.seed)?;
        let digitizer =
            MeasurementQuantizer::new(config.measurement_bits, config.measurement_full_scale)?;
        Ok(Rmpi {
            config,
            sensing,
            digitizer,
        })
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &RmpiConfig {
        &self.config
    }

    /// The equivalent sensing operator `Φ` (what the decoder regenerates).
    #[must_use]
    pub fn sensing_matrix(&self) -> &SensingMatrix {
        &self.sensing
    }

    /// The measurement digitizer.
    #[must_use]
    pub fn digitizer(&self) -> &MeasurementQuantizer {
        &self.digitizer
    }

    /// Ideal (noiseless, undigitized) measurement `y = Φx`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != config.window` (programming error inside a
    /// pipeline; use [`Rmpi::acquire`] for the checked path).
    #[must_use]
    pub fn measure(&self, x: &[f64]) -> Vec<f64> {
        self.sensing.apply(x)
    }

    /// Full acquisition: amplifier noise → modulation/integration →
    /// 12-bit digitization. Deterministic in `(x, noise_seed)`.
    ///
    /// # Errors
    ///
    /// Returns [`FrontEndError::WindowMismatch`] if `x` has the wrong length.
    pub fn acquire(&self, x: &[f64], noise_seed: u64) -> Result<Vec<f64>, FrontEndError> {
        self.acquire_with_stuck_chips(x, noise_seed, &[])
    }

    /// [`Rmpi::acquire`] with chipping-sequence stuck-at faults: after
    /// modulation, each faulty channel's measurement is replaced by the
    /// constant-chip integral `value · Σx / √n` (of the *noisy* signal, so
    /// the fault composes with amplifier noise exactly as in hardware).
    /// Each applied fault is counted under
    /// `faults_stuck_chip_applied_total`.
    ///
    /// # Errors
    ///
    /// Returns [`FrontEndError::WindowMismatch`] for a wrong-length `x` and
    /// [`FrontEndError::BadParameter`] for a channel index `≥ m` or a
    /// non-finite stuck value.
    pub fn acquire_with_stuck_chips(
        &self,
        x: &[f64],
        noise_seed: u64,
        stuck: &[StuckChip],
    ) -> Result<Vec<f64>, FrontEndError> {
        if x.len() != self.config.window {
            return Err(FrontEndError::WindowMismatch {
                expected: self.config.window,
                actual: x.len(),
            });
        }
        for fault in stuck {
            if fault.channel >= self.config.channels {
                return Err(FrontEndError::BadParameter {
                    name: "stuck chip channel",
                    value: fault.channel as f64,
                });
            }
            if !fault.value.is_finite() {
                return Err(FrontEndError::BadParameter {
                    name: "stuck chip value",
                    value: fault.value,
                });
            }
        }
        let mut y = {
            let _span = hybridcs_obs::span!("sensing");
            if self.config.amplifier_noise_rms > 0.0 {
                let mut rng = hybridcs_rand::rngs::StdRng::seed_from_u64(noise_seed);
                let noisy: Vec<f64> = x
                    .iter()
                    .map(|&v| v + self.config.amplifier_noise_rms * standard_normal(&mut rng))
                    .collect();
                let mut y = self.sensing.apply(&noisy);
                apply_stuck_chips(&mut y, &noisy, stuck);
                y
            } else {
                let mut y = self.sensing.apply(x);
                apply_stuck_chips(&mut y, x, stuck);
                y
            }
        };
        if !stuck.is_empty() {
            hybridcs_obs::global()
                .counter("faults_stuck_chip_applied_total", &[])
                .add(stuck.len() as u64);
        }
        let _span = hybridcs_obs::span!("quantize");
        y = self.digitizer.digitize(&y);
        Ok(y)
    }

    /// ℓ₂ error budget `σ` for the decoder: quantization noise of the
    /// digitizer plus (if configured) the expected amplifier-noise
    /// contribution `‖Φe‖ ≈ √m·noise_rms`.
    #[must_use]
    pub fn noise_sigma(&self) -> f64 {
        let m = self.config.channels;
        let quant = self.digitizer.noise_sigma(m);
        let amp = self.config.amplifier_noise_rms * (m as f64).sqrt();
        (quant * quant + amp * amp).sqrt()
    }

    /// Transmitted payload size in bits for one window.
    #[must_use]
    pub fn payload_bits(&self) -> usize {
        self.digitizer.payload_bits(self.config.channels)
    }
}

/// Replaces each stuck channel's measurement with the constant-chip
/// integral `value · Σx / √n`, matching the `1/√n` row scale of the
/// Bernoulli sensing matrix.
fn apply_stuck_chips(y: &mut [f64], x: &[f64], stuck: &[StuckChip]) {
    if stuck.is_empty() {
        return;
    }
    let scale = 1.0 / (x.len() as f64).sqrt();
    let total: f64 = x.iter().sum();
    for fault in stuck {
        y[fault.channel] = fault.value * total * scale;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Rmpi {
        Rmpi::new(RmpiConfig {
            channels: 16,
            window: 128,
            seed: 3,
            ..RmpiConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn measure_matches_sensing_matrix() {
        let rmpi = small();
        let x: Vec<f64> = (0..128).map(|i| (i as f64 * 0.1).sin()).collect();
        assert_eq!(rmpi.measure(&x), rmpi.sensing_matrix().apply(&x));
    }

    #[test]
    fn acquire_checks_window() {
        let rmpi = small();
        assert!(matches!(
            rmpi.acquire(&[0.0; 64], 0),
            Err(FrontEndError::WindowMismatch { .. })
        ));
    }

    #[test]
    fn digitization_error_within_sigma_budget() {
        let rmpi = small();
        let x: Vec<f64> = (0..128).map(|i| 0.8 * (i as f64 * 0.21).sin()).collect();
        let clean = rmpi.measure(&x);
        let acquired = rmpi.acquire(&x, 0).unwrap();
        let err: f64 = clean
            .iter()
            .zip(&acquired)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        // 3x budget to cover the uniform-vs-RMS model slack.
        assert!(err <= 3.0 * rmpi.noise_sigma(), "err {err}");
    }

    #[test]
    fn amplifier_noise_is_seeded_and_additive() {
        let rmpi = Rmpi::new(RmpiConfig {
            channels: 16,
            window: 128,
            seed: 3,
            amplifier_noise_rms: 0.05,
            ..RmpiConfig::default()
        })
        .unwrap();
        let x = vec![0.0; 128];
        let a = rmpi.acquire(&x, 1).unwrap();
        let b = rmpi.acquire(&x, 1).unwrap();
        let c = rmpi.acquire(&x, 2).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
        // With noise, measurements of a zero signal are not all zero.
        assert!(a.iter().any(|v| v.abs() > 0.0));
    }

    #[test]
    fn noise_sigma_combines_sources() {
        let quiet = small();
        let noisy = Rmpi::new(RmpiConfig {
            channels: 16,
            window: 128,
            seed: 3,
            amplifier_noise_rms: 0.05,
            ..RmpiConfig::default()
        })
        .unwrap();
        assert!(noisy.noise_sigma() > quiet.noise_sigma());
    }

    #[test]
    fn payload_is_m_times_bits() {
        let rmpi = small();
        assert_eq!(rmpi.payload_bits(), 16 * 12);
    }

    #[test]
    fn same_seed_same_matrix_across_instances() {
        // Encoder and decoder construct Φ independently from (m, n, seed).
        let a = small();
        let b = small();
        let x: Vec<f64> = (0..128).map(|i| i as f64 * 0.01).collect();
        assert_eq!(a.measure(&x), b.measure(&x));
    }

    #[test]
    fn stuck_chip_replaces_one_channel_only() {
        let rmpi = small();
        let x: Vec<f64> = (0..128)
            .map(|i| 0.5 * (i as f64 * 0.13).sin() + 0.1)
            .collect();
        let clean = rmpi.acquire(&x, 0).unwrap();
        let faulty = rmpi
            .acquire_with_stuck_chips(
                &x,
                0,
                &[StuckChip {
                    channel: 5,
                    value: 1.0,
                }],
            )
            .unwrap();
        for (ch, (c, f)) in clean.iter().zip(&faulty).enumerate() {
            if ch == 5 {
                // The stuck channel integrates the raw signal: y = Σx/√n
                // (then digitized, so compare against the digitized value).
                let expected = x.iter().sum::<f64>() / (128.0f64).sqrt();
                let quantized = rmpi.digitizer().digitize(&[expected])[0];
                assert!((f - quantized).abs() < 1e-12, "{f} vs {quantized}");
            } else {
                assert_eq!(c, f, "channel {ch} changed");
            }
        }
    }

    #[test]
    fn no_stuck_chips_matches_acquire() {
        let rmpi = small();
        let x: Vec<f64> = (0..128).map(|i| (i as f64 * 0.07).cos()).collect();
        assert_eq!(
            rmpi.acquire(&x, 3).unwrap(),
            rmpi.acquire_with_stuck_chips(&x, 3, &[]).unwrap()
        );
    }

    #[test]
    fn stuck_chip_validation() {
        let rmpi = small();
        let x = vec![0.0; 128];
        assert!(matches!(
            rmpi.acquire_with_stuck_chips(
                &x,
                0,
                &[StuckChip {
                    channel: 16,
                    value: 1.0
                }]
            ),
            Err(FrontEndError::BadParameter { .. })
        ));
        assert!(matches!(
            rmpi.acquire_with_stuck_chips(
                &x,
                0,
                &[StuckChip {
                    channel: 0,
                    value: f64::NAN
                }]
            ),
            Err(FrontEndError::BadParameter { .. })
        ));
    }

    #[test]
    fn rejects_negative_noise() {
        assert!(Rmpi::new(RmpiConfig {
            amplifier_noise_rms: -1.0,
            ..RmpiConfig::default()
        })
        .is_err());
    }
}
