use crate::{FrontEndError, MeasurementQuantizer, SensingMatrix};
use hybridcs_rand::normal::standard_normal;
use hybridcs_rand::SeedableRng;

/// Configuration of the [`Rmpi`] behavioural model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmpiConfig {
    /// Number of parallel channels `m` (= measurements per window).
    pub channels: usize,
    /// Processing-window length `n` in Nyquist samples.
    pub window: usize,
    /// Seed for the chipping sequences; sharing it with the decoder is what
    /// lets both sides agree on `Φ`.
    pub seed: u64,
    /// Input-referred amplifier noise, RMS in input units (mV). Zero gives
    /// an ideal front end.
    pub amplifier_noise_rms: f64,
    /// Measurement digitizer resolution in bits (the paper uses 12).
    pub measurement_bits: u32,
    /// Digitizer full scale in measurement units. Measurements beyond it
    /// saturate.
    pub measurement_full_scale: f64,
}

impl Default for RmpiConfig {
    fn default() -> Self {
        RmpiConfig {
            channels: 96,
            window: 512,
            seed: 0x51C5,
            amplifier_noise_rms: 0.0,
            measurement_bits: 12,
            measurement_full_scale: 2.5,
        }
    }
}

/// Behavioural random-modulator pre-integrator (Fig. 3 of the paper).
///
/// Each of the `m` channels multiplies the analog window by its ±1 chipping
/// sequence and integrates over the window (integrate-and-dump), which is
/// algebraically `y = Φx` with `Φ` a `±1/√n` Bernoulli matrix. The model
/// optionally injects input-referred amplifier noise before modulation and
/// digitizes the integrator outputs at 12 bits.
///
/// # Example
///
/// ```
/// use hybridcs_frontend::{Rmpi, RmpiConfig};
///
/// # fn main() -> Result<(), hybridcs_frontend::FrontEndError> {
/// let rmpi = Rmpi::new(RmpiConfig { channels: 32, window: 256, ..RmpiConfig::default() })?;
/// let x = vec![0.5; 256];
/// let clean = rmpi.measure(&x);
/// let digitized = rmpi.acquire(&x, 0)?;
/// assert_eq!(clean.len(), 32);
/// assert_eq!(digitized.len(), 32);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Rmpi {
    config: RmpiConfig,
    sensing: SensingMatrix,
    digitizer: MeasurementQuantizer,
}

impl Rmpi {
    /// Builds the RMPI model and its sensing operator.
    ///
    /// # Errors
    ///
    /// Returns [`FrontEndError::BadParameter`] on degenerate shapes, a
    /// negative noise level, or an invalid digitizer configuration.
    pub fn new(config: RmpiConfig) -> Result<Self, FrontEndError> {
        if config.amplifier_noise_rms < 0.0 || !config.amplifier_noise_rms.is_finite() {
            return Err(FrontEndError::BadParameter {
                name: "amplifier_noise_rms",
                value: config.amplifier_noise_rms,
            });
        }
        let sensing = SensingMatrix::bernoulli(config.channels, config.window, config.seed)?;
        let digitizer =
            MeasurementQuantizer::new(config.measurement_bits, config.measurement_full_scale)?;
        Ok(Rmpi {
            config,
            sensing,
            digitizer,
        })
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &RmpiConfig {
        &self.config
    }

    /// The equivalent sensing operator `Φ` (what the decoder regenerates).
    #[must_use]
    pub fn sensing_matrix(&self) -> &SensingMatrix {
        &self.sensing
    }

    /// The measurement digitizer.
    #[must_use]
    pub fn digitizer(&self) -> &MeasurementQuantizer {
        &self.digitizer
    }

    /// Ideal (noiseless, undigitized) measurement `y = Φx`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != config.window` (programming error inside a
    /// pipeline; use [`Rmpi::acquire`] for the checked path).
    #[must_use]
    pub fn measure(&self, x: &[f64]) -> Vec<f64> {
        self.sensing.apply(x)
    }

    /// Full acquisition: amplifier noise → modulation/integration →
    /// 12-bit digitization. Deterministic in `(x, noise_seed)`.
    ///
    /// # Errors
    ///
    /// Returns [`FrontEndError::WindowMismatch`] if `x` has the wrong length.
    pub fn acquire(&self, x: &[f64], noise_seed: u64) -> Result<Vec<f64>, FrontEndError> {
        if x.len() != self.config.window {
            return Err(FrontEndError::WindowMismatch {
                expected: self.config.window,
                actual: x.len(),
            });
        }
        let y = {
            let _span = hybridcs_obs::span!("sensing");
            if self.config.amplifier_noise_rms > 0.0 {
                let mut rng = hybridcs_rand::rngs::StdRng::seed_from_u64(noise_seed);
                let noisy: Vec<f64> = x
                    .iter()
                    .map(|&v| v + self.config.amplifier_noise_rms * standard_normal(&mut rng))
                    .collect();
                self.sensing.apply(&noisy)
            } else {
                self.sensing.apply(x)
            }
        };
        let _span = hybridcs_obs::span!("quantize");
        Ok(self.digitizer.digitize(&y))
    }

    /// ℓ₂ error budget `σ` for the decoder: quantization noise of the
    /// digitizer plus (if configured) the expected amplifier-noise
    /// contribution `‖Φe‖ ≈ √m·noise_rms`.
    #[must_use]
    pub fn noise_sigma(&self) -> f64 {
        let m = self.config.channels;
        let quant = self.digitizer.noise_sigma(m);
        let amp = self.config.amplifier_noise_rms * (m as f64).sqrt();
        (quant * quant + amp * amp).sqrt()
    }

    /// Transmitted payload size in bits for one window.
    #[must_use]
    pub fn payload_bits(&self) -> usize {
        self.digitizer.payload_bits(self.config.channels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Rmpi {
        Rmpi::new(RmpiConfig {
            channels: 16,
            window: 128,
            seed: 3,
            ..RmpiConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn measure_matches_sensing_matrix() {
        let rmpi = small();
        let x: Vec<f64> = (0..128).map(|i| (i as f64 * 0.1).sin()).collect();
        assert_eq!(rmpi.measure(&x), rmpi.sensing_matrix().apply(&x));
    }

    #[test]
    fn acquire_checks_window() {
        let rmpi = small();
        assert!(matches!(
            rmpi.acquire(&[0.0; 64], 0),
            Err(FrontEndError::WindowMismatch { .. })
        ));
    }

    #[test]
    fn digitization_error_within_sigma_budget() {
        let rmpi = small();
        let x: Vec<f64> = (0..128).map(|i| 0.8 * (i as f64 * 0.21).sin()).collect();
        let clean = rmpi.measure(&x);
        let acquired = rmpi.acquire(&x, 0).unwrap();
        let err: f64 = clean
            .iter()
            .zip(&acquired)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        // 3x budget to cover the uniform-vs-RMS model slack.
        assert!(err <= 3.0 * rmpi.noise_sigma(), "err {err}");
    }

    #[test]
    fn amplifier_noise_is_seeded_and_additive() {
        let rmpi = Rmpi::new(RmpiConfig {
            channels: 16,
            window: 128,
            seed: 3,
            amplifier_noise_rms: 0.05,
            ..RmpiConfig::default()
        })
        .unwrap();
        let x = vec![0.0; 128];
        let a = rmpi.acquire(&x, 1).unwrap();
        let b = rmpi.acquire(&x, 1).unwrap();
        let c = rmpi.acquire(&x, 2).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
        // With noise, measurements of a zero signal are not all zero.
        assert!(a.iter().any(|v| v.abs() > 0.0));
    }

    #[test]
    fn noise_sigma_combines_sources() {
        let quiet = small();
        let noisy = Rmpi::new(RmpiConfig {
            channels: 16,
            window: 128,
            seed: 3,
            amplifier_noise_rms: 0.05,
            ..RmpiConfig::default()
        })
        .unwrap();
        assert!(noisy.noise_sigma() > quiet.noise_sigma());
    }

    #[test]
    fn payload_is_m_times_bits() {
        let rmpi = small();
        assert_eq!(rmpi.payload_bits(), 16 * 12);
    }

    #[test]
    fn same_seed_same_matrix_across_instances() {
        // Encoder and decoder construct Φ independently from (m, n, seed).
        let a = small();
        let b = small();
        let x: Vec<f64> = (0..128).map(|i| i as f64 * 0.01).collect();
        assert_eq!(a.measure(&x), b.measure(&x));
    }

    #[test]
    fn rejects_negative_noise() {
        assert!(Rmpi::new(RmpiConfig {
            amplifier_noise_rms: -1.0,
            ..RmpiConfig::default()
        })
        .is_err());
    }
}
