use crate::{FrontEndError, Quantizer, QuantizerKind};
use hybridcs_rand::normal::standard_normal;
use hybridcs_rand::SeedableRng;

/// A behavioural ADC: optional input-referred noise followed by uniform
/// quantization.
///
/// Used for the low-resolution Nyquist path (where its noise floor is part
/// of the power/quality trade-off) and, in mid-tread form, inside
/// [`MeasurementQuantizer`] for the CS channel outputs.
///
/// # Example
///
/// ```
/// use hybridcs_frontend::{AdcModel, QuantizerKind};
///
/// # fn main() -> Result<(), hybridcs_frontend::FrontEndError> {
/// let adc = AdcModel::new(11, -5.12, 5.12, QuantizerKind::MidTread, 0.0)?;
/// let codes = adc.convert(&[0.0, 1.0, -1.0], 0);
/// let back = adc.reconstruct(&codes);
/// assert!((back[1] - 1.0).abs() < adc.quantizer().step());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdcModel {
    quantizer: Quantizer,
    noise_rms: f64,
}

impl AdcModel {
    /// Creates an ADC with the given resolution, span, rounding convention
    /// and input-referred noise (RMS, same units as the span).
    ///
    /// # Errors
    ///
    /// Returns [`FrontEndError::BadParameter`] on an invalid quantizer
    /// configuration or negative noise level.
    pub fn new(
        bits: u32,
        lo: f64,
        hi: f64,
        kind: QuantizerKind,
        noise_rms: f64,
    ) -> Result<Self, FrontEndError> {
        if noise_rms < 0.0 || !noise_rms.is_finite() {
            return Err(FrontEndError::BadParameter {
                name: "noise_rms",
                value: noise_rms,
            });
        }
        Ok(AdcModel {
            quantizer: Quantizer::new(bits, lo, hi, kind)?,
            noise_rms,
        })
    }

    /// The underlying quantizer.
    #[must_use]
    pub fn quantizer(&self) -> &Quantizer {
        &self.quantizer
    }

    /// Converts a sample block to codes; `seed` makes the noise draw
    /// reproducible. With `noise_rms == 0` the conversion is deterministic
    /// regardless of seed.
    #[must_use]
    pub fn convert(&self, x: &[f64], seed: u64) -> Vec<u32> {
        if self.noise_rms == 0.0 {
            return self.quantizer.quantize_all(x);
        }
        let mut rng = hybridcs_rand::rngs::StdRng::seed_from_u64(seed);
        x.iter()
            .map(|&v| {
                let noisy = v + self.noise_rms * standard_normal(&mut rng);
                self.quantizer.quantize(noisy)
            })
            .collect()
    }

    /// Reconstructs analog values from codes.
    ///
    /// # Panics
    ///
    /// Panics if any code is out of range for the configured resolution.
    #[must_use]
    pub fn reconstruct(&self, codes: &[u32]) -> Vec<f64> {
        self.quantizer.dequantize_all(codes)
    }
}

/// Digitizer for CS-channel measurements: a mid-tread quantizer over a
/// symmetric span `[−full_scale, +full_scale]`, with the error-norm bound
/// `σ` the convex decoder needs.
///
/// The paper transmits CS measurements at 12-bit resolution; the decoder's
/// fidelity constraint `‖ΦΨα − y‖₂ ≤ σ` must then budget for exactly this
/// quantization noise — [`MeasurementQuantizer::noise_sigma`] returns the
/// RMS-model value `√m · d/√12`.
///
/// # Example
///
/// ```
/// use hybridcs_frontend::MeasurementQuantizer;
///
/// # fn main() -> Result<(), hybridcs_frontend::FrontEndError> {
/// let mq = MeasurementQuantizer::new(12, 2.5)?;
/// let y = vec![0.31, -1.7, 2.49];
/// let yq = mq.digitize(&y);
/// for (a, b) in y.iter().zip(&yq) {
///     assert!((a - b).abs() <= mq.step() / 2.0 + 1e-12);
/// }
/// assert!(mq.noise_sigma(3) > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasurementQuantizer {
    quantizer: Quantizer,
}

impl MeasurementQuantizer {
    /// Creates a `bits`-bit mid-tread digitizer over `[−full_scale, +full_scale]`.
    ///
    /// # Errors
    ///
    /// Returns [`FrontEndError::BadParameter`] for a non-positive full scale
    /// or unsupported bit depth.
    pub fn new(bits: u32, full_scale: f64) -> Result<Self, FrontEndError> {
        if full_scale <= 0.0 || !full_scale.is_finite() {
            return Err(FrontEndError::BadParameter {
                name: "full_scale",
                value: full_scale,
            });
        }
        Ok(MeasurementQuantizer {
            quantizer: Quantizer::new(bits, -full_scale, full_scale, QuantizerKind::MidTread)?,
        })
    }

    /// Resolution in bits.
    #[must_use]
    pub fn bits(&self) -> u32 {
        self.quantizer.bits()
    }

    /// Quantization step.
    #[must_use]
    pub fn step(&self) -> f64 {
        self.quantizer.step()
    }

    /// Digitize-and-reconstruct in one go (quantize to the mid-tread level).
    /// Out-of-scale measurements saturate.
    #[must_use]
    pub fn digitize(&self, y: &[f64]) -> Vec<f64> {
        y.iter()
            .map(|&v| self.quantizer.dequantize(self.quantizer.quantize(v)))
            .collect()
    }

    /// Raw codes for rate accounting / transmission.
    #[must_use]
    pub fn codes(&self, y: &[f64]) -> Vec<u32> {
        self.quantizer.quantize_all(y)
    }

    /// ℓ₂-norm budget for the quantization error of `m` measurements under
    /// the uniform noise model: `σ = √m · d / √12`.
    #[must_use]
    pub fn noise_sigma(&self, m: usize) -> f64 {
        (m as f64).sqrt() * self.quantizer.noise_rms()
    }

    /// Payload size in bits for `m` measurements.
    #[must_use]
    pub fn payload_bits(&self, m: usize) -> usize {
        m * self.bits() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noiseless_adc_is_deterministic() {
        let adc = AdcModel::new(8, -1.0, 1.0, QuantizerKind::Floor, 0.0).unwrap();
        let x = [0.1, -0.5, 0.9];
        assert_eq!(adc.convert(&x, 1), adc.convert(&x, 2));
    }

    #[test]
    fn noisy_adc_is_seeded() {
        let adc = AdcModel::new(8, -1.0, 1.0, QuantizerKind::Floor, 0.05).unwrap();
        let x = vec![0.0; 256];
        assert_eq!(adc.convert(&x, 7), adc.convert(&x, 7));
        assert_ne!(adc.convert(&x, 7), adc.convert(&x, 8));
    }

    #[test]
    fn noise_spreads_codes() {
        let adc = AdcModel::new(10, -1.0, 1.0, QuantizerKind::MidTread, 0.05).unwrap();
        let x = vec![0.0; 512];
        let codes = adc.convert(&x, 3);
        let distinct: std::collections::HashSet<u32> = codes.into_iter().collect();
        assert!(distinct.len() > 3, "noise should dither codes");
    }

    #[test]
    fn adc_rejects_negative_noise() {
        assert!(AdcModel::new(8, -1.0, 1.0, QuantizerKind::Floor, -0.1).is_err());
    }

    #[test]
    fn measurement_quantizer_bounds_error() {
        let mq = MeasurementQuantizer::new(12, 2.5).unwrap();
        let y: Vec<f64> = (0..100).map(|i| -2.4 + 0.048 * i as f64).collect();
        let yq = mq.digitize(&y);
        let err: f64 = y
            .iter()
            .zip(&yq)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(err <= mq.noise_sigma(100) * 2.0, "err {err}");
    }

    #[test]
    fn noise_sigma_scales_with_sqrt_m() {
        let mq = MeasurementQuantizer::new(12, 1.0).unwrap();
        let s1 = mq.noise_sigma(1);
        let s100 = mq.noise_sigma(100);
        assert!((s100 / s1 - 10.0).abs() < 1e-9);
    }

    #[test]
    fn payload_accounting() {
        let mq = MeasurementQuantizer::new(12, 1.0).unwrap();
        assert_eq!(mq.payload_bits(96), 1152);
    }

    #[test]
    fn measurement_quantizer_rejects_bad_scale() {
        assert!(MeasurementQuantizer::new(12, 0.0).is_err());
        assert!(MeasurementQuantizer::new(12, f64::NAN).is_err());
    }

    #[test]
    fn saturation_is_graceful() {
        let mq = MeasurementQuantizer::new(8, 1.0).unwrap();
        let yq = mq.digitize(&[10.0, -10.0]);
        assert!(yq[0] <= 1.0 && yq[0] > 0.9);
        assert!(yq[1] >= -1.0 && yq[1] < -0.9);
    }
}
