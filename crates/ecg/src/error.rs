use std::error::Error;
use std::fmt;

/// Errors produced by the synthetic-ECG substrate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EcgError {
    /// A generator or record parameter was outside its valid range.
    BadParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Value supplied.
        value: f64,
    },
    /// A windowing request could not be satisfied.
    BadWindow {
        /// Requested window length.
        window: usize,
        /// Record length in samples.
        record_len: usize,
    },
}

impl fmt::Display for EcgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EcgError::BadParameter { name, value } => {
                write!(f, "parameter {name} out of range: {value}")
            }
            EcgError::BadWindow { window, record_len } => write!(
                f,
                "window of {window} samples unsatisfiable for record of {record_len} samples"
            ),
        }
    }
}

impl Error for EcgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_parameter() {
        let e = EcgError::BadParameter {
            name: "mean_rr_s",
            value: -1.0,
        };
        assert!(e.to_string().contains("mean_rr_s"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EcgError>();
    }
}
