//! Sum-of-Gaussians beat morphology (McSharry et al., *IEEE TBME* 2003).
//!
//! A cardiac cycle is parameterized by a phase `θ ∈ [−π, π)`; each of the
//! P, Q, R, S and T waves is a Gaussian bump `a·exp(−(θ−μ)²/(2b²))` on that
//! phase axis. Warping the phase with the instantaneous RR interval yields
//! natural beat-length scaling, and editing the bump set yields ectopic
//! morphologies (PVC: absent P, wide tall QRS, inverted T; APC: early
//! narrow beat with flattened P).

use hybridcs_rand::Rng;

/// One Gaussian component of a beat.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaussianWave {
    /// Peak amplitude in millivolts (negative for downward deflections).
    pub amplitude_mv: f64,
    /// Phase position of the peak, radians in `[−π, π)`.
    pub center_rad: f64,
    /// Gaussian width (standard deviation) in radians.
    pub width_rad: f64,
}

impl GaussianWave {
    /// Evaluates the wave at phase `theta`, handling the circular wrap so a
    /// bump near `+π` spills correctly into `−π`.
    #[must_use]
    pub fn value(&self, theta: f64) -> f64 {
        let mut d = theta - self.center_rad;
        // Wrap the phase difference into [−π, π).
        while d >= std::f64::consts::PI {
            d -= 2.0 * std::f64::consts::PI;
        }
        while d < -std::f64::consts::PI {
            d += 2.0 * std::f64::consts::PI;
        }
        self.amplitude_mv * (-d * d / (2.0 * self.width_rad * self.width_rad)).exp()
    }
}

/// A complete beat morphology: the five standard waves.
///
/// # Example
///
/// ```
/// use hybridcs_ecg::BeatMorphology;
///
/// let beat = BeatMorphology::normal();
/// // The R peak dominates the waveform at phase 0.
/// assert!(beat.value(0.0) > 0.8);
/// // Far from the QRS complex the trace returns to baseline.
/// assert!(beat.value(-3.0).abs() < 0.05);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BeatMorphology {
    waves: Vec<GaussianWave>,
}

impl BeatMorphology {
    /// Textbook normal sinus beat (amplitudes in mV, MIT-BIH-like lead II).
    #[must_use]
    pub fn normal() -> Self {
        BeatMorphology {
            waves: vec![
                // P wave
                GaussianWave {
                    amplitude_mv: 0.12,
                    center_rad: -1.22,
                    width_rad: 0.25,
                },
                // Q wave
                GaussianWave {
                    amplitude_mv: -0.13,
                    center_rad: -0.22,
                    width_rad: 0.09,
                },
                // R wave
                GaussianWave {
                    amplitude_mv: 1.05,
                    center_rad: 0.0,
                    width_rad: 0.10,
                },
                // S wave
                GaussianWave {
                    amplitude_mv: -0.22,
                    center_rad: 0.23,
                    width_rad: 0.09,
                },
                // T wave
                GaussianWave {
                    amplitude_mv: 0.28,
                    center_rad: 1.45,
                    width_rad: 0.38,
                },
            ],
        }
    }

    /// Premature ventricular contraction: no P wave, broad high-amplitude
    /// QRS, discordant (inverted) T wave.
    #[must_use]
    pub fn pvc() -> Self {
        BeatMorphology {
            waves: vec![
                GaussianWave {
                    amplitude_mv: -0.25,
                    center_rad: -0.42,
                    width_rad: 0.18,
                },
                GaussianWave {
                    amplitude_mv: 1.45,
                    center_rad: 0.0,
                    width_rad: 0.24,
                },
                GaussianWave {
                    amplitude_mv: -0.45,
                    center_rad: 0.46,
                    width_rad: 0.20,
                },
                GaussianWave {
                    amplitude_mv: -0.35,
                    center_rad: 1.55,
                    width_rad: 0.45,
                },
            ],
        }
    }

    /// Atrial premature contraction: flattened/early P, otherwise narrow QRS.
    #[must_use]
    pub fn apc() -> Self {
        let mut beat = BeatMorphology::normal();
        beat.waves[0] = GaussianWave {
            amplitude_mv: 0.06,
            center_rad: -1.45,
            width_rad: 0.20,
        };
        beat
    }

    /// Builds a morphology from explicit waves (advanced use).
    #[must_use]
    pub fn from_waves(waves: Vec<GaussianWave>) -> Self {
        BeatMorphology { waves }
    }

    /// The constituent waves.
    #[must_use]
    pub fn waves(&self) -> &[GaussianWave] {
        &self.waves
    }

    /// Evaluates the beat at phase `theta ∈ [−π, π)` (values outside are
    /// wrapped per-wave), in millivolts relative to the isoelectric line.
    #[must_use]
    pub fn value(&self, theta: f64) -> f64 {
        self.waves.iter().map(|w| w.value(theta)).sum()
    }

    /// Returns a copy with amplitudes and widths jittered by up to
    /// `±amount` (relative), producing per-record morphology variation.
    ///
    /// # Panics
    ///
    /// Panics if `amount` is not in `[0, 1)`.
    #[must_use]
    pub fn perturbed<R: Rng + ?Sized>(&self, rng: &mut R, amount: f64) -> Self {
        assert!((0.0..1.0).contains(&amount), "amount must be in [0, 1)");
        let waves = self
            .waves
            .iter()
            .map(|w| {
                let aj = 1.0 + amount * (2.0 * crate::rng::standard_normal(rng)).clamp(-1.0, 1.0);
                let wj = 1.0 + amount * (2.0 * crate::rng::standard_normal(rng)).clamp(-1.0, 1.0);
                GaussianWave {
                    amplitude_mv: w.amplitude_mv * aj,
                    center_rad: w.center_rad,
                    width_rad: (w.width_rad * wj).max(0.02),
                }
            })
            .collect();
        BeatMorphology { waves }
    }

    /// Peak-to-peak amplitude over a dense phase sweep, in millivolts.
    #[must_use]
    pub fn peak_to_peak_mv(&self) -> f64 {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for i in 0..1024 {
            let theta = -std::f64::consts::PI + 2.0 * std::f64::consts::PI * i as f64 / 1024.0;
            let v = self.value(theta);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        hi - lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybridcs_rand::SeedableRng;

    #[test]
    fn normal_beat_has_dominant_r_peak() {
        let beat = BeatMorphology::normal();
        let r = beat.value(0.0);
        for theta in [-1.22, -0.22, 0.23, 1.45] {
            assert!(r > beat.value(theta).abs(), "R must dominate {theta}");
        }
    }

    #[test]
    fn normal_beat_p_and_t_are_positive() {
        let beat = BeatMorphology::normal();
        assert!(beat.value(-1.22) > 0.05, "P wave");
        assert!(beat.value(1.45) > 0.15, "T wave");
    }

    #[test]
    fn pvc_has_no_p_wave_and_wide_qrs() {
        let pvc = BeatMorphology::pvc();
        let normal = BeatMorphology::normal();
        // At the P location the PVC trace is near baseline.
        assert!(pvc.value(-1.22).abs() < normal.value(-1.22));
        // The PVC QRS stays elevated further from the peak than normal.
        assert!(pvc.value(0.35) > normal.value(0.35));
        // Discordant T wave.
        assert!(pvc.value(1.55) < 0.0);
    }

    #[test]
    fn apc_has_attenuated_p() {
        let apc = BeatMorphology::apc();
        let normal = BeatMorphology::normal();
        assert!(apc.value(-1.45) < normal.value(-1.22));
    }

    #[test]
    fn wave_wraps_phase() {
        let w = GaussianWave {
            amplitude_mv: 1.0,
            center_rad: 3.0,
            width_rad: 0.3,
        };
        // Phase −π side of the wrap should still see the bump tail.
        let near = w.value(3.0);
        let wrapped = w.value(-3.1); // 2π away from ~3.18
        assert!(near > 0.99);
        assert!(wrapped > 0.5, "wrap leak {wrapped}");
    }

    #[test]
    fn perturbed_is_deterministic_and_bounded() {
        let beat = BeatMorphology::normal();
        let mut rng1 = hybridcs_rand::rngs::StdRng::seed_from_u64(9);
        let mut rng2 = hybridcs_rand::rngs::StdRng::seed_from_u64(9);
        let a = beat.perturbed(&mut rng1, 0.1);
        let b = beat.perturbed(&mut rng2, 0.1);
        assert_eq!(a, b);
        for (wa, wo) in a.waves().iter().zip(beat.waves()) {
            assert!((wa.amplitude_mv - wo.amplitude_mv).abs() <= 0.21 * wo.amplitude_mv.abs());
            assert_eq!(wa.center_rad, wo.center_rad);
        }
    }

    #[test]
    #[should_panic(expected = "amount must be in [0, 1)")]
    fn perturbed_rejects_bad_amount() {
        let mut rng = hybridcs_rand::rngs::StdRng::seed_from_u64(0);
        let _ = BeatMorphology::normal().perturbed(&mut rng, 1.5);
    }

    #[test]
    fn peak_to_peak_in_physiological_range() {
        let p2p = BeatMorphology::normal().peak_to_peak_mv();
        assert!(p2p > 0.8 && p2p < 2.5, "p2p {p2p} mV");
    }
}
