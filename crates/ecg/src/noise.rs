//! Ambulatory-ECG noise models: baseline wander, mains interference and
//! EMG (muscle) noise.
//!
//! The noise mixture matters to the reproduction beyond realism — Fig. 4 of
//! the paper (the PDF of quantized-sample differences) is shaped by the
//! slew statistics of exactly these components, and the Huffman codebook of
//! the low-resolution channel is trained on them.

use crate::rng;
use hybridcs_dsp::filters::{BandPass, OnePole};
use hybridcs_rand::{Rng, RngExt};

/// Amplitudes (RMS, millivolts) of the three noise components.
///
/// # Example
///
/// ```
/// use hybridcs_ecg::NoiseModel;
/// use hybridcs_rand::SeedableRng;
///
/// let model = NoiseModel {
///     baseline_wander_mv: 0.05,
///     mains_mv: 0.01,
///     mains_hz: 60.0,
///     emg_mv: 0.01,
/// };
/// let mut rng = hybridcs_rand::rngs::StdRng::seed_from_u64(1);
/// let noise = model.synthesize(&mut rng, 360.0, 720);
/// assert_eq!(noise.len(), 720);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseModel {
    /// RMS amplitude of baseline wander (very-low-frequency drift), mV.
    pub baseline_wander_mv: f64,
    /// Amplitude of mains (power-line) interference, mV.
    pub mains_mv: f64,
    /// Mains frequency in Hz (50 or 60 in practice).
    pub mains_hz: f64,
    /// RMS amplitude of EMG-band noise, mV.
    pub emg_mv: f64,
}

impl NoiseModel {
    /// A quiet resting recording.
    #[must_use]
    pub fn clean() -> Self {
        NoiseModel {
            baseline_wander_mv: 0.03,
            mains_mv: 0.005,
            mains_hz: 60.0,
            emg_mv: 0.005,
        }
    }

    /// An ambulatory recording with motion and muscle activity.
    #[must_use]
    pub fn ambulatory() -> Self {
        NoiseModel {
            baseline_wander_mv: 0.12,
            mains_mv: 0.015,
            mains_hz: 60.0,
            emg_mv: 0.02,
        }
    }

    /// Noise-free model (all components zero) — useful in unit tests that
    /// need deterministic morphology.
    #[must_use]
    pub fn none() -> Self {
        NoiseModel {
            baseline_wander_mv: 0.0,
            mains_mv: 0.0,
            mains_hz: 60.0,
            emg_mv: 0.0,
        }
    }

    /// Synthesizes `len` samples of the noise mixture at `fs_hz`.
    ///
    /// Baseline wander is white noise shaped by a 0.3 Hz one-pole low-pass
    /// and re-normalized to the requested RMS; mains is a fixed-frequency
    /// sinusoid with a slowly drifting phase; EMG is white noise shaped into
    /// the 20–120 Hz band.
    #[must_use]
    pub fn synthesize<R: Rng + ?Sized>(&self, rng: &mut R, fs_hz: f64, len: usize) -> Vec<f64> {
        let mut out = vec![0.0; len];
        if len == 0 {
            return out;
        }
        // Baseline wander.
        if self.baseline_wander_mv > 0.0 {
            let mut lp = OnePole::from_cutoff(0.3, fs_hz).expect("0.3 Hz valid for ECG rates");
            let mut white = vec![0.0; len];
            rng::white_noise(rng, 1.0, &mut white);
            let shaped = lp.process(&white);
            let rms = root_mean_square(&shaped);
            if rms > 0.0 {
                let k = self.baseline_wander_mv / rms;
                for (o, s) in out.iter_mut().zip(&shaped) {
                    *o += k * s;
                }
            }
        }
        // Mains interference with a slow random phase walk.
        if self.mains_mv > 0.0 {
            let mut phase: f64 = rng.random::<f64>() * 2.0 * std::f64::consts::PI;
            let dphi = 2.0 * std::f64::consts::PI * self.mains_hz / fs_hz;
            for o in out.iter_mut() {
                *o += self.mains_mv * phase.sin();
                phase += dphi + 1e-3 * rng::standard_normal(rng) / fs_hz.sqrt();
            }
        }
        // EMG-band noise.
        if self.emg_mv > 0.0 {
            let hi = 120.0_f64.min(0.45 * fs_hz);
            let mut bp = BandPass::new(20.0, hi, fs_hz).expect("EMG band valid");
            let mut white = vec![0.0; len];
            rng::white_noise(rng, 1.0, &mut white);
            let shaped = bp.process(&white);
            let rms = root_mean_square(&shaped);
            if rms > 0.0 {
                let k = self.emg_mv / rms;
                for (o, s) in out.iter_mut().zip(&shaped) {
                    *o += k * s;
                }
            }
        }
        out
    }
}

fn root_mean_square(x: &[f64]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    (x.iter().map(|v| v * v).sum::<f64>() / x.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybridcs_rand::SeedableRng;

    fn rms(x: &[f64]) -> f64 {
        root_mean_square(x)
    }

    #[test]
    fn none_is_silent() {
        let mut rng = hybridcs_rand::rngs::StdRng::seed_from_u64(0);
        let noise = NoiseModel::none().synthesize(&mut rng, 360.0, 256);
        assert!(noise.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn component_rms_is_calibrated() {
        let mut rng = hybridcs_rand::rngs::StdRng::seed_from_u64(1);
        let model = NoiseModel {
            baseline_wander_mv: 0.1,
            mains_mv: 0.0,
            mains_hz: 60.0,
            emg_mv: 0.0,
        };
        let noise = model.synthesize(&mut rng, 360.0, 36_000);
        let r = rms(&noise);
        assert!((r - 0.1).abs() < 0.01, "baseline RMS {r}");
    }

    #[test]
    fn mains_amplitude_respected() {
        let mut rng = hybridcs_rand::rngs::StdRng::seed_from_u64(2);
        let model = NoiseModel {
            baseline_wander_mv: 0.0,
            mains_mv: 0.05,
            mains_hz: 50.0,
            emg_mv: 0.0,
        };
        let noise = model.synthesize(&mut rng, 360.0, 3600);
        // RMS of a sinusoid of amplitude A is A/√2.
        let r = rms(&noise);
        assert!((r - 0.05 / std::f64::consts::SQRT_2).abs() < 0.005, "{r}");
    }

    #[test]
    fn baseline_wander_is_slow() {
        // Differences of a low-frequency process are tiny relative to its range.
        let mut rng = hybridcs_rand::rngs::StdRng::seed_from_u64(3);
        let model = NoiseModel {
            baseline_wander_mv: 0.1,
            mains_mv: 0.0,
            mains_hz: 60.0,
            emg_mv: 0.0,
        };
        let noise = model.synthesize(&mut rng, 360.0, 36_000);
        let diff_rms = rms(&noise.windows(2).map(|w| w[1] - w[0]).collect::<Vec<_>>());
        assert!(diff_rms < 0.02 * rms(&noise) * 10.0, "diff rms {diff_rms}");
    }

    #[test]
    fn emg_is_fast() {
        let mut rng = hybridcs_rand::rngs::StdRng::seed_from_u64(4);
        let model = NoiseModel {
            baseline_wander_mv: 0.0,
            mains_mv: 0.0,
            mains_hz: 60.0,
            emg_mv: 0.1,
        };
        let noise = model.synthesize(&mut rng, 360.0, 36_000);
        let diff_rms = rms(&noise.windows(2).map(|w| w[1] - w[0]).collect::<Vec<_>>());
        // EMG-band noise decorrelates quickly: successive-difference RMS is
        // a substantial fraction of the signal RMS.
        assert!(diff_rms > 0.3 * rms(&noise), "diff rms {diff_rms}");
    }

    #[test]
    fn deterministic_under_seed() {
        let model = NoiseModel::ambulatory();
        let run = |seed| {
            let mut rng = hybridcs_rand::rngs::StdRng::seed_from_u64(seed);
            model.synthesize(&mut rng, 360.0, 128)
        };
        assert_eq!(run(6), run(6));
        assert_ne!(run(6), run(7));
    }

    #[test]
    fn zero_length_is_fine() {
        let mut rng = hybridcs_rand::rngs::StdRng::seed_from_u64(0);
        assert!(NoiseModel::ambulatory()
            .synthesize(&mut rng, 360.0, 0)
            .is_empty());
    }
}
