//! Recording container, MIT-BIH-compatible ADC calibration, and windowing.

use crate::EcgError;

/// Calibration between physical millivolts and raw ADC units (adu), matching
/// the MIT-BIH Arrhythmia Database conventions: 200 adu/mV gain, an 11-bit
/// converter spanning 10 mV, and a mid-range baseline of 1024 adu.
///
/// # Example
///
/// ```
/// let cal = hybridcs_ecg::AdcCalibration::mit_bih();
/// let adu = cal.mv_to_adu(1.0);
/// assert_eq!(adu, 1224.0);
/// assert!((cal.adu_to_mv(adu) - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdcCalibration {
    /// Gain in adu per millivolt.
    pub gain_adu_per_mv: f64,
    /// Baseline (0 mV) level in adu.
    pub baseline_adu: f64,
    /// Converter resolution in bits.
    pub bits: u32,
}

impl AdcCalibration {
    /// The MIT-BIH Arrhythmia Database calibration (200 adu/mV, 11-bit,
    /// baseline 1024).
    #[must_use]
    pub fn mit_bih() -> Self {
        AdcCalibration {
            gain_adu_per_mv: 200.0,
            baseline_adu: 1024.0,
            bits: 11,
        }
    }

    /// Full-scale range in adu (`2^bits`).
    #[must_use]
    pub fn full_scale_adu(&self) -> f64 {
        (1u64 << self.bits) as f64
    }

    /// Converts millivolts to (unclamped, unrounded) adu.
    #[must_use]
    pub fn mv_to_adu(&self, mv: f64) -> f64 {
        self.baseline_adu + mv * self.gain_adu_per_mv
    }

    /// Converts adu back to millivolts.
    #[must_use]
    pub fn adu_to_mv(&self, adu: f64) -> f64 {
        (adu - self.baseline_adu) / self.gain_adu_per_mv
    }

    /// Digitizes a millivolt trace: gain, offset, rounding and clamping to
    /// the converter range `[0, 2^bits − 1]`.
    #[must_use]
    pub fn digitize(&self, mv: &[f64]) -> Vec<u32> {
        let max = self.full_scale_adu() - 1.0;
        mv.iter()
            .map(|&v| self.mv_to_adu(v).round().clamp(0.0, max) as u32)
            .collect()
    }
}

/// One synthetic recording: identifier, sampling rate, millivolt samples and
/// the calibration used when the experiments need raw adu.
///
/// # Example
///
/// ```
/// use hybridcs_ecg::{AdcCalibration, EcgRecord};
///
/// let record = EcgRecord::new(100, 360.0, vec![0.0; 1024], AdcCalibration::mit_bih());
/// assert_eq!(record.windows(512).count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EcgRecord {
    id: u32,
    fs_hz: f64,
    samples_mv: Vec<f64>,
    calibration: AdcCalibration,
}

impl EcgRecord {
    /// Creates a record.
    #[must_use]
    pub fn new(id: u32, fs_hz: f64, samples_mv: Vec<f64>, calibration: AdcCalibration) -> Self {
        EcgRecord {
            id,
            fs_hz,
            samples_mv,
            calibration,
        }
    }

    /// Record identifier (MIT-BIH-style numbering starts at 100).
    #[must_use]
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Sampling rate in Hz.
    #[must_use]
    pub fn fs_hz(&self) -> f64 {
        self.fs_hz
    }

    /// The millivolt samples.
    #[must_use]
    pub fn samples_mv(&self) -> &[f64] {
        &self.samples_mv
    }

    /// The ADC calibration associated with this record.
    #[must_use]
    pub fn calibration(&self) -> AdcCalibration {
        self.calibration
    }

    /// Duration in seconds.
    #[must_use]
    pub fn duration_s(&self) -> f64 {
        self.samples_mv.len() as f64 / self.fs_hz
    }

    /// Digitized (adu) version of the full record.
    #[must_use]
    pub fn samples_adu(&self) -> Vec<u32> {
        self.calibration.digitize(&self.samples_mv)
    }

    /// Iterator over non-overlapping windows of `window` samples. A trailing
    /// partial window is discarded (as in the paper's fixed-size processing
    /// windows).
    #[must_use]
    pub fn windows(&self, window: usize) -> WindowIter<'_> {
        WindowIter {
            samples: &self.samples_mv,
            window,
            pos: 0,
        }
    }

    /// Like [`EcgRecord::windows`] but fails loudly when the record is too
    /// short for even one window.
    ///
    /// # Errors
    ///
    /// Returns [`EcgError::BadWindow`] when `window == 0` or the record
    /// holds fewer than `window` samples.
    pub fn try_windows(&self, window: usize) -> Result<WindowIter<'_>, EcgError> {
        if window == 0 || self.samples_mv.len() < window {
            return Err(EcgError::BadWindow {
                window,
                record_len: self.samples_mv.len(),
            });
        }
        Ok(self.windows(window))
    }
}

/// Iterator over non-overlapping fixed-size windows of a record.
#[derive(Debug, Clone)]
pub struct WindowIter<'a> {
    samples: &'a [f64],
    window: usize,
    pos: usize,
}

impl<'a> Iterator for WindowIter<'a> {
    type Item = &'a [f64];

    fn next(&mut self) -> Option<Self::Item> {
        if self.window == 0 || self.pos + self.window > self.samples.len() {
            return None;
        }
        let w = &self.samples[self.pos..self.pos + self.window];
        self.pos += self.window;
        Some(w)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        if self.window == 0 {
            return (0, Some(0));
        }
        let remaining = (self.samples.len() - self.pos) / self.window;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for WindowIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_roundtrip() {
        let cal = AdcCalibration::mit_bih();
        for mv in [-5.0, -0.5, 0.0, 0.5, 5.0] {
            assert!((cal.adu_to_mv(cal.mv_to_adu(mv)) - mv).abs() < 1e-12);
        }
    }

    #[test]
    fn digitize_clamps_to_range() {
        let cal = AdcCalibration::mit_bih();
        let adu = cal.digitize(&[-100.0, 0.0, 100.0]);
        assert_eq!(adu[0], 0);
        assert_eq!(adu[1], 1024);
        assert_eq!(adu[2], 2047);
    }

    #[test]
    fn digitize_rounds() {
        let cal = AdcCalibration::mit_bih();
        // 0.001 mV = 0.2 adu -> rounds to baseline.
        assert_eq!(cal.digitize(&[0.001])[0], 1024);
        // 0.003 mV = 0.6 adu -> rounds up.
        assert_eq!(cal.digitize(&[0.003])[0], 1025);
    }

    #[test]
    fn windows_are_disjoint_and_sized() {
        let record = EcgRecord::new(
            100,
            360.0,
            (0..1000).map(|i| i as f64).collect(),
            AdcCalibration::mit_bih(),
        );
        let windows: Vec<&[f64]> = record.windows(256).collect();
        assert_eq!(windows.len(), 3);
        assert_eq!(windows[0][0], 0.0);
        assert_eq!(windows[1][0], 256.0);
        assert_eq!(windows[2][0], 512.0);
        assert!(windows.iter().all(|w| w.len() == 256));
    }

    #[test]
    fn windows_exact_size_iterator() {
        let record = EcgRecord::new(1, 360.0, vec![0.0; 1024], AdcCalibration::mit_bih());
        let iter = record.windows(512);
        assert_eq!(iter.len(), 2);
    }

    #[test]
    fn try_windows_rejects_bad_requests() {
        let record = EcgRecord::new(1, 360.0, vec![0.0; 100], AdcCalibration::mit_bih());
        assert!(matches!(
            record.try_windows(512),
            Err(EcgError::BadWindow { .. })
        ));
        assert!(matches!(
            record.try_windows(0),
            Err(EcgError::BadWindow { .. })
        ));
        assert!(record.try_windows(100).is_ok());
    }

    #[test]
    fn duration_is_consistent() {
        let record = EcgRecord::new(1, 360.0, vec![0.0; 720], AdcCalibration::mit_bih());
        assert!((record.duration_s() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_window_yields_nothing() {
        let record = EcgRecord::new(1, 360.0, vec![0.0; 10], AdcCalibration::mit_bih());
        assert_eq!(record.windows(0).count(), 0);
    }
}
