//! The ECG synthesizer: morphology × rhythm × noise → a continuous trace.

use crate::{BeatMorphology, EcgError, NoiseModel, RhythmModel};
use hybridcs_rand::{RngExt, SeedableRng};

/// Configuration of one synthetic recording.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorConfig {
    /// Sampling rate in Hz.
    pub fs_hz: f64,
    /// Normal-beat morphology.
    pub morphology: BeatMorphology,
    /// RR-interval process.
    pub rhythm: RhythmModel,
    /// Additive noise mixture.
    pub noise: NoiseModel,
    /// Probability that any given beat is a PVC.
    pub pvc_probability: f64,
    /// Probability that any given beat is an APC.
    pub apc_probability: f64,
    /// Per-beat amplitude jitter (relative standard deviation).
    pub amplitude_jitter: f64,
}

impl GeneratorConfig {
    /// A clean normal-sinus-rhythm recording at the MIT-BIH rate.
    ///
    /// # Example
    ///
    /// ```
    /// let config = hybridcs_ecg::GeneratorConfig::normal_sinus();
    /// assert_eq!(config.fs_hz, 360.0);
    /// ```
    #[must_use]
    pub fn normal_sinus() -> Self {
        GeneratorConfig {
            fs_hz: crate::MIT_BIH_FS_HZ,
            morphology: BeatMorphology::normal(),
            rhythm: RhythmModel::new(0.8, 0.03, 0.08, 0.25)
                .expect("default rhythm parameters are valid"),
            noise: NoiseModel::clean(),
            pvc_probability: 0.0,
            apc_probability: 0.0,
            amplitude_jitter: 0.03,
        }
    }

    /// Validates the probability/jitter fields.
    ///
    /// # Errors
    ///
    /// Returns [`EcgError::BadParameter`] for out-of-range values.
    pub fn validate(&self) -> Result<(), EcgError> {
        if self.fs_hz.is_nan() || self.fs_hz <= 0.0 {
            return Err(EcgError::BadParameter {
                name: "fs_hz",
                value: self.fs_hz,
            });
        }
        for (name, v) in [
            ("pvc_probability", self.pvc_probability),
            ("apc_probability", self.apc_probability),
        ] {
            if !(0.0..=0.5).contains(&v) {
                return Err(EcgError::BadParameter { name, value: v });
            }
        }
        if !(0.0..=0.5).contains(&self.amplitude_jitter) {
            return Err(EcgError::BadParameter {
                name: "amplitude_jitter",
                value: self.amplitude_jitter,
            });
        }
        Ok(())
    }
}

/// Synthesizes continuous ECG traces from a [`GeneratorConfig`].
///
/// Each beat `k` occupies the time span `[tₖ, tₖ + RRₖ)`; within it the
/// phase advances linearly from `−π` to `π` and the beat morphology is
/// evaluated on that warped phase. PVCs arrive *early* (shortened preceding
/// RR) and are followed by a compensatory pause, as in real rhythm strips.
///
/// # Example
///
/// ```
/// use hybridcs_ecg::{EcgGenerator, GeneratorConfig};
///
/// # fn main() -> Result<(), hybridcs_ecg::EcgError> {
/// let generator = EcgGenerator::new(GeneratorConfig::normal_sinus())?;
/// let trace = generator.generate(2.0, 42);
/// assert_eq!(trace.len(), 720);
/// // R peaks exceed 0.8 mV somewhere in the strip.
/// assert!(trace.iter().cloned().fold(0.0, f64::max) > 0.8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EcgGenerator {
    config: GeneratorConfig,
}

/// Which morphology a beat uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BeatClass {
    Normal,
    Pvc,
    Apc,
}

impl EcgGenerator {
    /// Creates a generator after validating the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`EcgError::BadParameter`] if the configuration is invalid.
    pub fn new(config: GeneratorConfig) -> Result<Self, EcgError> {
        config.validate()?;
        Ok(EcgGenerator { config })
    }

    /// Borrow the configuration.
    #[must_use]
    pub fn config(&self) -> &GeneratorConfig {
        &self.config
    }

    /// Generates `duration_s` seconds of ECG in millivolts, deterministically
    /// from `seed`.
    #[must_use]
    pub fn generate(&self, duration_s: f64, seed: u64) -> Vec<f64> {
        let mut rng = hybridcs_rand::rngs::StdRng::seed_from_u64(seed);
        let cfg = &self.config;
        let n = (duration_s * cfg.fs_hz).round() as usize;
        let mut signal = vec![0.0; n];

        // Build the beat schedule: (onset time, RR, class, amplitude scale).
        let mut rr = cfg.rhythm.intervals(&mut rng, duration_s + 2.0);
        let mut classes = vec![BeatClass::Normal; rr.len()];
        let pvc = BeatMorphology::pvc();
        let apc = BeatMorphology::apc();
        for k in 1..rr.len().saturating_sub(1) {
            if classes[k] != BeatClass::Normal {
                continue;
            }
            let draw: f64 = rng.random();
            if draw < cfg.pvc_probability {
                classes[k] = BeatClass::Pvc;
                // Premature arrival and compensatory pause.
                let steal = 0.3 * rr[k];
                rr[k] -= steal;
                rr[k + 1] += steal;
            } else if draw < cfg.pvc_probability + cfg.apc_probability {
                classes[k] = BeatClass::Apc;
                let steal = 0.15 * rr[k];
                rr[k] -= steal;
                rr[k + 1] += steal;
            }
        }

        let mut onset = 0.0;
        for (k, &rrk) in rr.iter().enumerate() {
            if onset >= duration_s {
                break;
            }
            let morphology = match classes[k] {
                BeatClass::Normal => &cfg.morphology,
                BeatClass::Pvc => &pvc,
                BeatClass::Apc => &apc,
            };
            let amp =
                1.0 + cfg.amplitude_jitter * crate::rng::standard_normal(&mut rng).clamp(-3.0, 3.0);
            render_beat(&mut signal, cfg.fs_hz, onset, rrk, morphology, amp.max(0.2));
            onset += rrk;
        }

        // Additive noise.
        let noise = cfg.noise.synthesize(&mut rng, cfg.fs_hz, n);
        for (s, v) in signal.iter_mut().zip(&noise) {
            *s += v;
        }
        signal
    }
}

/// Renders one beat into `signal` by linear phase warping over its RR span.
fn render_beat(
    signal: &mut [f64],
    fs_hz: f64,
    onset_s: f64,
    rr_s: f64,
    morphology: &BeatMorphology,
    amplitude_scale: f64,
) {
    let start = (onset_s * fs_hz).ceil() as usize;
    let end = ((onset_s + rr_s) * fs_hz).ceil() as usize;
    for i in start..end.min(signal.len()) {
        let t = i as f64 / fs_hz;
        let frac = ((t - onset_s) / rr_s).clamp(0.0, 1.0);
        let theta = -std::f64::consts::PI + 2.0 * std::f64::consts::PI * frac;
        signal[i] += amplitude_scale * morphology.value(theta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_config() -> GeneratorConfig {
        let mut cfg = GeneratorConfig::normal_sinus();
        cfg.noise = NoiseModel::none();
        cfg.amplitude_jitter = 0.0;
        cfg
    }

    #[test]
    fn length_matches_duration() {
        let g = EcgGenerator::new(GeneratorConfig::normal_sinus()).unwrap();
        assert_eq!(g.generate(3.0, 0).len(), 1080);
    }

    #[test]
    fn deterministic_under_seed() {
        let g = EcgGenerator::new(GeneratorConfig::normal_sinus()).unwrap();
        assert_eq!(g.generate(2.0, 5), g.generate(2.0, 5));
        assert_ne!(g.generate(2.0, 5), g.generate(2.0, 6));
    }

    #[test]
    fn beat_rate_appears_in_trace() {
        // Count R-peak threshold crossings in a clean strip; should be close
        // to the configured heart rate (75 bpm over 20 s -> ~25 beats).
        let g = EcgGenerator::new(quiet_config()).unwrap();
        let x = g.generate(20.0, 1);
        let mut beats = 0;
        let mut above = false;
        for &v in &x {
            if v > 0.6 && !above {
                beats += 1;
                above = true;
            } else if v < 0.2 {
                above = false;
            }
        }
        assert!((20..=30).contains(&beats), "{beats} beats detected");
    }

    #[test]
    fn pvcs_change_the_trace() {
        let mut cfg = quiet_config();
        let base = EcgGenerator::new(cfg.clone()).unwrap().generate(30.0, 2);
        cfg.pvc_probability = 0.2;
        let with_pvc = EcgGenerator::new(cfg).unwrap().generate(30.0, 2);
        let diff: f64 = base.iter().zip(&with_pvc).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff > 1.0, "PVC injection must alter the waveform");
    }

    #[test]
    fn amplitude_is_physiological() {
        let g = EcgGenerator::new(quiet_config()).unwrap();
        let x = g.generate(10.0, 3);
        let max = x.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = x.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max > 0.7 && max < 2.0, "R peak {max} mV");
        assert!(min < -0.05 && min > -1.5, "deepest trough {min} mV");
    }

    #[test]
    fn rejects_bad_probabilities() {
        let mut cfg = GeneratorConfig::normal_sinus();
        cfg.pvc_probability = 0.9;
        assert!(EcgGenerator::new(cfg).is_err());
        let mut cfg = GeneratorConfig::normal_sinus();
        cfg.amplitude_jitter = 0.9;
        assert!(EcgGenerator::new(cfg).is_err());
        let mut cfg = GeneratorConfig::normal_sinus();
        cfg.fs_hz = 0.0;
        assert!(EcgGenerator::new(cfg).is_err());
    }

    #[test]
    fn noise_raises_the_floor() {
        let clean = EcgGenerator::new(quiet_config()).unwrap().generate(5.0, 4);
        let mut noisy_cfg = quiet_config();
        noisy_cfg.noise = NoiseModel::ambulatory();
        let noisy = EcgGenerator::new(noisy_cfg).unwrap().generate(5.0, 4);
        // Compare energy in a QRS-free region by differencing the traces.
        let delta_energy: f64 = clean
            .iter()
            .zip(&noisy)
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        assert!(delta_energy > 0.1, "noise energy {delta_energy}");
    }
}
