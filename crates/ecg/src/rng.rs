//! Seeded random-number helpers shared by the generator components.
//!
//! The Box–Muller implementation moved to [`hybridcs_rand::normal`] so
//! every crate draws Gaussians from one audited, stream-pinned source;
//! this module re-exports it to keep the historical `hybridcs_ecg::rng`
//! paths working.
//!
//! # Example
//!
//! ```
//! use hybridcs_rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let z = hybridcs_ecg::rng::standard_normal(&mut rng);
//! assert!(z.is_finite());
//! ```

pub use hybridcs_rand::normal::{normal, standard_normal, white_noise};
