//! Synthetic ECG corpus substrate — the MIT-BIH Arrhythmia Database stand-in
//! for the hybrid compressed-sensing front-end reproduction.
//!
//! The paper evaluates on the MIT-BIH Arrhythmia Database (48 half-hour
//! two-lead ambulatory records, 360 Hz, 11-bit over a 10 mV span). That data
//! cannot be redistributed here, so this crate synthesizes a corpus with the
//! three properties the experiments actually exercise:
//!
//! 1. **Wavelet-domain compressibility** — smooth P/T waves with sharp QRS
//!    complexes, produced by a McSharry-style sum-of-Gaussians beat model
//!    ([`BeatMorphology`]) warped by a beat-to-beat RR process
//!    ([`RhythmModel`]).
//! 2. **Low-resolution difference statistics** — realistic slew rates and
//!    noise floors so the quantized difference stream of the paper's parallel
//!    channel has the same highly peaked PDF (Fig. 4) that makes Huffman
//!    coding effective ([`NoiseModel`]).
//! 3. **Record-to-record variability** — 48 records with distinct heart
//!    rates, morphologies, noise levels and ectopic-beat (PVC/APC) burdens
//!    for the per-record box plots ([`Corpus`]).
//!
//! Every stochastic element is seeded; the corpus is bit-reproducible.
//!
//! # Example
//!
//! ```
//! use hybridcs_ecg::{Corpus, CorpusConfig};
//!
//! let corpus = Corpus::generate(&CorpusConfig { records: 2, duration_s: 4.0, seed: 7 });
//! assert_eq!(corpus.records().len(), 2);
//! let record = &corpus.records()[0];
//! assert_eq!(record.fs_hz(), 360.0);
//! assert!(record.samples_mv().len() == (4.0 * 360.0) as usize);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod beat;
mod corpus;
mod detect;
mod error;
pub mod format212;
mod generator;
mod noise;
mod record;
mod rhythm;
pub mod rng;

pub use beat::{BeatMorphology, GaussianWave};
pub use corpus::{Corpus, CorpusConfig};
pub use detect::{detect_r_peaks, match_beats, BeatMatchStats, RPeak};
pub use error::EcgError;
pub use generator::{EcgGenerator, GeneratorConfig};
pub use noise::NoiseModel;
pub use record::{AdcCalibration, EcgRecord, WindowIter};
pub use rhythm::RhythmModel;

/// MIT-BIH sampling rate in Hz; all synthetic records use it.
pub const MIT_BIH_FS_HZ: f64 = 360.0;
