//! Beat-to-beat RR-interval process: mean heart rate, Gaussian HRV, and
//! respiratory sinus arrhythmia (RSA) modulation.

use crate::EcgError;
use hybridcs_rand::Rng;

/// RR-interval generator.
///
/// Produces a sequence `RR₁, RR₂, …` (seconds) with
///
/// ```text
/// RRₖ = mean_rr · (1 + rsa_depth·sin(2π·rsa_freq·tₖ)) + N(0, sdnn)
/// ```
///
/// clamped to a physiological floor of 0.25 s. `tₖ` is the cumulative time
/// of the k-th beat, so RSA produces the familiar slow oscillation of heart
/// rate with breathing.
///
/// # Example
///
/// ```
/// use hybridcs_ecg::RhythmModel;
/// use hybridcs_rand::SeedableRng;
///
/// # fn main() -> Result<(), hybridcs_ecg::EcgError> {
/// let rhythm = RhythmModel::new(0.8, 0.04, 0.1, 0.25)?;
/// let mut rng = hybridcs_rand::rngs::StdRng::seed_from_u64(1);
/// let rr = rhythm.intervals(&mut rng, 10.0);
/// assert!(!rr.is_empty());
/// assert!(rr.iter().all(|&r| r > 0.25));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RhythmModel {
    mean_rr_s: f64,
    sdnn_s: f64,
    rsa_depth: f64,
    rsa_freq_hz: f64,
}

impl RhythmModel {
    /// Creates a rhythm model.
    ///
    /// * `mean_rr_s` — mean RR interval in seconds (0.3–2.0 s, i.e. 30–200 bpm).
    /// * `sdnn_s` — standard deviation of the beat-to-beat Gaussian jitter.
    /// * `rsa_depth` — relative depth of respiratory modulation (0–0.5).
    /// * `rsa_freq_hz` — respiratory frequency (typically 0.15–0.4 Hz).
    ///
    /// # Errors
    ///
    /// Returns [`EcgError::BadParameter`] when any argument leaves its range.
    pub fn new(
        mean_rr_s: f64,
        sdnn_s: f64,
        rsa_depth: f64,
        rsa_freq_hz: f64,
    ) -> Result<Self, EcgError> {
        if !(0.3..=2.0).contains(&mean_rr_s) {
            return Err(EcgError::BadParameter {
                name: "mean_rr_s",
                value: mean_rr_s,
            });
        }
        if !(0.0..=0.3).contains(&sdnn_s) {
            return Err(EcgError::BadParameter {
                name: "sdnn_s",
                value: sdnn_s,
            });
        }
        if !(0.0..=0.5).contains(&rsa_depth) {
            return Err(EcgError::BadParameter {
                name: "rsa_depth",
                value: rsa_depth,
            });
        }
        if !(0.0..=1.0).contains(&rsa_freq_hz) {
            return Err(EcgError::BadParameter {
                name: "rsa_freq_hz",
                value: rsa_freq_hz,
            });
        }
        Ok(RhythmModel {
            mean_rr_s,
            sdnn_s,
            rsa_depth,
            rsa_freq_hz,
        })
    }

    /// Convenience constructor from a heart rate in beats per minute.
    ///
    /// # Errors
    ///
    /// Returns [`EcgError::BadParameter`] for rates outside 30–200 bpm (via
    /// the RR-interval range check).
    pub fn from_heart_rate_bpm(
        bpm: f64,
        sdnn_s: f64,
        rsa_depth: f64,
        rsa_freq_hz: f64,
    ) -> Result<Self, EcgError> {
        RhythmModel::new(60.0 / bpm, sdnn_s, rsa_depth, rsa_freq_hz)
    }

    /// Mean RR interval in seconds.
    #[must_use]
    pub fn mean_rr_s(&self) -> f64 {
        self.mean_rr_s
    }

    /// Generates RR intervals covering at least `duration_s` seconds.
    ///
    /// The sequence always covers the full duration: the sum of the returned
    /// intervals is `>= duration_s`.
    #[must_use]
    pub fn intervals<R: Rng + ?Sized>(&self, rng: &mut R, duration_s: f64) -> Vec<f64> {
        let mut out = Vec::with_capacity((duration_s / self.mean_rr_s) as usize + 2);
        let mut t = 0.0;
        while t < duration_s {
            let rsa =
                1.0 + self.rsa_depth * (2.0 * std::f64::consts::PI * self.rsa_freq_hz * t).sin();
            let rr = (self.mean_rr_s * rsa + crate::rng::normal(rng, 0.0, self.sdnn_s)).max(0.25);
            out.push(rr);
            t += rr;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybridcs_rand::SeedableRng;

    #[test]
    fn mean_rate_is_respected() {
        let rhythm = RhythmModel::new(0.8, 0.03, 0.0, 0.25).unwrap();
        let mut rng = hybridcs_rand::rngs::StdRng::seed_from_u64(5);
        let rr = rhythm.intervals(&mut rng, 400.0);
        let mean: f64 = rr.iter().sum::<f64>() / rr.len() as f64;
        assert!((mean - 0.8).abs() < 0.02, "mean RR {mean}");
    }

    #[test]
    fn covers_duration() {
        let rhythm = RhythmModel::new(1.0, 0.05, 0.1, 0.2).unwrap();
        let mut rng = hybridcs_rand::rngs::StdRng::seed_from_u64(3);
        let rr = rhythm.intervals(&mut rng, 30.0);
        let total: f64 = rr.iter().sum();
        assert!(total >= 30.0);
    }

    #[test]
    fn rsa_modulates_rate() {
        // With strong RSA and no jitter, intervals must oscillate.
        let rhythm = RhythmModel::new(0.8, 0.0, 0.2, 0.25).unwrap();
        let mut rng = hybridcs_rand::rngs::StdRng::seed_from_u64(0);
        let rr = rhythm.intervals(&mut rng, 60.0);
        let min = rr.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = rr.iter().cloned().fold(0.0, f64::max);
        assert!(max - min > 0.2, "RSA swing {}", max - min);
    }

    #[test]
    fn physiological_floor_enforced() {
        let rhythm = RhythmModel::new(0.35, 0.3, 0.0, 0.0).unwrap();
        let mut rng = hybridcs_rand::rngs::StdRng::seed_from_u64(1);
        let rr = rhythm.intervals(&mut rng, 200.0);
        assert!(rr.iter().all(|&r| r >= 0.25));
    }

    #[test]
    fn from_heart_rate_converts() {
        let rhythm = RhythmModel::from_heart_rate_bpm(75.0, 0.02, 0.1, 0.25).unwrap();
        assert!((rhythm.mean_rr_s() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn rejects_out_of_range() {
        assert!(RhythmModel::new(0.1, 0.02, 0.1, 0.25).is_err());
        assert!(RhythmModel::new(0.8, -0.1, 0.1, 0.25).is_err());
        assert!(RhythmModel::new(0.8, 0.02, 0.9, 0.25).is_err());
        assert!(RhythmModel::new(0.8, 0.02, 0.1, 5.0).is_err());
        assert!(RhythmModel::from_heart_rate_bpm(500.0, 0.0, 0.0, 0.0).is_err());
    }

    #[test]
    fn deterministic_under_seed() {
        let rhythm = RhythmModel::new(0.8, 0.05, 0.1, 0.25).unwrap();
        let run = |seed| {
            let mut rng = hybridcs_rand::rngs::StdRng::seed_from_u64(seed);
            rhythm.intervals(&mut rng, 20.0)
        };
        assert_eq!(run(2), run(2));
        assert_ne!(run(2), run(3));
    }
}
