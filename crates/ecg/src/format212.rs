//! WFDB Format-212 record I/O — the storage format of the MIT-BIH
//! Arrhythmia Database.
//!
//! The reproduction ships a synthetic corpus, but a user who *does* hold
//! the PhysioNet files should be able to run every experiment on them.
//! This module reads and writes the WFDB subset those files use: a `.hea`
//! text header plus a `.dat` file with two 12-bit two's-complement samples
//! packed into each 3-byte group.
//!
//! Only single-signal records are written; readers accept the first signal
//! of multi-signal records (MIT-BIH records carry two leads; lead II is
//! first in every record used by the paper's experiments).

use crate::{AdcCalibration, EcgError, EcgRecord};
use std::fs;
use std::io::{self, Read, Write};
use std::path::Path;

/// Packs signed 12-bit samples in WFDB Format 212: each consecutive pair
/// `(a, b)` becomes three bytes
/// `[a & 0xFF, ((b >> 8) & 0xF) << 4 | ((a >> 8) & 0xF), b & 0xFF]`.
///
/// An odd trailing sample is paired with 0.
///
/// # Panics
///
/// Panics if any sample is outside the signed 12-bit range
/// `[−2048, 2047]`.
#[must_use]
pub fn pack_212(samples: &[i16]) -> Vec<u8> {
    let mut out = Vec::with_capacity(samples.len() / 2 * 3 + 3);
    let mut iter = samples.chunks(2);
    for pair in &mut iter {
        let a = pair[0];
        let b = if pair.len() == 2 { pair[1] } else { 0 };
        for v in [a, b] {
            assert!(
                (-2048..=2047).contains(&v),
                "sample {v} outside 12-bit range"
            );
        }
        let ua = (a as i32 & 0xFFF) as u32;
        let ub = (b as i32 & 0xFFF) as u32;
        out.push((ua & 0xFF) as u8);
        out.push((((ub >> 8) << 4) | (ua >> 8)) as u8);
        out.push((ub & 0xFF) as u8);
    }
    out
}

/// Inverse of [`pack_212`]; returns `count` samples.
///
/// # Errors
///
/// Returns [`EcgError::BadParameter`] when the byte stream is too short
/// for `count` samples.
pub fn unpack_212(bytes: &[u8], count: usize) -> Result<Vec<i16>, EcgError> {
    let groups = count.div_ceil(2);
    if bytes.len() < groups * 3 {
        return Err(EcgError::BadParameter {
            name: "format-212 stream (too short)",
            value: bytes.len() as f64,
        });
    }
    let sign_extend = |v: u32| -> i16 {
        if v & 0x800 != 0 {
            (v | 0xFFFF_F000) as i32 as i16
        } else {
            v as i16
        }
    };
    let mut out = Vec::with_capacity(count);
    for g in 0..groups {
        let b0 = u32::from(bytes[3 * g]);
        let b1 = u32::from(bytes[3 * g + 1]);
        let b2 = u32::from(bytes[3 * g + 2]);
        let a = ((b1 & 0x0F) << 8) | b0;
        let b = ((b1 >> 4) << 8) | b2;
        out.push(sign_extend(a));
        if out.len() < count {
            out.push(sign_extend(b));
        }
    }
    Ok(out)
}

/// Writes `record` as `<dir>/<name>.hea` + `<dir>/<name>.dat` in WFDB
/// Format 212, using the record's own calibration for the gain/baseline
/// header fields.
///
/// # Errors
///
/// Returns an [`io::Error`] on filesystem failure; panics are avoided by
/// clamping digitized samples into the 12-bit range (the MIT-BIH
/// calibration keeps 11-bit data well inside it).
pub fn write_record(dir: &Path, name: &str, record: &EcgRecord) -> io::Result<()> {
    let cal = record.calibration();
    let samples: Vec<i16> = record
        .samples_adu()
        .into_iter()
        .map(|v| (v as i32).clamp(-2048, 2047) as i16)
        .collect();
    let dat_name = format!("{name}.dat");
    let header = format!(
        "{name} 1 {} {}\n{dat_name} 212 {}({}) {} {} {} 0 0 ECG\n",
        record.fs_hz(),
        samples.len(),
        cal.gain_adu_per_mv,
        cal.baseline_adu,
        cal.bits,
        cal.baseline_adu,
        samples.first().copied().unwrap_or(0),
    );
    fs::create_dir_all(dir)?;
    let mut hea = fs::File::create(dir.join(format!("{name}.hea")))?;
    hea.write_all(header.as_bytes())?;
    let mut dat = fs::File::create(dir.join(dat_name))?;
    dat.write_all(&pack_212(&samples))?;
    Ok(())
}

/// Reads a Format-212 record given its `.hea` path. Multi-signal records
/// yield their first signal.
///
/// # Errors
///
/// Returns [`EcgError::BadParameter`] for malformed headers or truncated
/// data (I/O failures are folded into the same variant with the file size
/// as the reported value).
pub fn read_record(hea_path: &Path) -> Result<EcgRecord, EcgError> {
    let malformed = |what: &'static str| EcgError::BadParameter {
        name: what,
        value: 0.0,
    };
    let text = fs::read_to_string(hea_path).map_err(|_| malformed("header file unreadable"))?;
    let mut lines = text
        .lines()
        .filter(|l| !l.trim().is_empty() && !l.starts_with('#'));
    let first = lines.next().ok_or(malformed("empty header"))?;
    let mut fields = first.split_whitespace();
    let record_name = fields.next().ok_or(malformed("missing record name"))?;
    let nsig: usize = fields
        .next()
        .and_then(|v| v.parse().ok())
        .ok_or(malformed("missing signal count"))?;
    let fs_hz: f64 = fields
        .next()
        .and_then(|v| v.parse().ok())
        .ok_or(malformed("missing sampling rate"))?;
    let nsamp: usize = fields
        .next()
        .and_then(|v| v.parse().ok())
        .ok_or(malformed("missing sample count"))?;
    if nsig == 0 {
        return Err(malformed("zero signals"));
    }

    let sig = lines.next().ok_or(malformed("missing signal line"))?;
    let mut sf = sig.split_whitespace();
    let dat_name = sf.next().ok_or(malformed("missing dat filename"))?;
    let format = sf.next().ok_or(malformed("missing format"))?;
    if format != "212" {
        return Err(malformed("unsupported format (only 212)"));
    }
    // Gain may carry a "(baseline)" suffix and/or "/mV" unit.
    let gain_field = sf.next().unwrap_or("200");
    let (gain_str, baseline_in_gain) = match gain_field.split_once('(') {
        Some((g, rest)) => (g, rest.trim_end_matches(')').parse::<f64>().ok()),
        None => (gain_field, None),
    };
    let gain: f64 = gain_str
        .trim_end_matches("/mV")
        .parse()
        .ok()
        .filter(|g| *g > 0.0)
        .ok_or(malformed("bad gain"))?;
    let bits: u32 = sf.next().and_then(|v| v.parse().ok()).unwrap_or(12);
    let adc_zero: f64 = sf.next().and_then(|v| v.parse().ok()).unwrap_or(0.0);
    let baseline = baseline_in_gain.unwrap_or(adc_zero);

    let dat_path = hea_path
        .parent()
        .unwrap_or_else(|| Path::new("."))
        .join(dat_name);
    let mut bytes = Vec::new();
    fs::File::open(&dat_path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|_| malformed("dat file unreadable"))?;

    // Multi-signal 212 interleaves signals sample by sample.
    let total = nsamp * nsig;
    let all = unpack_212(&bytes, total)?;
    let samples_mv: Vec<f64> = all
        .iter()
        .step_by(nsig)
        .map(|&v| (f64::from(v) - baseline) / gain)
        .collect();

    let id = record_name
        .chars()
        .filter(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap_or(0);
    Ok(EcgRecord::new(
        id,
        fs_hz,
        samples_mv,
        AdcCalibration {
            gain_adu_per_mv: gain,
            baseline_adu: baseline,
            bits,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Corpus, CorpusConfig};

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("hybridcs_fmt212_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let samples: Vec<i16> = vec![0, 1, -1, 2047, -2048, 1024, -777, 3];
        let bytes = pack_212(&samples);
        assert_eq!(bytes.len(), 12);
        assert_eq!(unpack_212(&bytes, 8).unwrap(), samples);
    }

    #[test]
    fn odd_length_roundtrip() {
        let samples: Vec<i16> = vec![5, -6, 7];
        let bytes = pack_212(&samples);
        assert_eq!(unpack_212(&bytes, 3).unwrap(), samples);
    }

    #[test]
    #[should_panic(expected = "12-bit range")]
    fn pack_rejects_out_of_range() {
        let _ = pack_212(&[3000]);
    }

    #[test]
    fn unpack_rejects_truncation() {
        assert!(unpack_212(&[0, 0], 2).is_err());
    }

    #[test]
    fn record_file_roundtrip() {
        let corpus = Corpus::generate(&CorpusConfig {
            records: 1,
            duration_s: 3.0,
            seed: 99,
        });
        let record = &corpus.records()[0];
        let dir = temp_dir("roundtrip");
        write_record(&dir, "100", record).unwrap();
        let back = read_record(&dir.join("100.hea")).unwrap();
        assert_eq!(back.id(), 100);
        assert_eq!(back.fs_hz(), record.fs_hz());
        assert_eq!(back.samples_mv().len(), record.samples_mv().len());
        // mV values survive up to one adu of quantization.
        let one_adu = 1.0 / record.calibration().gain_adu_per_mv;
        for (a, b) in record.samples_mv().iter().zip(back.samples_mv()) {
            assert!((a - b).abs() <= one_adu, "{a} vs {b}");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reader_handles_mit_bih_style_header() {
        // A header shaped like the real PhysioNet files (two signals).
        let dir = temp_dir("mitbih");
        fs::create_dir_all(&dir).unwrap();
        let samples: Vec<i16> = (0..20).flat_map(|i| [1024 + i as i16, 900]).collect();
        fs::write(dir.join("x.dat"), pack_212(&samples)).unwrap();
        fs::write(
            dir.join("x.hea"),
            "x 2 360 20\nx.dat 212 200(1024) 11 1024 995 0 0 MLII\nx.dat 212 200 11 1024 1011 0 0 V1\n",
        )
        .unwrap();
        let record = read_record(&dir.join("x.hea")).unwrap();
        assert_eq!(record.samples_mv().len(), 20);
        // First signal only: values 1024 + i at gain 200, baseline 1024.
        assert!((record.samples_mv()[0] - 0.0).abs() < 1e-9);
        assert!((record.samples_mv()[4] - 4.0 / 200.0).abs() < 1e-9);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reader_rejects_garbage() {
        let dir = temp_dir("garbage");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("bad.hea"), "bad 1 360\n").unwrap();
        assert!(read_record(&dir.join("bad.hea")).is_err());
        fs::write(
            dir.join("fmt.hea"),
            "fmt 1 360 4\nfmt.dat 16 200 11 1024 0 0 0 ECG\n",
        )
        .unwrap();
        assert!(read_record(&dir.join("fmt.hea")).is_err());
        assert!(read_record(&dir.join("missing.hea")).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn written_header_parses_calibration() {
        let corpus = Corpus::generate(&CorpusConfig {
            records: 1,
            duration_s: 1.0,
            seed: 5,
        });
        let dir = temp_dir("cal");
        write_record(&dir, "r1", &corpus.records()[0]).unwrap();
        let back = read_record(&dir.join("r1.hea")).unwrap();
        assert_eq!(back.calibration().gain_adu_per_mv, 200.0);
        assert_eq!(back.calibration().baseline_adu, 1024.0);
        assert_eq!(back.calibration().bits, 11);
        let _ = fs::remove_dir_all(&dir);
    }
}
