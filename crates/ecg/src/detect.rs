//! R-peak detection and beat-level comparison.
//!
//! PRD/SNR measure waveform fidelity, but the clinical question for a
//! compressed ECG is simpler: *did the beats survive?* This module
//! provides a compact Pan–Tompkins-style R-peak detector (band-pass →
//! square → moving-window integrate → adaptive threshold) and the
//! beat-matching statistics (sensitivity, positive predictivity, timing
//! jitter) used by the diagnostic-fidelity experiments.

use hybridcs_dsp::filters::{BandPass, FirFilter};

/// A detected R peak.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RPeak {
    /// Sample index of the peak.
    pub index: usize,
}

/// Detects R peaks in an ECG strip.
///
/// The pipeline is the classic energy detector: 5–20 Hz band-pass to
/// isolate QRS energy, squaring, a 150 ms moving-window integrator, then
/// an adaptive threshold at a fraction of the running signal peak with a
/// 250 ms refractory period. Peak positions are refined to the local
/// maximum of the raw signal within ±60 ms.
///
/// Returns peak sample indices in ascending order.
///
/// # Panics
///
/// Panics if `fs_hz <= 50` (the filter bank cannot be built).
///
/// # Example
///
/// ```
/// use hybridcs_ecg::{detect_r_peaks, EcgGenerator, GeneratorConfig};
///
/// # fn main() -> Result<(), hybridcs_ecg::EcgError> {
/// let generator = EcgGenerator::new(GeneratorConfig::normal_sinus())?;
/// let strip = generator.generate(10.0, 3);
/// let peaks = detect_r_peaks(&strip, 360.0);
/// // 75 bpm for 10 s -> about 12 beats.
/// assert!((10..=15).contains(&peaks.len()));
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn detect_r_peaks(signal_mv: &[f64], fs_hz: f64) -> Vec<usize> {
    assert!(fs_hz > 50.0, "sampling rate too low for QRS detection");
    if signal_mv.len() < (0.5 * fs_hz) as usize {
        return Vec::new();
    }
    // 1) Band-pass to the QRS band.
    let mut bp = BandPass::new(5.0, 20.0, fs_hz).expect("QRS band valid above 50 Hz");
    let filtered = bp.process(signal_mv);
    // 2) Energy: squaring.
    let squared: Vec<f64> = filtered.iter().map(|v| v * v).collect();
    // 3) Moving-window integration over 150 ms.
    let mwi_len = ((0.150 * fs_hz) as usize).max(1);
    let mwi = FirFilter::moving_average(mwi_len)
        .expect("window length >= 1")
        .apply(&squared);

    // 4) Adaptive threshold with refractory period.
    let refractory = (0.250 * fs_hz) as usize;
    let search_back = (0.060 * fs_hz) as usize;
    let global_peak = mwi.iter().cloned().fold(0.0_f64, f64::max);
    if global_peak <= 0.0 {
        return Vec::new();
    }
    let mut threshold = 0.3 * global_peak;
    let mut running_peak = global_peak;
    let mut peaks = Vec::new();
    let mut i = 1;
    while i + 1 < mwi.len() {
        let is_local_max = mwi[i] >= mwi[i - 1] && mwi[i] >= mwi[i + 1];
        if is_local_max && mwi[i] > threshold {
            // Refine to the raw-signal maximum nearby. The causal MWI and
            // band-pass delay the energy peak by up to the integrator
            // length, so the search reaches back accordingly.
            let lo = i.saturating_sub(mwi_len + search_back);
            let hi = (i + search_back).min(signal_mv.len() - 1);
            let refined = (lo..=hi)
                .max_by(|&a, &b| {
                    signal_mv[a]
                        .partial_cmp(&signal_mv[b])
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .unwrap_or(i);
            if peaks
                .last()
                .is_none_or(|&last: &usize| refined > last + refractory)
            {
                peaks.push(refined);
                running_peak = 0.875 * running_peak + 0.125 * mwi[i];
                threshold = 0.3 * running_peak;
                i += refractory;
                continue;
            }
        }
        i += 1;
    }
    peaks
}

/// Beat-matching statistics between a reference annotation and a test
/// detection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BeatMatchStats {
    /// Matched beats (within the tolerance).
    pub true_positives: usize,
    /// Detections with no matching reference beat.
    pub false_positives: usize,
    /// Reference beats with no matching detection.
    pub false_negatives: usize,
    /// Sensitivity `TP/(TP+FN)`; NaN when the reference is empty.
    pub sensitivity: f64,
    /// Positive predictivity `TP/(TP+FP)`; NaN when no detections.
    pub positive_predictivity: f64,
    /// Mean |timing error| of matched beats, in samples.
    pub mean_jitter_samples: f64,
}

/// Greedily matches detected peaks to reference peaks within
/// `tolerance_samples` (standard ±75 ms at 360 Hz ≈ 27 samples) and
/// reports the beat-level statistics.
///
/// # Example
///
/// ```
/// let stats = hybridcs_ecg::match_beats(&[100, 400, 700], &[102, 398, 905], 27);
/// assert_eq!(stats.true_positives, 2);
/// assert_eq!(stats.false_positives, 1);
/// assert_eq!(stats.false_negatives, 1);
/// ```
#[must_use]
pub fn match_beats(
    reference: &[usize],
    detected: &[usize],
    tolerance_samples: usize,
) -> BeatMatchStats {
    let mut used = vec![false; detected.len()];
    let mut true_positives = 0usize;
    let mut jitter_sum = 0usize;
    for &r in reference {
        // Nearest unused detection within tolerance.
        let mut best: Option<(usize, usize)> = None; // (index, |error|)
        for (k, &d) in detected.iter().enumerate() {
            if used[k] {
                continue;
            }
            let err = r.abs_diff(d);
            if err <= tolerance_samples && best.is_none_or(|(_, e)| err < e) {
                best = Some((k, err));
            }
        }
        if let Some((k, err)) = best {
            used[k] = true;
            true_positives += 1;
            jitter_sum += err;
        }
    }
    let false_negatives = reference.len() - true_positives;
    let false_positives = detected.len() - true_positives;
    BeatMatchStats {
        true_positives,
        false_positives,
        false_negatives,
        sensitivity: true_positives as f64 / reference.len() as f64,
        positive_predictivity: true_positives as f64 / detected.len() as f64,
        mean_jitter_samples: if true_positives > 0 {
            jitter_sum as f64 / true_positives as f64
        } else {
            f64::NAN
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EcgGenerator, GeneratorConfig, NoiseModel};

    fn clean_strip(duration_s: f64, seed: u64) -> Vec<f64> {
        let mut cfg = GeneratorConfig::normal_sinus();
        cfg.noise = NoiseModel::none();
        cfg.amplitude_jitter = 0.0;
        EcgGenerator::new(cfg).unwrap().generate(duration_s, seed)
    }

    #[test]
    fn detects_expected_beat_count_clean() {
        let strip = clean_strip(20.0, 1);
        let peaks = detect_r_peaks(&strip, 360.0);
        // 75 bpm over 20 s = 25 beats.
        assert!((22..=27).contains(&peaks.len()), "{} beats", peaks.len());
    }

    #[test]
    fn detection_survives_ambulatory_noise() {
        let mut cfg = GeneratorConfig::normal_sinus();
        cfg.noise = NoiseModel::ambulatory();
        let strip = EcgGenerator::new(cfg).unwrap().generate(20.0, 2);
        let peaks = detect_r_peaks(&strip, 360.0);
        assert!((20..=30).contains(&peaks.len()), "{} beats", peaks.len());
    }

    #[test]
    fn peaks_are_refractory_spaced() {
        let strip = clean_strip(30.0, 3);
        let peaks = detect_r_peaks(&strip, 360.0);
        for pair in peaks.windows(2) {
            assert!(pair[1] - pair[0] > 90, "interval {}", pair[1] - pair[0]);
        }
    }

    #[test]
    fn peaks_land_on_r_waves() {
        // At each detected index the raw amplitude should be near the R
        // peak height (≈1 mV), not in a P/T wave.
        let strip = clean_strip(10.0, 4);
        let peaks = detect_r_peaks(&strip, 360.0);
        assert!(!peaks.is_empty());
        for &p in &peaks {
            assert!(strip[p] > 0.6, "amplitude {} at {p}", strip[p]);
        }
    }

    #[test]
    fn empty_and_flat_inputs() {
        assert!(detect_r_peaks(&[], 360.0).is_empty());
        assert!(detect_r_peaks(&vec![0.0; 3600], 360.0).is_empty());
        assert!(detect_r_peaks(&[0.0; 10], 360.0).is_empty());
    }

    #[test]
    fn match_beats_perfect() {
        let stats = match_beats(&[100, 200, 300], &[101, 199, 300], 5);
        assert_eq!(stats.true_positives, 3);
        assert_eq!(stats.false_positives, 0);
        assert_eq!(stats.false_negatives, 0);
        assert!((stats.sensitivity - 1.0).abs() < 1e-12);
        assert!((stats.mean_jitter_samples - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn match_beats_disjoint() {
        let stats = match_beats(&[100], &[500], 10);
        assert_eq!(stats.true_positives, 0);
        assert_eq!(stats.false_positives, 1);
        assert_eq!(stats.false_negatives, 1);
        assert!(stats.mean_jitter_samples.is_nan());
    }

    #[test]
    fn match_beats_does_not_double_count() {
        // One detection cannot match two reference beats.
        let stats = match_beats(&[100, 105], &[102], 10);
        assert_eq!(stats.true_positives, 1);
        assert_eq!(stats.false_negatives, 1);
        assert_eq!(stats.false_positives, 0);
    }

    #[test]
    fn detector_self_consistency_on_reconstruction_proxy() {
        // Adding 7-bit quantization noise must not destroy beat detection —
        // the property the diagnostic experiment relies on.
        let strip = clean_strip(20.0, 5);
        let reference = detect_r_peaks(&strip, 360.0);
        let step = 10.24 / 128.0;
        let coarse: Vec<f64> = strip.iter().map(|v| (v / step).floor() * step).collect();
        let detected = detect_r_peaks(&coarse, 360.0);
        let stats = match_beats(&reference, &detected, 27);
        assert!(stats.sensitivity > 0.95, "sens {}", stats.sensitivity);
        assert!(
            stats.positive_predictivity > 0.95,
            "ppv {}",
            stats.positive_predictivity
        );
    }
}
