//! The 48-record synthetic corpus standing in for the MIT-BIH Arrhythmia
//! Database.

use crate::{
    AdcCalibration, BeatMorphology, EcgGenerator, EcgRecord, GeneratorConfig, NoiseModel,
    RhythmModel,
};
use hybridcs_rand::{RngExt, SeedableRng};

/// Corpus generation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorpusConfig {
    /// Number of records (the paper's database has 48).
    pub records: usize,
    /// Duration of each record in seconds. The real records are 30 minutes;
    /// the experiments here default to shorter strips because reconstruction
    /// cost — not data volume — dominates, and every window is processed
    /// identically.
    pub duration_s: f64,
    /// Master seed; record `k` derives its own seed from it.
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            records: 48,
            duration_s: 60.0,
            seed: 0xEC6,
        }
    }
}

/// A reproducible collection of synthetic records with MIT-BIH-like
/// population diversity: heart rates spanning ~50–110 bpm, per-record
/// morphology perturbations, three noise grades and a subset of records
/// carrying PVC/APC ectopy.
///
/// # Example
///
/// ```
/// use hybridcs_ecg::{Corpus, CorpusConfig};
///
/// let corpus = Corpus::generate(&CorpusConfig { records: 4, duration_s: 3.0, seed: 1 });
/// let ids: Vec<u32> = corpus.records().iter().map(|r| r.id()).collect();
/// assert_eq!(ids, vec![100, 101, 102, 103]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Corpus {
    records: Vec<EcgRecord>,
    config: CorpusConfig,
}

impl Corpus {
    /// Generates the corpus described by `config`.
    #[must_use]
    pub fn generate(config: &CorpusConfig) -> Self {
        let records = (0..config.records)
            .map(|k| synthesize_record(k, config))
            .collect();
        Corpus {
            records,
            config: *config,
        }
    }

    /// Generates the default 48-record corpus with the given per-record
    /// duration.
    #[must_use]
    pub fn mit_bih_like(duration_s: f64) -> Self {
        Corpus::generate(&CorpusConfig {
            duration_s,
            ..CorpusConfig::default()
        })
    }

    /// The records, ordered by id.
    #[must_use]
    pub fn records(&self) -> &[EcgRecord] {
        &self.records
    }

    /// The configuration used to build this corpus.
    #[must_use]
    pub fn config(&self) -> &CorpusConfig {
        &self.config
    }

    /// Looks a record up by its MIT-BIH-style id.
    #[must_use]
    pub fn record(&self, id: u32) -> Option<&EcgRecord> {
        self.records.iter().find(|r| r.id() == id)
    }
}

/// Builds record `k`'s configuration and trace. The population structure is
/// deterministic in `k` (rate/noise/ectopy tiers) while the fine variation
/// (morphology jitter, noise realization) comes from the derived seed.
fn synthesize_record(k: usize, config: &CorpusConfig) -> EcgRecord {
    let record_seed = config
        .seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(k as u64);
    let mut rng = hybridcs_rand::rngs::StdRng::seed_from_u64(record_seed);

    // Heart-rate tiers sweep 50–110 bpm across the corpus.
    let frac = if config.records > 1 {
        k as f64 / (config.records - 1) as f64
    } else {
        0.5
    };
    let bpm = 50.0 + 60.0 * frac + 4.0 * crate::rng::standard_normal(&mut rng);
    let bpm = bpm.clamp(45.0, 115.0);

    // Noise grade: thirds of the corpus are clean / moderate / ambulatory.
    let noise = match k % 3 {
        0 => NoiseModel::clean(),
        1 => NoiseModel {
            baseline_wander_mv: 0.07,
            mains_mv: 0.01,
            mains_hz: 60.0,
            emg_mv: 0.012,
        },
        _ => NoiseModel::ambulatory(),
    };

    // Every fourth record carries ventricular ectopy; every sixth, atrial.
    let pvc_probability = if k % 4 == 3 { 0.08 } else { 0.0 };
    let apc_probability = if k % 6 == 5 { 0.06 } else { 0.0 };

    let morphology = BeatMorphology::normal().perturbed(&mut rng, 0.12);
    let rhythm = RhythmModel::from_heart_rate_bpm(
        bpm,
        0.02 + 0.02 * rng.random::<f64>(),
        0.05 + 0.08 * rng.random::<f64>(),
        0.2 + 0.1 * rng.random::<f64>(),
    )
    .expect("corpus rhythm parameters stay in range");

    let generator = EcgGenerator::new(GeneratorConfig {
        fs_hz: crate::MIT_BIH_FS_HZ,
        morphology,
        rhythm,
        noise,
        pvc_probability,
        apc_probability,
        amplitude_jitter: 0.04,
    })
    .expect("corpus generator config is valid");

    let samples_mv = generator.generate(config.duration_s, record_seed ^ 0xA5A5);
    EcgRecord::new(
        100 + k as u32,
        crate::MIT_BIH_FS_HZ,
        samples_mv,
        AdcCalibration::mit_bih(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Corpus {
        Corpus::generate(&CorpusConfig {
            records: 12,
            duration_s: 6.0,
            seed: 42,
        })
    }

    #[test]
    fn record_count_and_ids() {
        let corpus = small();
        assert_eq!(corpus.records().len(), 12);
        assert_eq!(corpus.records()[0].id(), 100);
        assert_eq!(corpus.records()[11].id(), 111);
        assert!(corpus.record(105).is_some());
        assert!(corpus.record(200).is_none());
    }

    #[test]
    fn reproducible() {
        let a = small();
        let b = small();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Corpus::generate(&CorpusConfig {
            records: 2,
            duration_s: 3.0,
            seed: 1,
        });
        let b = Corpus::generate(&CorpusConfig {
            records: 2,
            duration_s: 3.0,
            seed: 2,
        });
        assert_ne!(a.records()[0].samples_mv(), b.records()[0].samples_mv());
    }

    #[test]
    fn records_differ_from_each_other() {
        let corpus = small();
        let a = corpus.records()[0].samples_mv();
        let b = corpus.records()[1].samples_mv();
        let diff: f64 = a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum();
        assert!(diff > 10.0, "records look identical: {diff}");
    }

    #[test]
    fn heart_rates_span_population() {
        // Rough R-peak count per record over the corpus should vary with the
        // configured 50..110 bpm sweep.
        let corpus = Corpus::generate(&CorpusConfig {
            records: 8,
            duration_s: 30.0,
            seed: 9,
        });
        let count_beats = |x: &[f64]| {
            let mut beats = 0;
            let mut above = false;
            for &v in x {
                if v > 0.55 && !above {
                    beats += 1;
                    above = true;
                } else if v < 0.2 {
                    above = false;
                }
            }
            beats
        };
        let first = count_beats(corpus.records()[0].samples_mv());
        let last = count_beats(corpus.records()[7].samples_mv());
        assert!(
            last > first,
            "slowest record {first} beats vs fastest {last}"
        );
    }

    #[test]
    fn default_config_matches_paper_database_size() {
        assert_eq!(CorpusConfig::default().records, 48);
    }

    #[test]
    fn digitized_records_fit_11_bits() {
        let corpus = small();
        for r in corpus.records() {
            let adu = r.samples_adu();
            assert!(adu.iter().all(|&v| v < 2048));
            // Signal should sit around the 1024 baseline, exercising a
            // reasonable band of the converter.
            let mean: f64 = adu.iter().map(|&v| v as f64).sum::<f64>() / adu.len() as f64;
            assert!((900.0..1150.0).contains(&mean), "mean adu {mean}");
        }
    }
}
