//! Integration test: band-weighted ℓ₁ improves recovery of smooth
//! (ECG-like) signals at aggressive undersampling, and both convex solvers
//! honour the weights consistently.

use hybridcs_dsp::{Dwt, Wavelet};
use hybridcs_linalg::{vector, Matrix};
use hybridcs_solver::{
    band_weights, solve_admm, solve_pdhg, AdmmOptions, BpdnProblem, DenseOperator, PdhgOptions,
};

fn bernoulli_like(m: usize, n: usize, seed: u64) -> Matrix {
    let mut state = seed;
    Matrix::from_fn(m, n, |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        if (state >> 62) & 1 == 1 {
            1.0 / (n as f64).sqrt()
        } else {
            -1.0 / (n as f64).sqrt()
        }
    })
}

fn smooth_signal(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let t = i as f64 / n as f64;
            0.5 + (2.0 * std::f64::consts::PI * 1.5 * t).sin()
                + 0.3 * (2.0 * std::f64::consts::PI * 6.0 * t).cos()
        })
        .collect()
}

fn snr_db(truth: &[f64], estimate: &[f64]) -> f64 {
    let err = vector::dist2(truth, estimate);
    20.0 * (vector::norm2(truth) / err.max(1e-30)).log10()
}

#[test]
fn band_weights_improve_undersampled_recovery() {
    let n = 128;
    let m = 40;
    let x_true = smooth_signal(n);
    let phi = bernoulli_like(m, n, 31);
    let y = phi.matvec(&x_true);
    let op = DenseOperator::new(phi);
    let dwt = Dwt::new(Wavelet::Db4, 3).unwrap();
    let weights = band_weights(&dwt, n, 0.05, 1.5).unwrap();

    let flat = solve_pdhg(
        &BpdnProblem {
            sensing: &op,
            dwt: &dwt,
            measurements: &y,
            sigma: 1e-3,
            box_bounds: None,
            coefficient_weights: None,
        },
        &PdhgOptions::default(),
    )
    .unwrap();
    let weighted = solve_pdhg(
        &BpdnProblem {
            sensing: &op,
            dwt: &dwt,
            measurements: &y,
            sigma: 1e-3,
            box_bounds: None,
            coefficient_weights: Some(&weights),
        },
        &PdhgOptions::default(),
    )
    .unwrap();
    let snr_flat = snr_db(&x_true, &flat.signal);
    let snr_weighted = snr_db(&x_true, &weighted.signal);
    assert!(
        snr_weighted > snr_flat + 1.0,
        "weighted {snr_weighted} dB vs flat {snr_flat} dB"
    );
}

#[test]
fn pdhg_and_admm_agree_under_weights() {
    let n = 64;
    let m = 32;
    let x_true = smooth_signal(n);
    let phi = bernoulli_like(m, n, 37);
    let y = phi.matvec(&x_true);
    let op = DenseOperator::new(phi);
    let dwt = Dwt::new(Wavelet::Db4, 2).unwrap();
    let weights = band_weights(&dwt, n, 0.1, 1.5).unwrap();
    let problem = BpdnProblem {
        sensing: &op,
        dwt: &dwt,
        measurements: &y,
        sigma: 1e-3,
        box_bounds: None,
        coefficient_weights: Some(&weights),
    };
    let p = solve_pdhg(&problem, &PdhgOptions::default()).unwrap();
    let a = solve_admm(&problem, &AdmmOptions::default()).unwrap();
    let snr_p = snr_db(&x_true, &p.signal);
    let snr_a = snr_db(&x_true, &a.signal);
    assert!(
        (snr_p - snr_a).abs() < 6.0,
        "PDHG {snr_p} dB vs ADMM {snr_a} dB under weights"
    );
}

#[test]
fn zero_weight_band_is_never_shrunk_to_zero() {
    // With approx weight 0 the coarse coefficients are unpenalized: the
    // solution's approximation band should carry the signal mean instead
    // of being biased toward zero.
    let n = 64;
    let x_true = vec![1.0; n]; // pure DC
    let phi = bernoulli_like(24, n, 41);
    let y = phi.matvec(&x_true);
    let op = DenseOperator::new(phi);
    let dwt = Dwt::new(Wavelet::Haar, 2).unwrap();
    let weights = band_weights(&dwt, n, 0.0, 1.0).unwrap();
    let result = solve_pdhg(
        &BpdnProblem {
            sensing: &op,
            dwt: &dwt,
            measurements: &y,
            sigma: 1e-6,
            box_bounds: None,
            coefficient_weights: Some(&weights),
        },
        &PdhgOptions::default(),
    )
    .unwrap();
    let mean = result.signal.iter().sum::<f64>() / n as f64;
    assert!((mean - 1.0).abs() < 0.1, "mean {mean}");
}

#[test]
fn invalid_weights_rejected_by_both_solvers() {
    let n = 64;
    let op = DenseOperator::new(Matrix::identity(n));
    let dwt = Dwt::new(Wavelet::Db4, 2).unwrap();
    let y = vec![0.0; n];
    let bad_len = [1.0; 10];
    let negative = {
        let mut w = vec![1.0; n];
        w[3] = -1.0;
        w
    };
    for w in [&bad_len[..], &negative[..]] {
        let problem = BpdnProblem {
            sensing: &op,
            dwt: &dwt,
            measurements: &y,
            sigma: 0.1,
            box_bounds: None,
            coefficient_weights: Some(w),
        };
        assert!(solve_pdhg(&problem, &PdhgOptions::default()).is_err());
        assert!(solve_admm(&problem, &AdmmOptions::default()).is_err());
    }
}
