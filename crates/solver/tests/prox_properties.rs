//! Property tests for the proximal operators — the convergence guarantees
//! of PDHG/ADMM assume these are exact projections/prox maps, so the
//! defining properties are checked directly. Runs on the in-repo
//! `hybridcs_rand::check` harness (≥ 64 seeded cases each).

use hybridcs_linalg::vector;
use hybridcs_rand::check::{check, f64_in, vec_len, zip2, zip3, Gen};
use hybridcs_rand::{prop_assert, prop_assert_eq};
use hybridcs_solver::prox::{
    project_box, project_l2_ball, soft_threshold, soft_threshold_slice, soft_threshold_weighted,
};

fn vec_gen(len: usize) -> Gen<Vec<f64>> {
    vec_len(f64_in(-100.0, 100.0), len)
}

/// Soft-thresholding is the prox of t·|·|: it minimizes
/// ½(x−v)² + t|x|, which is equivalent to the subgradient condition
/// checked here at sampled alternatives.
#[test]
fn soft_threshold_minimizes_objective() {
    check(
        "soft_threshold_minimizes_objective",
        &zip2(f64_in(-100.0, 100.0), f64_in(0.0, 10.0)),
        |(v, t)| {
            let x = soft_threshold(*v, *t);
            let objective = |z: f64| 0.5 * (z - v) * (z - v) + t * z.abs();
            let fx = objective(x);
            for dz in [-1.0, -0.1, -1e-3, 1e-3, 0.1, 1.0] {
                prop_assert!(fx <= objective(x + dz) + 1e-9, "{fx} beaten at dz={dz}");
            }
            Ok(())
        },
    );
}

/// Shrinkage never changes sign and never grows magnitude.
#[test]
fn soft_threshold_is_a_shrinkage() {
    check(
        "soft_threshold_is_a_shrinkage",
        &zip2(f64_in(-100.0, 100.0), f64_in(0.0, 10.0)),
        |(v, t)| {
            let x = soft_threshold(*v, *t);
            prop_assert!(x.abs() <= v.abs() + 1e-12);
            prop_assert!(x * v >= 0.0);
            Ok(())
        },
    );
}

/// The slice and weighted variants agree with the scalar one.
#[test]
fn vector_variants_match_scalar() {
    check(
        "vector_variants_match_scalar",
        &zip2(vec_gen(16), f64_in(0.0, 5.0)),
        |(v, t)| {
            let mut plain = v.clone();
            soft_threshold_slice(&mut plain, *t);
            for (p, &orig) in plain.iter().zip(v) {
                prop_assert_eq!(*p, soft_threshold(orig, *t));
            }
            let w = vec![2.0; 16];
            let mut weighted = v.clone();
            soft_threshold_weighted(&mut weighted, *t, &w);
            for (p, &orig) in weighted.iter().zip(v) {
                prop_assert_eq!(*p, soft_threshold(orig, 2.0 * t));
            }
            Ok(())
        },
    );
}

/// Ball projection: output is inside the ball, idempotent, and no
/// feasible point is closer (projection optimality via sampled
/// feasible alternatives).
#[test]
fn ball_projection_properties() {
    check(
        "ball_projection_properties",
        &zip3(vec_gen(8), vec_gen(8), f64_in(0.0, 50.0)),
        |(v, c, r)| {
            let mut p = v.clone();
            project_l2_ball(&mut p, c, *r);
            prop_assert!(vector::dist2(&p, c) <= r + 1e-9);
            let mut twice = p.clone();
            project_l2_ball(&mut twice, c, *r);
            prop_assert!(vector::dist2(&p, &twice) < 1e-9);
            // The center is always feasible; the projection must be at least
            // as close to v as the center is.
            prop_assert!(vector::dist2(&p, v) <= vector::dist2(c, v) + 1e-9);
            Ok(())
        },
    );
}

/// Box projection: inside the box, idempotent, and componentwise
/// closest.
#[test]
fn box_projection_properties() {
    check("box_projection_properties", &vec_gen(8), |v| {
        let lo = vec![-5.0; 8];
        let hi = vec![7.0; 8];
        let mut p = v.clone();
        project_box(&mut p, &lo, &hi);
        for ((pi, &l), &h) in p.iter().zip(&lo).zip(&hi) {
            prop_assert!(l <= *pi && *pi <= h, "{pi} outside [{l}, {h}]");
        }
        // Componentwise optimality: any feasible z is no closer than p.
        for (i, &vi) in v.iter().enumerate() {
            let z = vi.clamp(lo[i], hi[i]);
            prop_assert!((p[i] - vi).abs() <= (z - vi).abs() + 1e-12);
        }
        Ok(())
    });
}

/// Projections are non-expansive: ‖P(a) − P(b)‖ ≤ ‖a − b‖.
#[test]
fn projections_are_nonexpansive() {
    check(
        "projections_are_nonexpansive",
        &zip2(vec_gen(8), vec_gen(8)),
        |(a, b)| {
            let c = vec![0.0; 8];
            let mut pa = a.clone();
            let mut pb = b.clone();
            project_l2_ball(&mut pa, &c, 10.0);
            project_l2_ball(&mut pb, &c, 10.0);
            prop_assert!(vector::dist2(&pa, &pb) <= vector::dist2(a, b) + 1e-9);

            let lo = vec![-3.0; 8];
            let hi = vec![3.0; 8];
            let mut qa = a.clone();
            let mut qb = b.clone();
            project_box(&mut qa, &lo, &hi);
            project_box(&mut qb, &lo, &hi);
            prop_assert!(vector::dist2(&qa, &qb) <= vector::dist2(a, b) + 1e-9);
            Ok(())
        },
    );
}
