//! End-to-end convergence instrumentation tests: seeded problems driven
//! through the `*_observed` entry points, checking (a) the recorded
//! [`hybridcs_solver::ConvergenceTrace`]s are coherent, (b) FISTA's
//! objective sequence is monotone non-increasing up to numerical noise on
//! a well-conditioned problem, and (c) an active observer never changes
//! the returned numbers (the golden-regression guarantee).

use hybridcs_dsp::{Dwt, Wavelet};
use hybridcs_linalg::{vector, Matrix};
use hybridcs_solver::{
    solve_admm, solve_admm_observed, solve_fista, solve_fista_observed, solve_omp,
    solve_omp_observed, solve_pdhg, solve_pdhg_observed, solve_reweighted,
    solve_reweighted_observed, AdmmOptions, BpdnProblem, DenseOperator, FistaOptions,
    GreedyOptions, PdhgOptions, RecordingObserver, ReweightedOptions, StopReason,
};

/// Deterministic ±1/√n pseudo-Bernoulli sensing matrix (same LCG family as
/// the solver unit tests).
fn bernoulli_like(m: usize, n: usize, seed: u64) -> Matrix {
    let mut state = seed;
    Matrix::from_fn(m, n, |_, _| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        if (state >> 62) & 1 == 1 {
            1.0 / (n as f64).sqrt()
        } else {
            -1.0 / (n as f64).sqrt()
        }
    })
}

fn smooth_signal(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let t = i as f64 / n as f64;
            (2.0 * std::f64::consts::PI * 2.0 * t).sin()
                + 0.4 * (2.0 * std::f64::consts::PI * 5.0 * t).cos()
        })
        .collect()
}

#[test]
fn fista_objective_is_monotone_non_increasing() {
    let n = 128;
    let m = 64;
    let x_true = smooth_signal(n);
    let phi = bernoulli_like(m, n, 21);
    let y = phi.matvec(&x_true);
    let op = DenseOperator::new(phi);
    let dwt = Dwt::new(Wavelet::Db4, 3).unwrap();
    let problem = BpdnProblem {
        sensing: &op,
        dwt: &dwt,
        measurements: &y,
        sigma: 1e-3,
        box_bounds: None,
        coefficient_weights: None,
    };
    let mut rec = RecordingObserver::new();
    let result = solve_fista_observed(
        &problem,
        &FistaOptions {
            lambda: Some(0.003),
            max_iterations: 2000,
            ..FistaOptions::default()
        },
        &mut rec,
    )
    .unwrap();

    assert_eq!(rec.events().len(), result.iterations);
    // FISTA with momentum is not strictly monotone, but on this seeded
    // problem the LASSO objective must be non-increasing up to a small
    // relative ripple.
    assert!(
        rec.objective_is_monotone(1e-3),
        "objective sequence rose: first 10 = {:?}",
        &rec.objectives()[..rec.events().len().min(10)]
    );
    // And it must make real progress overall.
    let objectives = rec.objectives();
    assert!(objectives.last().unwrap() < &(0.9 * objectives[0]));

    let trace = rec.trace().expect("on_complete fired");
    assert_eq!(trace.solver, "fista");
    assert_eq!(trace.iterations, result.iterations);
    assert_eq!(trace.converged, result.converged);
    assert_eq!(trace.final_residual, result.residual);
    assert_eq!(trace.final_objective, result.objective);
}

#[test]
fn active_observer_does_not_change_results() {
    let n = 128;
    let m = 48;
    let x_true = smooth_signal(n);
    let phi = bernoulli_like(m, n, 33);
    let y = phi.matvec(&x_true);
    let op = DenseOperator::new(phi);
    let dwt = Dwt::new(Wavelet::Db4, 3).unwrap();
    let problem = BpdnProblem {
        sensing: &op,
        dwt: &dwt,
        measurements: &y,
        sigma: 1e-3,
        box_bounds: None,
        coefficient_weights: None,
    };

    let plain = solve_pdhg(&problem, &PdhgOptions::default()).unwrap();
    let mut rec = RecordingObserver::new();
    let observed = solve_pdhg_observed(&problem, &PdhgOptions::default(), &mut rec).unwrap();
    assert_eq!(plain.signal, observed.signal);
    assert_eq!(plain.iterations, observed.iterations);

    let plain = solve_admm(&problem, &AdmmOptions::default()).unwrap();
    let mut rec = RecordingObserver::new();
    let observed = solve_admm_observed(&problem, &AdmmOptions::default(), &mut rec).unwrap();
    assert_eq!(plain.signal, observed.signal);
    assert_eq!(rec.trace().unwrap().solver, "admm");

    let plain = solve_fista(
        &problem,
        &FistaOptions {
            lambda: Some(0.003),
            ..FistaOptions::default()
        },
    )
    .unwrap();
    let mut rec = RecordingObserver::new();
    let observed = solve_fista_observed(
        &problem,
        &FistaOptions {
            lambda: Some(0.003),
            ..FistaOptions::default()
        },
        &mut rec,
    )
    .unwrap();
    assert_eq!(plain.signal, observed.signal);

    let plain = solve_reweighted(&problem, &ReweightedOptions::default()).unwrap();
    let mut rec = RecordingObserver::new();
    let observed =
        solve_reweighted_observed(&problem, &ReweightedOptions::default(), &mut rec).unwrap();
    assert_eq!(plain.signal, observed.signal);
    assert_eq!(rec.trace().unwrap().solver, "reweighted");
    // Cumulative numbering: events strictly increase across rounds.
    assert!(rec
        .events()
        .windows(2)
        .all(|w| w[1].iteration > w[0].iteration));
    assert_eq!(
        rec.events().last().unwrap().iteration,
        observed.iterations,
        "reweighted iteration count must accumulate across rounds"
    );
}

#[test]
fn greedy_traces_report_stop_reasons() {
    // Normalized-column dictionary (splitmix64) and an exactly sparse truth:
    // OMP must hit the tolerance and report Converged.
    let m = 40;
    let n = 128;
    let mut state = 1u64;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        ((z >> 11) as f64 / (1u64 << 53) as f64) - 0.5
    };
    let mut a = Matrix::from_fn(m, n, |_, _| next());
    for j in 0..n {
        let norm = vector::norm2(&a.col(j));
        for i in 0..m {
            a.set(i, j, a.get(i, j) / norm);
        }
    }
    let mut truth = vec![0.0; n];
    truth[5] = 2.0;
    truth[60] = -1.5;
    truth[100] = 0.8;
    let y = a.matvec(&truth);

    let opts = GreedyOptions {
        max_sparsity: 3,
        ..GreedyOptions::default()
    };
    let plain = solve_omp(&a, &y, &opts).unwrap();
    let mut rec = RecordingObserver::new();
    let observed = solve_omp_observed(&a, &y, &opts, &mut rec).unwrap();
    assert_eq!(plain.signal, observed.signal);

    let trace = rec.trace().unwrap();
    assert_eq!(trace.solver, "omp");
    assert_eq!(trace.stop_reason, StopReason::Converged);
    assert_eq!(rec.events().len(), observed.iterations);
    // OMP residual shrinks with every added atom on this problem.
    let residuals: Vec<f64> = rec.events().iter().map(|e| e.residual).collect();
    assert!(residuals.windows(2).all(|w| w[1] < w[0]));
}
