use hybridcs_dsp::Dwt;
use hybridcs_linalg::{operator_norm_est, Matrix, PowerIterationOptions};

/// A linear operator `A: R^cols → R^rows` given by its forward and adjoint
/// actions.
///
/// The decoder never materializes `ΦΨ`; it composes fast operators instead.
/// Implementations must satisfy the adjoint identity
/// `⟨A x, y⟩ = ⟨x, Aᵀ y⟩` — the property tests in this crate check it for
/// every provided implementation.
pub trait LinearOperator {
    /// Output dimension `m`.
    fn rows(&self) -> usize;
    /// Input dimension `n`.
    fn cols(&self) -> usize;
    /// Forward action `out = A x`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `x.len() != cols()` or
    /// `out.len() != rows()`.
    fn apply(&self, x: &[f64], out: &mut [f64]);
    /// Adjoint action `out = Aᵀ y`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `y.len() != rows()` or
    /// `out.len() != cols()`.
    fn apply_adjoint(&self, y: &[f64], out: &mut [f64]);

    /// Scratch length required by [`LinearOperator::apply_into`] and
    /// [`LinearOperator::apply_adjoint_into`] (0 unless overridden).
    fn scratch_len(&self) -> usize {
        0
    }

    /// Forward action using caller-provided scratch instead of internal
    /// allocation. The default delegates to [`LinearOperator::apply`];
    /// implementations with internal temporaries override this to become
    /// allocation-free on the decode hot path.
    ///
    /// # Panics
    ///
    /// Implementations may panic on shape mismatches or if
    /// `scratch.len() < self.scratch_len()`.
    fn apply_into(&self, x: &[f64], out: &mut [f64], scratch: &mut [f64]) {
        let _ = scratch;
        self.apply(x, out);
    }

    /// Adjoint action using caller-provided scratch — see
    /// [`LinearOperator::apply_into`].
    ///
    /// # Panics
    ///
    /// Implementations may panic on shape mismatches or if
    /// `scratch.len() < self.scratch_len()`.
    fn apply_adjoint_into(&self, y: &[f64], out: &mut [f64], scratch: &mut [f64]) {
        let _ = scratch;
        self.apply_adjoint(y, out);
    }

    /// Scratch length required by the batched applications at width `k`.
    ///
    /// The default covers the gather/apply/scatter fallback; operators
    /// with real panel kernels override it.
    fn batch_scratch_len(&self, k: usize) -> usize {
        let _ = k;
        self.cols() + self.rows() + self.scratch_len()
    }

    /// Batched forward action over a column-major panel: lane `l` of
    /// `x_panel` (elements `x_panel[i*k + l]`) maps to lane `l` of
    /// `out_panel`. The contract every implementation must keep: each
    /// lane's output is **bit-identical** to [`LinearOperator::apply_into`]
    /// on the gathered lane — the batched solvers rely on this for their
    /// batch-equals-serial guarantee. The default loops over lanes through
    /// the serial path, which satisfies the contract trivially.
    ///
    /// # Panics
    ///
    /// Implementations may panic on panel shape mismatches or if
    /// `scratch.len() < self.batch_scratch_len(k)`.
    fn apply_batch_into(
        &self,
        x_panel: &[f64],
        k: usize,
        out_panel: &mut [f64],
        scratch: &mut [f64],
    ) {
        assert_eq!(x_panel.len(), self.cols() * k, "batch apply: panel shape");
        assert_eq!(
            out_panel.len(),
            self.rows() * k,
            "batch apply: output shape"
        );
        let (xbuf, rest) = scratch.split_at_mut(self.cols());
        let (ybuf, rest) = rest.split_at_mut(self.rows());
        for lane in 0..k {
            hybridcs_linalg::simd::gather_lane(x_panel, k, lane, xbuf);
            self.apply_into(xbuf, ybuf, rest);
            hybridcs_linalg::simd::scatter_lane(ybuf, k, lane, out_panel);
        }
    }

    /// Batched adjoint action over a column-major panel — same per-lane
    /// bit-identity contract as [`LinearOperator::apply_batch_into`].
    ///
    /// # Panics
    ///
    /// Implementations may panic on panel shape mismatches or if
    /// `scratch.len() < self.batch_scratch_len(k)`.
    fn apply_adjoint_batch_into(
        &self,
        y_panel: &[f64],
        k: usize,
        out_panel: &mut [f64],
        scratch: &mut [f64],
    ) {
        assert_eq!(y_panel.len(), self.rows() * k, "batch adjoint: panel shape");
        assert_eq!(
            out_panel.len(),
            self.cols() * k,
            "batch adjoint: output shape"
        );
        let (ybuf, rest) = scratch.split_at_mut(self.rows());
        let (xbuf, rest) = rest.split_at_mut(self.cols());
        for lane in 0..k {
            hybridcs_linalg::simd::gather_lane(y_panel, k, lane, ybuf);
            self.apply_adjoint_into(ybuf, xbuf, rest);
            hybridcs_linalg::simd::scatter_lane(xbuf, k, lane, out_panel);
        }
    }

    /// Whether the operator is exactly orthonormal (`AᵀA = AAᵀ = I`), in
    /// which case `‖A‖₂ = 1` and compositions can skip the power iteration.
    fn is_orthonormal(&self) -> bool {
        false
    }

    /// Estimate of the spectral norm `‖A‖₂` (power iteration by default).
    fn norm_est(&self) -> f64 {
        let (norm, _) = operator_norm_est(
            self.cols(),
            self.rows(),
            |x, out| self.apply(x, out),
            |y, out| self.apply_adjoint(y, out),
            PowerIterationOptions::default(),
        );
        norm
    }
}

/// A dense matrix as a [`LinearOperator`].
///
/// # Example
///
/// ```
/// use hybridcs_linalg::Matrix;
/// use hybridcs_solver::{DenseOperator, LinearOperator};
///
/// # fn main() -> Result<(), hybridcs_linalg::LinalgError> {
/// let op = DenseOperator::new(Matrix::from_rows(&[&[1.0, 2.0]])?);
/// let mut y = [0.0];
/// op.apply(&[3.0, 4.0], &mut y);
/// assert_eq!(y, [11.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DenseOperator {
    matrix: Matrix,
}

impl DenseOperator {
    /// Wraps a matrix.
    #[must_use]
    pub fn new(matrix: Matrix) -> Self {
        DenseOperator { matrix }
    }

    /// Borrows the wrapped matrix.
    #[must_use]
    pub fn matrix(&self) -> &Matrix {
        &self.matrix
    }
}

impl LinearOperator for DenseOperator {
    fn rows(&self) -> usize {
        self.matrix.nrows()
    }

    fn cols(&self) -> usize {
        self.matrix.ncols()
    }

    fn apply(&self, x: &[f64], out: &mut [f64]) {
        self.matrix.matvec_into(x, out);
    }

    fn apply_adjoint(&self, y: &[f64], out: &mut [f64]) {
        self.matrix.matvec_transpose_into(y, out);
    }
}

/// The wavelet synthesis operator `Ψ: coefficients → signal` (with adjoint
/// `Ψᵀ` = analysis), backed by the fast orthonormal DWT.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SynthesisOperator {
    dwt: Dwt,
    len: usize,
}

impl SynthesisOperator {
    /// Creates the operator for signals/coefficient vectors of length `len`.
    ///
    /// # Errors
    ///
    /// Returns the transform's [`hybridcs_dsp::DspError`] when `len` is
    /// unsupported for the transform depth.
    pub fn new(dwt: Dwt, len: usize) -> Result<Self, hybridcs_dsp::DspError> {
        // Validate the length once up front.
        dwt.layout(len)?;
        Ok(SynthesisOperator { dwt, len })
    }

    /// The wrapped transform.
    #[must_use]
    pub fn dwt(&self) -> &Dwt {
        &self.dwt
    }
}

impl LinearOperator for SynthesisOperator {
    fn rows(&self) -> usize {
        self.len
    }

    fn cols(&self) -> usize {
        self.len
    }

    fn apply(&self, x: &[f64], out: &mut [f64]) {
        let signal = self
            .dwt
            .inverse(x)
            .expect("length validated at construction");
        out.copy_from_slice(&signal);
    }

    fn apply_adjoint(&self, y: &[f64], out: &mut [f64]) {
        let coeffs = self
            .dwt
            .forward(y)
            .expect("length validated at construction");
        out.copy_from_slice(&coeffs);
    }

    fn scratch_len(&self) -> usize {
        Dwt::scratch_len(self.len)
    }

    fn apply_into(&self, x: &[f64], out: &mut [f64], scratch: &mut [f64]) {
        self.dwt
            .inverse_into(x, out, scratch)
            .expect("length validated at construction");
    }

    fn apply_adjoint_into(&self, y: &[f64], out: &mut [f64], scratch: &mut [f64]) {
        self.dwt
            .forward_into(y, out, scratch)
            .expect("length validated at construction");
    }

    fn batch_scratch_len(&self, k: usize) -> usize {
        Dwt::panel_scratch_len(self.len, k)
    }

    fn apply_batch_into(
        &self,
        x_panel: &[f64],
        k: usize,
        out_panel: &mut [f64],
        scratch: &mut [f64],
    ) {
        self.dwt
            .inverse_panel_into(x_panel, k, out_panel, scratch)
            .expect("length validated at construction");
    }

    fn apply_adjoint_batch_into(
        &self,
        y_panel: &[f64],
        k: usize,
        out_panel: &mut [f64],
        scratch: &mut [f64],
    ) {
        self.dwt
            .forward_panel_into(y_panel, k, out_panel, scratch)
            .expect("length validated at construction");
    }

    fn is_orthonormal(&self) -> bool {
        true
    }

    fn norm_est(&self) -> f64 {
        1.0 // orthonormal by construction
    }
}

/// Composition `A ∘ B` of two operators (`(A∘B)x = A(Bx)`).
///
/// Used for `ΦΨ` when a solver works in the coefficient domain.
#[derive(Debug, Clone)]
pub struct ComposedOperator<'a, A: ?Sized, B: ?Sized> {
    outer: &'a A,
    inner: &'a B,
}

impl<'a, A, B> ComposedOperator<'a, A, B>
where
    A: LinearOperator + ?Sized,
    B: LinearOperator + ?Sized,
{
    /// Composes `outer ∘ inner`.
    ///
    /// # Panics
    ///
    /// Panics if `outer.cols() != inner.rows()`.
    #[must_use]
    pub fn new(outer: &'a A, inner: &'a B) -> Self {
        assert_eq!(outer.cols(), inner.rows(), "composition dimension mismatch");
        ComposedOperator { outer, inner }
    }
}

impl<A, B> LinearOperator for ComposedOperator<'_, A, B>
where
    A: LinearOperator + ?Sized,
    B: LinearOperator + ?Sized,
{
    fn rows(&self) -> usize {
        self.outer.rows()
    }

    fn cols(&self) -> usize {
        self.inner.cols()
    }

    fn apply(&self, x: &[f64], out: &mut [f64]) {
        let mut scratch = vec![0.0; self.scratch_len()];
        self.apply_into(x, out, &mut scratch);
    }

    fn apply_adjoint(&self, y: &[f64], out: &mut [f64]) {
        let mut scratch = vec![0.0; self.scratch_len()];
        self.apply_adjoint_into(y, out, &mut scratch);
    }

    fn scratch_len(&self) -> usize {
        // The intermediate `mid` vector plus whatever the children need.
        self.inner.rows() + self.inner.scratch_len().max(self.outer.scratch_len())
    }

    fn apply_into(&self, x: &[f64], out: &mut [f64], scratch: &mut [f64]) {
        let (mid, rest) = scratch.split_at_mut(self.inner.rows());
        self.inner.apply_into(x, mid, rest);
        self.outer.apply_into(mid, out, rest);
    }

    fn apply_adjoint_into(&self, y: &[f64], out: &mut [f64], scratch: &mut [f64]) {
        let (mid, rest) = scratch.split_at_mut(self.outer.cols());
        self.outer.apply_adjoint_into(y, mid, rest);
        self.inner.apply_adjoint_into(mid, out, rest);
    }

    fn batch_scratch_len(&self, k: usize) -> usize {
        self.inner.rows() * k
            + self
                .inner
                .batch_scratch_len(k)
                .max(self.outer.batch_scratch_len(k))
    }

    fn apply_batch_into(
        &self,
        x_panel: &[f64],
        k: usize,
        out_panel: &mut [f64],
        scratch: &mut [f64],
    ) {
        let (mid, rest) = scratch.split_at_mut(self.inner.rows() * k);
        self.inner.apply_batch_into(x_panel, k, mid, rest);
        self.outer.apply_batch_into(mid, k, out_panel, rest);
    }

    fn apply_adjoint_batch_into(
        &self,
        y_panel: &[f64],
        k: usize,
        out_panel: &mut [f64],
        scratch: &mut [f64],
    ) {
        let (mid, rest) = scratch.split_at_mut(self.outer.cols() * k);
        self.outer.apply_adjoint_batch_into(y_panel, k, mid, rest);
        self.inner.apply_adjoint_batch_into(mid, k, out_panel, rest);
    }

    fn is_orthonormal(&self) -> bool {
        self.outer.is_orthonormal() && self.inner.is_orthonormal()
    }

    fn norm_est(&self) -> f64 {
        if self.inner.is_orthonormal() {
            // ‖A·Ψ‖₂ = ‖A‖₂ when Ψ is orthonormal: Ψ maps the unit sphere
            // onto itself, so the composition's extremal gain is `outer`'s.
            return self.outer.norm_est();
        }
        let (norm, _) = operator_norm_est(
            self.cols(),
            self.rows(),
            |x, out| self.apply(x, out),
            |y, out| self.apply_adjoint(y, out),
            PowerIterationOptions::default(),
        );
        norm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybridcs_dsp::Wavelet;
    use hybridcs_linalg::vector;

    fn dense(rows: usize, cols: usize) -> DenseOperator {
        DenseOperator::new(Matrix::from_fn(rows, cols, |i, j| {
            ((i * 7 + j * 3) % 5) as f64 - 2.0
        }))
    }

    #[test]
    fn dense_adjoint_identity() {
        let op = dense(5, 8);
        let x: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let y: Vec<f64> = (0..5).map(|i| (i as f64).cos()).collect();
        let mut ax = vec![0.0; 5];
        op.apply(&x, &mut ax);
        let mut aty = vec![0.0; 8];
        op.apply_adjoint(&y, &mut aty);
        let lhs = vector::dot(&ax, &y);
        let rhs = vector::dot(&x, &aty);
        assert!((lhs - rhs).abs() < 1e-9);
    }

    #[test]
    fn synthesis_is_orthonormal() {
        let dwt = Dwt::new(Wavelet::Db4, 3).unwrap();
        let op = SynthesisOperator::new(dwt, 64).unwrap();
        assert_eq!(op.norm_est(), 1.0);
        let c: Vec<f64> = (0..64).map(|i| ((i % 7) as f64) - 3.0).collect();
        let mut x = vec![0.0; 64];
        op.apply(&c, &mut x);
        let mut back = vec![0.0; 64];
        op.apply_adjoint(&x, &mut back);
        for (a, b) in c.iter().zip(&back) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn synthesis_rejects_bad_length() {
        let dwt = Dwt::new(Wavelet::Db4, 3).unwrap();
        assert!(SynthesisOperator::new(dwt, 100).is_err());
    }

    #[test]
    fn composed_matches_manual_composition() {
        let dwt = Dwt::new(Wavelet::Haar, 2).unwrap();
        let psi = SynthesisOperator::new(dwt.clone(), 16).unwrap();
        let phi = dense(6, 16);
        let a = ComposedOperator::new(&phi, &psi);
        assert_eq!(a.rows(), 6);
        assert_eq!(a.cols(), 16);
        let alpha: Vec<f64> = (0..16).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut direct = vec![0.0; 6];
        a.apply(&alpha, &mut direct);
        let manual_signal = dwt.inverse(&alpha).unwrap();
        let mut manual = vec![0.0; 6];
        phi.apply(&manual_signal, &mut manual);
        for (d, m) in direct.iter().zip(&manual) {
            assert!((d - m).abs() < 1e-10);
        }
    }

    #[test]
    fn composed_adjoint_identity() {
        let dwt = Dwt::new(Wavelet::Db2, 2).unwrap();
        let psi = SynthesisOperator::new(dwt, 32).unwrap();
        let phi = dense(10, 32);
        let a = ComposedOperator::new(&phi, &psi);
        let x: Vec<f64> = (0..32).map(|i| (i as f64).sin()).collect();
        let y: Vec<f64> = (0..10).map(|i| (i as f64 + 0.5).cos()).collect();
        let mut ax = vec![0.0; 10];
        a.apply(&x, &mut ax);
        let mut aty = vec![0.0; 32];
        a.apply_adjoint(&y, &mut aty);
        assert!((vector::dot(&ax, &y) - vector::dot(&x, &aty)).abs() < 1e-9);
    }

    #[test]
    fn composed_norm_est_delegates_through_orthonormal_inner() {
        let dwt = Dwt::new(Wavelet::Db2, 2).unwrap();
        let psi = SynthesisOperator::new(dwt, 32).unwrap();
        let phi = dense(10, 32);
        let a = ComposedOperator::new(&phi, &psi);
        assert!(psi.is_orthonormal());
        assert!(!phi.is_orthonormal());
        // Delegation is exact: the composed estimate IS the outer estimate.
        assert_eq!(a.norm_est().to_bits(), phi.norm_est().to_bits());
        // And it agrees with what a power iteration over the composition
        // would have found, because Ψ preserves the unit sphere.
        let (direct, _) = operator_norm_est(
            a.cols(),
            a.rows(),
            |x, out| a.apply(x, out),
            |y, out| a.apply_adjoint(y, out),
            PowerIterationOptions::default(),
        );
        assert!(
            (a.norm_est() - direct).abs() < 1e-4 * direct,
            "{} vs {direct}",
            a.norm_est()
        );
    }

    #[test]
    fn composed_into_variants_match_allocating_paths() {
        let dwt = Dwt::new(Wavelet::Db2, 2).unwrap();
        let psi = SynthesisOperator::new(dwt, 32).unwrap();
        let phi = dense(10, 32);
        let a = ComposedOperator::new(&phi, &psi);
        let mut scratch = vec![f64::NAN; a.scratch_len()];
        let x: Vec<f64> = (0..32).map(|i| (i as f64 * 0.21).sin()).collect();
        let mut direct = vec![0.0; 10];
        a.apply(&x, &mut direct);
        let mut via_into = vec![f64::NAN; 10];
        a.apply_into(&x, &mut via_into, &mut scratch);
        for (d, v) in direct.iter().zip(&via_into) {
            assert_eq!(d.to_bits(), v.to_bits());
        }
        let y: Vec<f64> = (0..10).map(|i| (i as f64 + 0.5).cos()).collect();
        let mut direct_t = vec![0.0; 32];
        a.apply_adjoint(&y, &mut direct_t);
        let mut via_into_t = vec![f64::NAN; 32];
        a.apply_adjoint_into(&y, &mut via_into_t, &mut scratch);
        for (d, v) in direct_t.iter().zip(&via_into_t) {
            assert_eq!(d.to_bits(), v.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "composition dimension mismatch")]
    fn composed_rejects_mismatch() {
        let a = dense(4, 8);
        let b = dense(4, 8);
        let _ = ComposedOperator::new(&a, &b);
    }

    #[test]
    fn norm_est_reasonable_for_dense() {
        let op = dense(6, 6);
        let norm = op.norm_est();
        assert!(norm > 0.0);
        assert!(norm <= op.matrix().frobenius_norm() + 1e-9);
    }
}
