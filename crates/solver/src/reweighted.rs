use crate::{
    solve_pdhg_workspace, BpdnProblem, PdhgOptions, RecoveryResult, SolverError, SolverWorkspace,
};
use hybridcs_obs::{ConvergenceTrace, IterationEvent, IterationObserver, NoopObserver, StopReason};
use std::time::Instant;

/// Options for [`solve_reweighted`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReweightedOptions {
    /// Number of outer reweighting rounds (Candès–Wakin–Boyd report most
    /// of the benefit within 2–4).
    pub outer_iterations: usize,
    /// Relative `ε` floor: each round uses `ε = epsilon_rel · max|α|` in
    /// the weight update `wᵢ = 1/(|αᵢ| + ε)`.
    pub epsilon_rel: f64,
    /// Inner PDHG configuration for each round.
    pub inner: PdhgOptions,
}

impl Default for ReweightedOptions {
    fn default() -> Self {
        ReweightedOptions {
            outer_iterations: 3,
            epsilon_rel: 0.05,
            inner: PdhgOptions::default(),
        }
    }
}

/// Iteratively-reweighted ℓ₁ recovery (Candès, Wakin & Boyd 2008): solve
/// the BPDN program, re-derive coefficient weights `wᵢ = 1/(|αᵢ| + ε)`
/// from the solution, and repeat. The reweighting sharpens the ℓ₁ ball
/// toward ℓ₀ around the current support, typically buying a few dB at
/// fixed `m` — a software-only improvement on the paper's decoder.
///
/// Any `coefficient_weights` already present in `problem` seed the first
/// round; subsequent rounds replace them.
///
/// Returns the final round's [`RecoveryResult`] with `iterations`
/// accumulated across rounds.
///
/// # Errors
///
/// Returns [`SolverError`] from validation or any inner solve, plus
/// [`SolverError::BadParameter`] for out-of-range options.
///
/// # Example
///
/// See `ablation_weighted_l1` and the crate tests; usage is identical to
/// [`solve_pdhg`] with [`ReweightedOptions`].
pub fn solve_reweighted(
    problem: &BpdnProblem<'_>,
    options: &ReweightedOptions,
) -> Result<RecoveryResult, SolverError> {
    solve_reweighted_observed(problem, options, &mut NoopObserver)
}

/// Forwards inner-PDHG iteration events with a cumulative iteration offset
/// so the outer trace counts monotonically across reweighting rounds, and
/// swallows the per-round completion traces (the outer solve emits one
/// unified `reweighted` trace instead).
pub(crate) struct OffsetForward<'o> {
    pub(crate) inner: &'o mut dyn IterationObserver,
    pub(crate) offset: usize,
}

impl IterationObserver for OffsetForward<'_> {
    fn active(&self) -> bool {
        self.inner.active()
    }

    fn on_iteration(&mut self, event: &IterationEvent) {
        self.inner.on_iteration(&IterationEvent {
            iteration: self.offset + event.iteration,
            ..*event
        });
    }

    fn on_complete(&mut self, _trace: &ConvergenceTrace) {}

    fn should_abort(&self) -> bool {
        // Forwarded so a watchdog can stop the inner PDHG mid-round.
        self.inner.should_abort()
    }
}

/// [`solve_reweighted`] with an [`IterationObserver`] hook: inner PDHG
/// iteration events are forwarded with iteration numbers accumulated
/// across reweighting rounds, and one unified [`ConvergenceTrace`] (solver
/// `"reweighted"`, stop reason from the final round) is emitted at the
/// end — the per-round PDHG traces are suppressed.
///
/// The observer never changes the arithmetic: results are bit-identical to
/// [`solve_reweighted`].
///
/// # Errors
///
/// Same conditions as [`solve_reweighted`].
pub fn solve_reweighted_observed(
    problem: &BpdnProblem<'_>,
    options: &ReweightedOptions,
    observer: &mut dyn IterationObserver,
) -> Result<RecoveryResult, SolverError> {
    solve_reweighted_workspace(problem, options, observer, &mut SolverWorkspace::new())
}

/// [`solve_reweighted_observed`] with every buffer — the inner PDHG state,
/// the per-round coefficient scratch, and the weight vector — drawn from a
/// caller-owned [`SolverWorkspace`]: once the workspace has been warmed, the
/// reweighting rounds perform **zero heap allocations**. Results are
/// bit-identical to [`solve_reweighted`].
///
/// The returned `signal` is a workspace buffer; pass it back via
/// [`SolverWorkspace::release`] to keep the pool in steady state.
///
/// # Errors
///
/// Same conditions as [`solve_reweighted`].
pub fn solve_reweighted_workspace(
    problem: &BpdnProblem<'_>,
    options: &ReweightedOptions,
    observer: &mut dyn IterationObserver,
    ws: &mut SolverWorkspace,
) -> Result<RecoveryResult, SolverError> {
    let started = Instant::now();
    if options.outer_iterations == 0 {
        return Err(SolverError::BadParameter {
            name: "outer_iterations",
            value: 0.0,
        });
    }
    if !(options.epsilon_rel > 0.0 && options.epsilon_rel.is_finite()) {
        return Err(SolverError::BadParameter {
            name: "epsilon_rel",
            value: options.epsilon_rel,
        });
    }
    problem.validate()?;

    let n = problem.signal_len();
    let dwt = problem.dwt;
    let mut dwt_scratch = ws.acquire(hybridcs_dsp::Dwt::scratch_len(n));
    let mut coeffs = ws.acquire(n);
    let mut weights_buf = ws.acquire(n);
    let mut have_weights = false;
    let mut total_iterations = 0;
    let mut last: Option<RecoveryResult> = None;
    let mut aborted = false;

    for _round in 0..options.outer_iterations {
        let round_problem = BpdnProblem {
            sensing: problem.sensing,
            dwt: problem.dwt,
            measurements: problem.measurements,
            sigma: problem.sigma,
            box_bounds: problem.box_bounds,
            coefficient_weights: if have_weights {
                Some(weights_buf.as_slice())
            } else {
                problem.coefficient_weights
            },
        };
        let mut forward = OffsetForward {
            inner: observer,
            offset: total_iterations,
        };
        let result = solve_pdhg_workspace(&round_problem, &options.inner, &mut forward, ws)?;
        total_iterations += result.iterations;

        // Next round's weights from this round's coefficients.
        dwt.forward_into(&result.signal, &mut coeffs, &mut dwt_scratch)
            .expect("length validated");
        let max = coeffs.iter().fold(0.0_f64, |m, c| m.max(c.abs()));
        let eps = (options.epsilon_rel * max).max(f64::MIN_POSITIVE);
        for (w, c) in weights_buf.iter_mut().zip(&coeffs) {
            *w = eps / (c.abs() + eps);
        }
        have_weights = true;
        if let Some(prev) = last.take() {
            ws.release(prev.signal);
        }
        last = Some(result);

        if observer.should_abort() {
            aborted = true;
            break;
        }
    }
    for buf in [dwt_scratch, coeffs, weights_buf] {
        ws.release(buf);
    }

    let mut result = last.expect("outer_iterations >= 1");
    result.iterations = total_iterations;
    observer.on_complete(&ConvergenceTrace {
        solver: "reweighted",
        iterations: total_iterations,
        stop_reason: if aborted {
            StopReason::Aborted
        } else if result.converged {
            StopReason::Converged
        } else {
            StopReason::MaxIterations
        },
        wall_time: started.elapsed(),
        converged: result.converged,
        final_objective: result.objective,
        final_residual: result.residual,
    });
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{solve_pdhg, DenseOperator};
    use hybridcs_dsp::{Dwt, Wavelet};
    use hybridcs_linalg::{vector, Matrix};

    fn bernoulli_like(m: usize, n: usize, seed: u64) -> Matrix {
        let mut state = seed;
        Matrix::from_fn(m, n, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if (state >> 62) & 1 == 1 {
                1.0 / (n as f64).sqrt()
            } else {
                -1.0 / (n as f64).sqrt()
            }
        })
    }

    fn smooth_signal(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let t = i as f64 / n as f64;
                (2.0 * std::f64::consts::PI * 2.0 * t).sin()
                    + 0.4 * (2.0 * std::f64::consts::PI * 5.0 * t).cos()
            })
            .collect()
    }

    fn snr_db(truth: &[f64], estimate: &[f64]) -> f64 {
        let err = vector::dist2(truth, estimate);
        20.0 * (vector::norm2(truth) / err.max(1e-30)).log10()
    }

    #[test]
    fn reweighting_improves_over_single_round() {
        let n = 128;
        let m = 44;
        let x_true = smooth_signal(n);
        let phi = bernoulli_like(m, n, 51);
        let y = phi.matvec(&x_true);
        let op = DenseOperator::new(phi);
        let dwt = Dwt::new(Wavelet::Db4, 3).unwrap();
        let problem = BpdnProblem {
            sensing: &op,
            dwt: &dwt,
            measurements: &y,
            sigma: 1e-3,
            box_bounds: None,
            coefficient_weights: None,
        };
        let single = solve_pdhg(&problem, &PdhgOptions::default()).unwrap();
        let multi = solve_reweighted(&problem, &ReweightedOptions::default()).unwrap();
        let snr_single = snr_db(&x_true, &single.signal);
        let snr_multi = snr_db(&x_true, &multi.signal);
        assert!(
            snr_multi > snr_single + 0.5,
            "reweighted {snr_multi} dB vs single {snr_single} dB"
        );
        assert!(multi.iterations > single.iterations);
    }

    #[test]
    fn one_round_matches_plain_pdhg() {
        let n = 64;
        let x_true = smooth_signal(n);
        let op = DenseOperator::new(Matrix::identity(n));
        let dwt = Dwt::new(Wavelet::Db4, 2).unwrap();
        let problem = BpdnProblem {
            sensing: &op,
            dwt: &dwt,
            measurements: &x_true,
            sigma: 0.01,
            box_bounds: None,
            coefficient_weights: None,
        };
        let plain = solve_pdhg(&problem, &PdhgOptions::default()).unwrap();
        let one = solve_reweighted(
            &problem,
            &ReweightedOptions {
                outer_iterations: 1,
                ..ReweightedOptions::default()
            },
        )
        .unwrap();
        assert_eq!(plain.signal, one.signal);
    }

    #[test]
    fn respects_box_constraint() {
        let n = 64;
        let m = 12;
        let x_true = smooth_signal(n);
        let phi = bernoulli_like(m, n, 53);
        let y = phi.matvec(&x_true);
        let op = DenseOperator::new(phi);
        let dwt = Dwt::new(Wavelet::Db4, 2).unwrap();
        let d = 0.25;
        let lo: Vec<f64> = x_true.iter().map(|v| (v / d).floor() * d).collect();
        let hi: Vec<f64> = lo.iter().map(|v| v + d).collect();
        let problem = BpdnProblem {
            sensing: &op,
            dwt: &dwt,
            measurements: &y,
            sigma: 1e-3,
            box_bounds: Some((&lo, &hi)),
            coefficient_weights: None,
        };
        let result = solve_reweighted(&problem, &ReweightedOptions::default()).unwrap();
        for ((v, l), h) in result.signal.iter().zip(&lo).zip(&hi) {
            assert!(*l <= *v && *v <= *h);
        }
    }

    #[test]
    fn rejects_bad_options() {
        let n = 64;
        let op = DenseOperator::new(Matrix::identity(n));
        let dwt = Dwt::new(Wavelet::Db4, 2).unwrap();
        let y = vec![0.0; n];
        let problem = BpdnProblem {
            sensing: &op,
            dwt: &dwt,
            measurements: &y,
            sigma: 0.1,
            box_bounds: None,
            coefficient_weights: None,
        };
        assert!(solve_reweighted(
            &problem,
            &ReweightedOptions {
                outer_iterations: 0,
                ..ReweightedOptions::default()
            }
        )
        .is_err());
        assert!(solve_reweighted(
            &problem,
            &ReweightedOptions {
                epsilon_rel: -1.0,
                ..ReweightedOptions::default()
            }
        )
        .is_err());
    }
}
