//! A divergence/budget watchdog for the iterative solvers.
//!
//! Iterative first-order methods fail in recognisable ways when fed
//! corrupted inputs (a bit-flipped measurement vector, an inconsistent box):
//! the iterates go non-finite, the objective runs away, or the solve burns
//! its whole iteration budget without progress. [`SolverWatchdog`] is an
//! [`IterationObserver`] that detects all three and asks the solver to stop
//! via [`IterationObserver::should_abort`] — the solver returns its best
//! iterate with [`StopReason::Aborted`](hybridcs_obs::StopReason::Aborted)
//! instead of panicking or spinning, and the receiver-side recovery
//! supervisor in `hybridcs-core` uses the trip verdict to fall down its
//! decode ladder.
//!
//! Every trip is counted in the [global metrics
//! registry](hybridcs_obs::global) under
//! `solver_watchdog_trips{reason=...}`.
//!
//! # Example
//!
//! ```
//! use hybridcs_solver::{SolverWatchdog, WatchdogConfig};
//! use std::time::Duration;
//!
//! let config = WatchdogConfig {
//!     max_wall_time: Some(Duration::from_millis(250)),
//!     ..WatchdogConfig::default()
//! };
//! let watchdog = SolverWatchdog::new(config);
//! assert!(watchdog.trip().is_none());
//! // Pass `&mut watchdog` to any `solve_*_observed` entry point.
//! ```

use hybridcs_obs::{ConvergenceTrace, IterationEvent, IterationObserver};
use std::time::{Duration, Instant};

/// Watchdog thresholds. The defaults are deliberately lenient: primal-dual
/// iterations are not monotone, so a healthy solve must never trip.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WatchdogConfig {
    /// Wall-clock budget for one solve. `None` disables the time check.
    pub max_wall_time: Option<Duration>,
    /// Hard per-solve iteration cap, independent of (and typically below)
    /// the solver's own budget. `None` disables the check.
    pub max_iterations: Option<usize>,
    /// Divergence factor: an iteration is "offending" when its objective
    /// exceeds `divergence_factor ×` the best objective seen *after*
    /// warmup. Pre-warmup objectives are excluded from the reference:
    /// solvers initialised at `x = 0` report a near-zero ℓ₁ objective that
    /// then legitimately climbs to its plateau, and any multiplicative
    /// test against that start value would trip on every healthy solve.
    pub divergence_factor: f64,
    /// Consecutive offending iterations before a divergence trip.
    pub patience: usize,
    /// Iterations excluded from the divergence check (and from the best-
    /// objective reference) while the method finds its footing; long
    /// enough that the initial objective climb has plateaued. Non-finite
    /// values still trip immediately.
    pub warmup: usize,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            max_wall_time: None,
            max_iterations: None,
            divergence_factor: 25.0,
            patience: 50,
            warmup: 50,
        }
    }
}

/// Why the watchdog tripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WatchdogTrip {
    /// The objective or residual went NaN/infinite.
    NonFinite {
        /// Iteration at which the non-finite value appeared.
        iteration: usize,
    },
    /// The objective exceeded the divergence factor over the running best
    /// for `patience` consecutive iterations.
    Diverged {
        /// Iteration at which patience ran out.
        iteration: usize,
    },
    /// The wall-clock budget was exhausted.
    TimeBudget {
        /// Iteration at which the budget ran out.
        iteration: usize,
    },
    /// The watchdog's own iteration cap was hit.
    IterationBudget {
        /// Iteration at which the cap was hit.
        iteration: usize,
    },
}

impl WatchdogTrip {
    /// Stable lower-snake identifier (used as the metrics label).
    #[must_use]
    pub fn reason(&self) -> &'static str {
        match self {
            WatchdogTrip::NonFinite { .. } => "non_finite",
            WatchdogTrip::Diverged { .. } => "diverged",
            WatchdogTrip::TimeBudget { .. } => "time_budget",
            WatchdogTrip::IterationBudget { .. } => "iteration_budget",
        }
    }

    /// Stable numeric code matching
    /// [`EventKind::WatchdogTrip`](hybridcs_obs::EventKind) code names in
    /// flight-recorder dumps.
    #[must_use]
    pub fn code(&self) -> u8 {
        match self {
            WatchdogTrip::NonFinite { .. } => 0,
            WatchdogTrip::Diverged { .. } => 1,
            WatchdogTrip::TimeBudget { .. } => 2,
            WatchdogTrip::IterationBudget { .. } => 3,
        }
    }

    /// The iteration at which the trip fired.
    #[must_use]
    pub fn iteration(&self) -> usize {
        match self {
            WatchdogTrip::NonFinite { iteration }
            | WatchdogTrip::Diverged { iteration }
            | WatchdogTrip::TimeBudget { iteration }
            | WatchdogTrip::IterationBudget { iteration } => *iteration,
        }
    }
}

/// The watchdog observer. Wraps an optional inner observer so convergence
/// traces can still be recorded on the watched path.
pub struct SolverWatchdog<'a> {
    config: WatchdogConfig,
    started: Instant,
    best_objective: f64,
    offending_streak: usize,
    trip: Option<WatchdogTrip>,
    last_trace: Option<ConvergenceTrace>,
    inner: Option<&'a mut dyn IterationObserver>,
}

impl std::fmt::Debug for SolverWatchdog<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SolverWatchdog")
            .field("config", &self.config)
            .field("trip", &self.trip)
            .finish_non_exhaustive()
    }
}

impl<'a> SolverWatchdog<'a> {
    /// A standalone watchdog.
    #[must_use]
    pub fn new(config: WatchdogConfig) -> Self {
        SolverWatchdog {
            config,
            started: Instant::now(),
            best_objective: f64::INFINITY,
            offending_streak: 0,
            trip: None,
            last_trace: None,
            inner: None,
        }
    }

    /// A watchdog that forwards events/traces to `inner` (e.g. a
    /// [`RecordingObserver`](hybridcs_obs::RecordingObserver)).
    #[must_use]
    pub fn with_inner(config: WatchdogConfig, inner: &'a mut dyn IterationObserver) -> Self {
        SolverWatchdog {
            inner: Some(inner),
            ..SolverWatchdog::new(config)
        }
    }

    /// Re-arms the watchdog (clears the trip, restarts the clock) so one
    /// instance can watch several solves in sequence.
    pub fn rearm(&mut self) {
        self.started = Instant::now();
        self.best_objective = f64::INFINITY;
        self.offending_streak = 0;
        self.trip = None;
        self.last_trace = None;
    }

    /// The trip verdict, if the watchdog fired during the last solve.
    #[must_use]
    pub fn trip(&self) -> Option<WatchdogTrip> {
        self.trip
    }

    /// The last completed solve's trace, when one was observed.
    #[must_use]
    pub fn last_trace(&self) -> Option<&ConvergenceTrace> {
        self.last_trace.as_ref()
    }

    fn record_trip(&mut self, trip: WatchdogTrip) {
        if self.trip.is_none() {
            hybridcs_obs::global()
                .counter("solver_watchdog_trips", &[("reason", trip.reason())])
                .inc();
            // Flight-recorder breadcrumb, attributed to whatever window
            // the calling thread's event context says is being solved.
            hybridcs_obs::flight::emit(
                hybridcs_obs::EventKind::WatchdogTrip,
                trip.code(),
                trip.iteration() as u64,
            );
            self.trip = Some(trip);
        }
    }
}

impl IterationObserver for SolverWatchdog<'_> {
    fn active(&self) -> bool {
        // Always pull per-iteration diagnostics: the checks need them.
        true
    }

    fn on_iteration(&mut self, event: &IterationEvent) {
        if let Some(inner) = self.inner.as_deref_mut() {
            if inner.active() {
                inner.on_iteration(event);
            }
        }
        if self.trip.is_some() {
            return;
        }
        let iteration = event.iteration;
        if !event.objective.is_finite() || !event.residual.is_finite() {
            self.record_trip(WatchdogTrip::NonFinite { iteration });
            return;
        }
        if iteration > self.config.warmup {
            if event.objective > self.config.divergence_factor * self.best_objective {
                self.offending_streak += 1;
                if self.offending_streak >= self.config.patience {
                    self.record_trip(WatchdogTrip::Diverged { iteration });
                    return;
                }
            } else {
                self.offending_streak = 0;
            }
            self.best_objective = self.best_objective.min(event.objective);
        }
        if let Some(budget) = self.config.max_wall_time {
            if self.started.elapsed() > budget {
                self.record_trip(WatchdogTrip::TimeBudget { iteration });
                return;
            }
        }
        if let Some(cap) = self.config.max_iterations {
            if iteration >= cap {
                self.record_trip(WatchdogTrip::IterationBudget { iteration });
            }
        }
    }

    fn on_complete(&mut self, trace: &ConvergenceTrace) {
        // A final non-finite result trips even if no per-iteration event
        // showed it (e.g. greedy refits that go degenerate on the last
        // step).
        if self.trip.is_none()
            && (!trace.final_objective.is_finite() || !trace.final_residual.is_finite())
        {
            self.record_trip(WatchdogTrip::NonFinite {
                iteration: trace.iterations,
            });
        }
        self.last_trace = Some(trace.clone());
        if let Some(inner) = self.inner.as_deref_mut() {
            inner.on_complete(trace);
        }
    }

    fn should_abort(&self) -> bool {
        self.trip.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybridcs_obs::RecordingObserver;

    fn event(iteration: usize, objective: f64) -> IterationEvent {
        IterationEvent {
            iteration,
            objective,
            residual: 1.0,
            step_size: None,
        }
    }

    #[test]
    fn healthy_sequence_never_trips() {
        let mut dog = SolverWatchdog::new(WatchdogConfig::default());
        for i in 1..=500 {
            dog.on_iteration(&event(i, 100.0 / i as f64));
            assert!(!dog.should_abort());
        }
        assert!(dog.trip().is_none());
    }

    #[test]
    fn non_finite_trips_immediately() {
        let mut dog = SolverWatchdog::new(WatchdogConfig::default());
        dog.on_iteration(&event(1, f64::NAN));
        assert!(matches!(
            dog.trip(),
            Some(WatchdogTrip::NonFinite { iteration: 1 })
        ));
        assert!(dog.should_abort());
    }

    #[test]
    fn sustained_objective_blowup_trips_diverged() {
        let config = WatchdogConfig {
            divergence_factor: 10.0,
            patience: 5,
            warmup: 2,
            ..WatchdogConfig::default()
        };
        let mut dog = SolverWatchdog::new(config);
        // Exponential blow-up: each iteration doubles the objective, so it
        // keeps offending against the post-warmup best long enough to
        // exhaust patience.
        for i in 1..=20 {
            dog.on_iteration(&event(i, (2.0_f64).powi(i as i32)));
            if dog.should_abort() {
                break;
            }
        }
        assert!(matches!(dog.trip(), Some(WatchdogTrip::Diverged { .. })));
    }

    #[test]
    fn transient_spike_is_forgiven() {
        let config = WatchdogConfig {
            divergence_factor: 10.0,
            patience: 5,
            warmup: 0,
            ..WatchdogConfig::default()
        };
        let mut dog = SolverWatchdog::new(config);
        dog.on_iteration(&event(1, 1.0));
        for i in 2..=4 {
            dog.on_iteration(&event(i, 1.0e6)); // streak of 3 < patience
        }
        dog.on_iteration(&event(5, 0.5)); // recovery resets the streak
        for i in 6..=8 {
            dog.on_iteration(&event(i, 1.0e6));
        }
        assert!(dog.trip().is_none());
    }

    #[test]
    fn zero_time_budget_trips_on_first_iteration() {
        let config = WatchdogConfig {
            max_wall_time: Some(Duration::ZERO),
            ..WatchdogConfig::default()
        };
        let mut dog = SolverWatchdog::new(config);
        dog.on_iteration(&event(1, 1.0));
        assert!(matches!(dog.trip(), Some(WatchdogTrip::TimeBudget { .. })));
    }

    #[test]
    fn iteration_cap_trips() {
        let config = WatchdogConfig {
            max_iterations: Some(3),
            ..WatchdogConfig::default()
        };
        let mut dog = SolverWatchdog::new(config);
        for i in 1..=3 {
            dog.on_iteration(&event(i, 1.0));
        }
        assert!(matches!(
            dog.trip(),
            Some(WatchdogTrip::IterationBudget { iteration: 3 })
        ));
    }

    #[test]
    fn rearm_clears_state() {
        let mut dog = SolverWatchdog::new(WatchdogConfig::default());
        dog.on_iteration(&event(1, f64::INFINITY));
        assert!(dog.should_abort());
        dog.rearm();
        assert!(!dog.should_abort());
        assert!(dog.trip().is_none());
    }

    #[test]
    fn forwards_to_inner_observer() {
        let mut rec = RecordingObserver::new();
        {
            let mut dog = SolverWatchdog::with_inner(WatchdogConfig::default(), &mut rec);
            dog.on_iteration(&event(1, 2.0));
            dog.on_iteration(&event(2, 1.0));
        }
        assert_eq!(rec.events().len(), 2);
        assert_eq!(rec.objectives(), vec![2.0, 1.0]);
    }

    #[test]
    fn trip_reasons_are_stable() {
        for (trip, s) in [
            (WatchdogTrip::NonFinite { iteration: 1 }, "non_finite"),
            (WatchdogTrip::Diverged { iteration: 1 }, "diverged"),
            (WatchdogTrip::TimeBudget { iteration: 1 }, "time_budget"),
            (
                WatchdogTrip::IterationBudget { iteration: 1 },
                "iteration_budget",
            ),
        ] {
            assert_eq!(trip.reason(), s);
        }
    }
}
