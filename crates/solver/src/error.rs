use std::error::Error;
use std::fmt;

/// Errors produced by the sparse-recovery solvers.
///
/// Non-convergence within the iteration budget is *not* an error — the
/// solvers return their best iterate with `converged = false` in
/// [`RecoveryResult`](crate::RecoveryResult), because a slightly inexact
/// reconstruction is still a valid (and measurable) decoder output.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SolverError {
    /// Problem components disagree on a dimension.
    DimensionMismatch {
        /// What was being matched (e.g. `"measurements vs sensing rows"`).
        what: &'static str,
        /// Expected size.
        expected: usize,
        /// Actual size.
        actual: usize,
    },
    /// A solver option or problem parameter was out of range.
    BadParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Value supplied.
        value: f64,
    },
    /// An input vector carried a NaN or infinity. Rejected at the entry
    /// point so the iterative methods never silently propagate non-finite
    /// values into the reconstruction.
    NonFinite {
        /// Which input was non-finite (e.g. `"measurements"`).
        what: &'static str,
        /// Index of the first offending element.
        index: usize,
    },
    /// The wavelet transform rejected the signal length.
    Transform(hybridcs_dsp::DspError),
    /// A linear-algebra kernel failed (e.g. a rank-deficient greedy refit).
    Linalg(hybridcs_linalg::LinalgError),
}

impl fmt::Display for SolverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolverError::DimensionMismatch {
                what,
                expected,
                actual,
            } => write!(
                f,
                "dimension mismatch ({what}): expected {expected}, got {actual}"
            ),
            SolverError::BadParameter { name, value } => {
                write!(f, "parameter {name} out of range: {value}")
            }
            SolverError::NonFinite { what, index } => {
                write!(f, "non-finite value in {what} at index {index}")
            }
            SolverError::Transform(e) => write!(f, "wavelet transform failed: {e}"),
            SolverError::Linalg(e) => write!(f, "linear algebra failed: {e}"),
        }
    }
}

impl Error for SolverError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SolverError::Transform(e) => Some(e),
            SolverError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<hybridcs_dsp::DspError> for SolverError {
    fn from(e: hybridcs_dsp::DspError) -> Self {
        SolverError::Transform(e)
    }
}

impl From<hybridcs_linalg::LinalgError> for SolverError {
    fn from(e: hybridcs_linalg::LinalgError) -> Self {
        SolverError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = SolverError::from(hybridcs_dsp::DspError::ZeroLevels);
        assert!(e.to_string().contains("wavelet"));
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SolverError>();
    }
}
