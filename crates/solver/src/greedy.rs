//! Greedy sparse-recovery baselines: OMP, CoSaMP and IHT.
//!
//! These operate in the **coefficient domain** on an explicit sensing
//! matrix `A = ΦΨ` (built once per configuration via
//! [`SensingMatrix::to_matrix`-style composition]) because greedy support
//! selection needs direct access to columns. The returned
//! [`RecoveryResult::signal`] therefore holds the coefficient vector `α`;
//! callers synthesize `x = Ψα` with their transform.
//!
//! Only IHT has a [`SolverWorkspace`] entry point
//! ([`solve_iht_workspace`]): its iteration touches fixed-size dense
//! buffers, so pooling removes every per-iteration allocation. OMP and
//! CoSaMP refit by Householder QR over a *support-dependent* column subset
//! each round — the factorization size changes as the support grows, so
//! those solvers are inherently allocation-per-refit and stay on the
//! Vec-returning API (they are offline ablation baselines, not decode-path
//! solvers).

use crate::{RecoveryResult, SolverError, SolverWorkspace};
use hybridcs_linalg::{vector, Matrix, QrFactorization};
use hybridcs_obs::{ConvergenceTrace, IterationEvent, IterationObserver, NoopObserver, StopReason};
use std::time::Instant;

/// Options shared by the greedy solvers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GreedyOptions {
    /// Target sparsity `s` (support-size cap).
    pub max_sparsity: usize,
    /// Stop when the residual norm drops below this value.
    pub residual_tolerance: f64,
    /// Outer-iteration budget (CoSaMP/IHT; OMP is bounded by
    /// `max_sparsity`).
    pub max_iterations: usize,
    /// IHT step size μ; `None` uses `1/‖A‖²` from power iteration.
    pub step: Option<f64>,
}

impl Default for GreedyOptions {
    fn default() -> Self {
        GreedyOptions {
            max_sparsity: 16,
            residual_tolerance: 1e-6,
            max_iterations: 100,
            step: None,
        }
    }
}

pub(crate) fn validate(a: &Matrix, y: &[f64], options: &GreedyOptions) -> Result<(), SolverError> {
    if y.len() != a.nrows() {
        return Err(SolverError::DimensionMismatch {
            what: "measurements vs matrix rows",
            expected: a.nrows(),
            actual: y.len(),
        });
    }
    if let Some(index) = crate::problem::first_non_finite(y) {
        return Err(SolverError::NonFinite {
            what: "measurements",
            index,
        });
    }
    if options.max_sparsity == 0 || options.max_sparsity > a.ncols() {
        return Err(SolverError::BadParameter {
            name: "max_sparsity",
            value: options.max_sparsity as f64,
        });
    }
    if options.max_iterations == 0 {
        return Err(SolverError::BadParameter {
            name: "max_iterations",
            value: 0.0,
        });
    }
    if options.residual_tolerance.is_nan() || options.residual_tolerance < 0.0 {
        return Err(SolverError::BadParameter {
            name: "residual_tolerance",
            value: options.residual_tolerance,
        });
    }
    Ok(())
}

/// Least-squares refit of `y` on the columns `support` of `a`; returns the
/// dense coefficient vector (zeros off-support) and the residual.
fn refit(a: &Matrix, y: &[f64], support: &[usize]) -> Result<(Vec<f64>, Vec<f64>), SolverError> {
    let a_s = a.select_columns(support);
    let qr = QrFactorization::factor(&a_s)?;
    let coeff_s = qr.solve_least_squares(y)?;
    let mut alpha = vec![0.0; a.ncols()];
    for (&idx, &c) in support.iter().zip(&coeff_s) {
        alpha[idx] = c;
    }
    let fitted = a_s.matvec(&coeff_s);
    let residual = vector::sub(y, &fitted);
    Ok((alpha, residual))
}

/// Orthogonal Matching Pursuit.
///
/// Greedily grows the support by the column best correlated with the
/// residual, refitting by least squares (Householder QR) after every
/// addition. Stops at `max_sparsity` atoms or when the residual drops
/// below `residual_tolerance`.
///
/// Returns the coefficient vector in [`RecoveryResult::signal`].
///
/// # Errors
///
/// Returns [`SolverError`] on dimension mismatches, bad options, or a
/// rank-deficient refit (duplicate/degenerate columns).
///
/// # Example
///
/// ```
/// use hybridcs_linalg::Matrix;
/// use hybridcs_solver::{solve_omp, GreedyOptions};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // y = 3·a₂ for an identity dictionary: OMP finds it in one step.
/// let a = Matrix::identity(4);
/// let y = [0.0, 0.0, 3.0, 0.0];
/// let result = solve_omp(&a, &y, &GreedyOptions { max_sparsity: 1, ..GreedyOptions::default() })?;
/// assert!((result.signal[2] - 3.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn solve_omp(
    a: &Matrix,
    y: &[f64],
    options: &GreedyOptions,
) -> Result<RecoveryResult, SolverError> {
    solve_omp_observed(a, y, options, &mut NoopObserver)
}

/// [`solve_omp`] with an [`IterationObserver`] hook: when the observer is
/// [active](IterationObserver::active), every atom selection emits an
/// [`IterationEvent`] (objective = `‖α‖₁`, residual = post-refit residual
/// norm, no step size), and completion emits a [`ConvergenceTrace`].
/// [`StopReason::SupportExhausted`] reports a residual orthogonal to every
/// remaining atom.
///
/// The observer never changes the arithmetic: results are bit-identical to
/// [`solve_omp`].
///
/// # Errors
///
/// Same conditions as [`solve_omp`].
pub fn solve_omp_observed(
    a: &Matrix,
    y: &[f64],
    options: &GreedyOptions,
    observer: &mut dyn IterationObserver,
) -> Result<RecoveryResult, SolverError> {
    let started = Instant::now();
    validate(a, y, options)?;
    let mut support: Vec<usize> = Vec::new();
    let mut residual = y.to_vec();
    let mut alpha = vec![0.0; a.ncols()];
    let mut iterations = 0;
    let mut exhausted = false;
    let mut aborted = false;

    while support.len() < options.max_sparsity
        && vector::norm2(&residual) > options.residual_tolerance
    {
        iterations += 1;
        let correlations = a.matvec_transpose(&residual);
        // Mask already-selected atoms.
        let pick = correlations
            .iter()
            .enumerate()
            .filter(|(i, _)| !support.contains(i))
            .max_by(|(_, x), (_, y)| {
                x.abs()
                    .partial_cmp(&y.abs())
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(i, _)| i);
        let Some(pick) = pick else {
            exhausted = true;
            break;
        };
        if correlations[pick] == 0.0 {
            exhausted = true;
            break; // residual orthogonal to every remaining atom
        }
        support.push(pick);
        let (alpha_new, residual_new) = refit(a, y, &support)?;
        alpha = alpha_new;
        residual = residual_new;
        if observer.active() {
            observer.on_iteration(&IterationEvent {
                iteration: iterations,
                objective: vector::norm1(&alpha),
                residual: vector::norm2(&residual),
                step_size: None,
            });
        }
        if observer.should_abort() {
            aborted = true;
            break;
        }
    }

    let res_norm = vector::norm2(&residual);
    let objective = vector::norm1(&alpha);
    let converged =
        !aborted && (res_norm <= options.residual_tolerance || iterations < options.max_sparsity);
    observer.on_complete(&ConvergenceTrace {
        solver: "omp",
        iterations,
        stop_reason: if aborted {
            StopReason::Aborted
        } else if res_norm <= options.residual_tolerance {
            StopReason::Converged
        } else if exhausted {
            StopReason::SupportExhausted
        } else {
            StopReason::MaxIterations
        },
        wall_time: started.elapsed(),
        converged,
        final_objective: objective,
        final_residual: res_norm,
    });
    Ok(RecoveryResult {
        objective,
        signal: alpha,
        iterations,
        converged,
        residual: res_norm,
    })
}

/// Compressive Sampling Matching Pursuit (CoSaMP, Needell & Tropp 2009).
///
/// Each iteration merges the `2s` best proxy atoms with the current
/// support, least-squares refits, and prunes back to the best `s`.
///
/// Returns the coefficient vector in [`RecoveryResult::signal`].
///
/// # Errors
///
/// Same conditions as [`solve_omp`].
pub fn solve_cosamp(
    a: &Matrix,
    y: &[f64],
    options: &GreedyOptions,
) -> Result<RecoveryResult, SolverError> {
    solve_cosamp_observed(a, y, options, &mut NoopObserver)
}

/// [`solve_cosamp`] with an [`IterationObserver`] hook: when the observer
/// is [active](IterationObserver::active), every merge–refit–prune round
/// emits an [`IterationEvent`] (objective = `‖α‖₁`, residual = post-prune
/// residual norm, no step size), and completion emits a
/// [`ConvergenceTrace`]. [`StopReason::Stagnated`] reports a fixed point;
/// [`StopReason::SupportExhausted`] reports a degenerate (rank-deficient)
/// merge set that forced keeping the previous iterate.
///
/// The observer never changes the arithmetic: results are bit-identical to
/// [`solve_cosamp`].
///
/// # Errors
///
/// Same conditions as [`solve_cosamp`].
pub fn solve_cosamp_observed(
    a: &Matrix,
    y: &[f64],
    options: &GreedyOptions,
    observer: &mut dyn IterationObserver,
) -> Result<RecoveryResult, SolverError> {
    let started = Instant::now();
    validate(a, y, options)?;
    let s = options.max_sparsity;
    let mut alpha = vec![0.0; a.ncols()];
    let mut residual = y.to_vec();
    let mut iterations = 0;
    let mut converged = false;
    let mut prev_res = f64::INFINITY;
    let mut stop = StopReason::MaxIterations;

    for iter in 1..=options.max_iterations {
        iterations = iter;
        let proxy = a.matvec_transpose(&residual);
        let mut merged = vector::top_k_abs_indices(&proxy, 2 * s);
        for (i, &v) in alpha.iter().enumerate() {
            if v != 0.0 && !merged.contains(&i) {
                merged.push(i);
            }
        }
        merged.sort_unstable();
        let (dense_fit, _) = match refit(a, y, &merged) {
            Ok(fit) => fit,
            Err(SolverError::Linalg(_)) => {
                // degenerate merge set: keep best iterate
                stop = StopReason::SupportExhausted;
                break;
            }
            Err(e) => return Err(e),
        };
        // Prune to the s largest and refit on the pruned support.
        let pruned = vector::top_k_abs_indices(&dense_fit, s);
        let mut pruned_sorted = pruned;
        pruned_sorted.sort_unstable();
        let (alpha_new, residual_new) = match refit(a, y, &pruned_sorted) {
            Ok(fit) => fit,
            Err(SolverError::Linalg(_)) => {
                stop = StopReason::SupportExhausted;
                break;
            }
            Err(e) => return Err(e),
        };
        alpha = alpha_new;
        residual = residual_new;
        let res_norm = vector::norm2(&residual);
        if observer.active() {
            observer.on_iteration(&IterationEvent {
                iteration: iter,
                objective: vector::norm1(&alpha),
                residual: res_norm,
                step_size: None,
            });
        }
        if observer.should_abort() {
            stop = StopReason::Aborted;
            break;
        }
        if res_norm <= options.residual_tolerance {
            converged = true;
            stop = StopReason::Converged;
            break;
        }
        if prev_res.is_finite() && (prev_res - res_norm).abs() <= 1e-12 * prev_res.max(1.0) {
            converged = true; // stagnated at its fixed point
            stop = StopReason::Stagnated;
            break;
        }
        prev_res = res_norm;
    }

    let res_norm = vector::norm2(&residual);
    let objective = vector::norm1(&alpha);
    observer.on_complete(&ConvergenceTrace {
        solver: "cosamp",
        iterations,
        stop_reason: stop,
        wall_time: started.elapsed(),
        converged,
        final_objective: objective,
        final_residual: res_norm,
    });
    Ok(RecoveryResult {
        objective,
        signal: alpha,
        iterations,
        converged,
        residual: res_norm,
    })
}

/// Iterative Hard Thresholding: `α ← H_s(α + μ·Aᵀ(y − Aα))`.
///
/// Returns the coefficient vector in [`RecoveryResult::signal`].
///
/// # Errors
///
/// Same conditions as [`solve_omp`], plus a non-positive explicit `step`.
pub fn solve_iht(
    a: &Matrix,
    y: &[f64],
    options: &GreedyOptions,
) -> Result<RecoveryResult, SolverError> {
    solve_iht_observed(a, y, options, &mut NoopObserver)
}

/// [`solve_iht`] with an [`IterationObserver`] hook: when the observer is
/// [active](IterationObserver::active), every hard-thresholding step emits
/// an [`IterationEvent`] (objective = `‖α‖₁`, residual recomputed at the
/// new iterate — one extra matvec, skipped on the no-op path; step size =
/// μ), and completion emits a [`ConvergenceTrace`].
/// [`StopReason::Stagnated`] reports a vanishing update.
///
/// The observer never changes the arithmetic: results are bit-identical to
/// [`solve_iht`].
///
/// # Errors
///
/// Same conditions as [`solve_iht`].
pub fn solve_iht_observed(
    a: &Matrix,
    y: &[f64],
    options: &GreedyOptions,
    observer: &mut dyn IterationObserver,
) -> Result<RecoveryResult, SolverError> {
    solve_iht_workspace(a, y, options, observer, &mut SolverWorkspace::new())
}

/// [`solve_iht_observed`] with every per-iteration buffer — including the
/// support-index scratch for the hard threshold — drawn from a caller-owned
/// [`SolverWorkspace`]: once the workspace has been warmed by one solve of
/// each size, the inner loop performs **zero heap allocations**. Results are
/// bit-identical to [`solve_iht`].
///
/// The returned `signal` is a workspace buffer; pass it back via
/// [`SolverWorkspace::release`] to keep the pool in steady state.
///
/// # Errors
///
/// Same conditions as [`solve_iht`].
pub fn solve_iht_workspace(
    a: &Matrix,
    y: &[f64],
    options: &GreedyOptions,
    observer: &mut dyn IterationObserver,
    ws: &mut SolverWorkspace,
) -> Result<RecoveryResult, SolverError> {
    let started = Instant::now();
    validate(a, y, options)?;
    let n = a.ncols();
    let m = a.nrows();
    let step = match options.step {
        Some(mu) => {
            if !(mu > 0.0 && mu.is_finite()) {
                return Err(SolverError::BadParameter {
                    name: "step",
                    value: mu,
                });
            }
            mu
        }
        None => {
            let (norm, _) = hybridcs_linalg::operator_norm_est(
                n,
                m,
                |x, out| a.matvec_into(x, out),
                |v, out| a.matvec_transpose_into(v, out),
                hybridcs_linalg::PowerIterationOptions::default(),
            );
            1.0 / (norm * norm).max(1e-12)
        }
    };

    let s = options.max_sparsity;
    let mut alpha = ws.acquire(n);
    let mut ax = ws.acquire(m);
    let mut residual = ws.acquire(m);
    let mut grad = ws.acquire(n);
    let mut next = ws.acquire(n);
    let mut thresholded = ws.acquire(n);
    let mut keep = ws.acquire_indices(n);
    let mut iterations = 0;
    let mut converged = false;
    let mut stop = StopReason::MaxIterations;

    for iter in 1..=options.max_iterations {
        iterations = iter;
        a.matvec_into(&alpha, &mut ax);
        for (r, (&yi, &axi)) in residual.iter_mut().zip(y.iter().zip(&ax)) {
            *r = yi - axi;
        }
        if vector::norm2(&residual) <= options.residual_tolerance {
            converged = true;
            stop = StopReason::Converged;
            break;
        }
        a.matvec_transpose_into(&residual, &mut grad);
        next.copy_from_slice(&alpha);
        vector::axpy(step, &grad, &mut next);
        // Hard threshold to the s largest entries.
        vector::top_k_abs_indices_into(&next, s, &mut keep);
        thresholded.fill(0.0);
        for &i in &keep {
            thresholded[i] = next[i];
        }
        let change = vector::dist2(&thresholded, &alpha);
        std::mem::swap(&mut alpha, &mut thresholded);
        if observer.active() {
            // One extra matvec for the residual at the new iterate; skipped
            // entirely on the no-op path.
            a.matvec_into(&alpha, &mut ax);
            for (r, (&yi, &axi)) in residual.iter_mut().zip(y.iter().zip(&ax)) {
                *r = yi - axi;
            }
            observer.on_iteration(&IterationEvent {
                iteration: iter,
                objective: vector::norm1(&alpha),
                residual: vector::norm2(&residual),
                step_size: Some(step),
            });
        }
        if observer.should_abort() {
            stop = StopReason::Aborted;
            break;
        }
        if change <= 1e-10 * vector::norm2(&alpha).max(1.0) {
            converged = true;
            stop = StopReason::Stagnated;
            break;
        }
    }

    a.matvec_into(&alpha, &mut ax);
    for (r, (&yi, &axi)) in residual.iter_mut().zip(y.iter().zip(&ax)) {
        *r = yi - axi;
    }
    let res_norm = vector::norm2(&residual);
    let objective = vector::norm1(&alpha);
    for buf in [ax, residual, grad, next, thresholded] {
        ws.release(buf);
    }
    ws.release_indices(keep);
    observer.on_complete(&ConvergenceTrace {
        solver: "iht",
        iterations,
        stop_reason: stop,
        wall_time: started.elapsed(),
        converged,
        final_objective: objective,
        final_residual: res_norm,
    });
    Ok(RecoveryResult {
        objective,
        residual: res_norm,
        signal: alpha,
        iterations,
        converged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic Gaussian-ish matrix with normalized columns
    /// (splitmix64 for well-mixed, incoherent columns).
    fn dictionary(m: usize, n: usize, seed: u64) -> Matrix {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            ((z >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        let mut mat = Matrix::from_fn(m, n, |_, _| next());
        for j in 0..n {
            let col = mat.col(j);
            let norm = vector::norm2(&col);
            for i in 0..m {
                mat.set(i, j, mat.get(i, j) / norm);
            }
        }
        mat
    }

    fn sparse_truth(n: usize, support: &[usize], values: &[f64]) -> Vec<f64> {
        let mut x = vec![0.0; n];
        for (&i, &v) in support.iter().zip(values) {
            x[i] = v;
        }
        x
    }

    #[test]
    fn omp_exact_recovery_of_sparse_vector() {
        let a = dictionary(40, 128, 1);
        let truth = sparse_truth(128, &[5, 60, 100], &[2.0, -1.5, 0.8]);
        let y = a.matvec(&truth);
        let result = solve_omp(
            &a,
            &y,
            &GreedyOptions {
                max_sparsity: 3,
                ..GreedyOptions::default()
            },
        )
        .unwrap();
        for (got, want) in result.signal.iter().zip(&truth) {
            assert!((got - want).abs() < 1e-8, "{got} vs {want}");
        }
        assert!(result.converged);
        assert!(result.residual < 1e-8);
    }

    #[test]
    fn cosamp_exact_recovery_of_sparse_vector() {
        let a = dictionary(64, 128, 2);
        let truth = sparse_truth(128, &[3, 77, 111, 64], &[1.0, 2.0, -1.0, 0.5]);
        let y = a.matvec(&truth);
        let result = solve_cosamp(
            &a,
            &y,
            &GreedyOptions {
                max_sparsity: 4,
                ..GreedyOptions::default()
            },
        )
        .unwrap();
        for (got, want) in result.signal.iter().zip(&truth) {
            assert!((got - want).abs() < 1e-6, "{got} vs {want}");
        }
    }

    #[test]
    fn iht_recovers_well_conditioned_sparse_vector() {
        let a = dictionary(64, 128, 3);
        let truth = sparse_truth(128, &[10, 90], &[3.0, -2.0]);
        let y = a.matvec(&truth);
        let result = solve_iht(
            &a,
            &y,
            &GreedyOptions {
                max_sparsity: 2,
                max_iterations: 2000,
                ..GreedyOptions::default()
            },
        )
        .unwrap();
        let err = vector::dist2(&result.signal, &truth);
        assert!(err < 0.05 * vector::norm2(&truth), "err {err}");
    }

    #[test]
    fn iht_workspace_path_bit_identical_and_pool_reused() {
        let a = dictionary(64, 128, 3);
        let truth = sparse_truth(128, &[10, 90], &[3.0, -2.0]);
        let y = a.matvec(&truth);
        let opts = GreedyOptions {
            max_sparsity: 2,
            max_iterations: 500,
            ..GreedyOptions::default()
        };
        let plain = solve_iht(&a, &y, &opts).unwrap();
        let mut ws = SolverWorkspace::new();
        for _ in 0..2 {
            let pooled = solve_iht_workspace(&a, &y, &opts, &mut NoopObserver, &mut ws).unwrap();
            assert_eq!(pooled.iterations, plain.iterations);
            assert_eq!(pooled.residual.to_bits(), plain.residual.to_bits());
            for (got, want) in pooled.signal.iter().zip(&plain.signal) {
                assert_eq!(got.to_bits(), want.to_bits());
            }
            ws.release(pooled.signal);
        }
        assert!(ws.pooled() > 0, "buffers should return to the pool");
    }

    #[test]
    fn omp_respects_sparsity_cap() {
        let a = dictionary(30, 100, 4);
        let truth = sparse_truth(100, &[1, 2, 3, 4, 5, 6], &[1.0; 6]);
        let y = a.matvec(&truth);
        let result = solve_omp(
            &a,
            &y,
            &GreedyOptions {
                max_sparsity: 2,
                ..GreedyOptions::default()
            },
        )
        .unwrap();
        let nonzeros = result.signal.iter().filter(|v| **v != 0.0).count();
        assert!(nonzeros <= 2);
    }

    #[test]
    fn noisy_measurements_leave_residual() {
        let a = dictionary(40, 128, 5);
        let truth = sparse_truth(128, &[7, 70], &[1.0, -1.0]);
        let mut y = a.matvec(&truth);
        for (i, v) in y.iter_mut().enumerate() {
            *v += 0.01 * ((i * 37 % 11) as f64 - 5.0) / 5.0;
        }
        let result = solve_omp(
            &a,
            &y,
            &GreedyOptions {
                max_sparsity: 2,
                residual_tolerance: 1e-9,
                ..GreedyOptions::default()
            },
        )
        .unwrap();
        assert!(result.residual > 1e-4);
        assert!(result.residual < 0.2);
    }

    #[test]
    fn zero_measurements_give_zero_solution() {
        let a = dictionary(20, 50, 6);
        let y = vec![0.0; 20];
        for solve in [solve_omp, solve_cosamp, solve_iht] {
            let result = solve(&a, &y, &GreedyOptions::default()).unwrap();
            assert!(vector::norm2(&result.signal) < 1e-9);
        }
    }

    #[test]
    fn validation_errors() {
        let a = dictionary(20, 50, 7);
        let y_bad = vec![0.0; 10];
        assert!(solve_omp(&a, &y_bad, &GreedyOptions::default()).is_err());
        let y = vec![0.0; 20];
        assert!(solve_omp(
            &a,
            &y,
            &GreedyOptions {
                max_sparsity: 0,
                ..GreedyOptions::default()
            }
        )
        .is_err());
        assert!(solve_iht(
            &a,
            &y,
            &GreedyOptions {
                step: Some(-1.0),
                ..GreedyOptions::default()
            }
        )
        .is_err());
        assert!(solve_cosamp(
            &a,
            &y,
            &GreedyOptions {
                max_iterations: 0,
                ..GreedyOptions::default()
            }
        )
        .is_err());
    }

    #[test]
    fn omp_deterministic() {
        let a = dictionary(40, 128, 8);
        let truth = sparse_truth(128, &[5, 60, 100], &[2.0, -1.5, 0.8]);
        let y = a.matvec(&truth);
        let opts = GreedyOptions {
            max_sparsity: 3,
            ..GreedyOptions::default()
        };
        let r1 = solve_omp(&a, &y, &opts).unwrap();
        let r2 = solve_omp(&a, &y, &opts).unwrap();
        assert_eq!(r1.signal, r2.signal);
    }
}
