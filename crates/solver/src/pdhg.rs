use crate::prox;
use crate::{BpdnProblem, RecoveryResult, SolverError, SolverWorkspace};
use hybridcs_linalg::vector;
use hybridcs_obs::{ConvergenceTrace, IterationEvent, IterationObserver, NoopObserver, StopReason};
use std::time::Instant;

/// Options for [`solve_pdhg`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PdhgOptions {
    /// Iteration budget.
    pub max_iterations: usize,
    /// Relative-change stopping tolerance, evaluated every
    /// `check_interval` iterations.
    pub tolerance: f64,
    /// How often (in iterations) convergence is checked.
    pub check_interval: usize,
    /// Primal/dual step balance: `τ` is multiplied and the dual step
    /// divided by this factor. 1.0 is the symmetric default.
    pub step_ratio: f64,
}

impl Default for PdhgOptions {
    fn default() -> Self {
        PdhgOptions {
            max_iterations: 3000,
            tolerance: 1e-5,
            check_interval: 10,
            step_ratio: 1.0,
        }
    }
}

/// Solves the (optionally box-constrained) BPDN program of Eq. (1) with the
/// Chambolle–Pock primal–dual algorithm.
///
/// The splitting stacks `K = [Φ; I]` (or just `Φ` without a box) and puts
/// the two indicator functions on the dual side:
///
/// * `G₁` — indicator of the ℓ₂ ball `‖· − y‖ ≤ σ` (prox = ball
///   projection),
/// * `G₂` — indicator of the box `[lo, hi]` (prox = clamp),
///
/// while the primal function `F(x) = ‖Ψᵀx‖₁` keeps its cheap orthonormal
/// prox `Ψ·soft(Ψᵀ·, τ)`. Step sizes obey `τς‖K‖² < 1` with `‖K‖` from
/// power iteration.
///
/// When a box is supplied, the returned signal is clamped into it as a
/// final step, so the hybrid decoder's bound guarantee holds *exactly* in
/// the output (the true signal lies in the box, so clamping can only help).
///
/// # Errors
///
/// Returns a [`SolverError`] if the problem fails validation or an option
/// is out of range. Exhausting the iteration budget is reported via
/// `converged = false` in the result, not as an error.
///
/// # Example
///
/// See the [crate-level example](crate).
pub fn solve_pdhg(
    problem: &BpdnProblem<'_>,
    options: &PdhgOptions,
) -> Result<RecoveryResult, SolverError> {
    solve_pdhg_observed(problem, options, &mut NoopObserver)
}

/// [`solve_pdhg`] with an [`IterationObserver`] hook: when the observer is
/// [active](IterationObserver::active), every iteration emits an
/// [`IterationEvent`] with the ℓ₁ objective `‖Ψᵀx‖₁` (free — the
/// soft-thresholded coefficients are already in hand) and the fidelity
/// residual `‖Φx − y‖₂` (one extra `Φ`-application, skipped on the no-op
/// path), and completion emits a [`ConvergenceTrace`].
///
/// The observer never changes the arithmetic: results are bit-identical to
/// [`solve_pdhg`].
///
/// # Errors
///
/// Same conditions as [`solve_pdhg`].
pub fn solve_pdhg_observed(
    problem: &BpdnProblem<'_>,
    options: &PdhgOptions,
    observer: &mut dyn IterationObserver,
) -> Result<RecoveryResult, SolverError> {
    solve_pdhg_workspace(problem, options, observer, &mut SolverWorkspace::new())
}

/// [`solve_pdhg_observed`] with every iteration buffer drawn from a borrowed
/// [`SolverWorkspace`]: when the workspace is reused across windows the inner
/// loop performs zero heap allocations after warm-up.
///
/// The arithmetic — and therefore the result bits — is identical to
/// [`solve_pdhg`]; only buffer management differs. The returned signal is
/// itself a workspace buffer: callers on the hot path can hand it back via
/// [`SolverWorkspace::release`] once consumed to keep the pool at steady
/// state.
///
/// # Errors
///
/// Same conditions as [`solve_pdhg`].
pub fn solve_pdhg_workspace(
    problem: &BpdnProblem<'_>,
    options: &PdhgOptions,
    observer: &mut dyn IterationObserver,
    ws: &mut SolverWorkspace,
) -> Result<RecoveryResult, SolverError> {
    let started = Instant::now();
    problem.validate()?;
    validate_options(options)?;

    let n = problem.signal_len();
    let m = problem.measurement_len();
    let a = problem.sensing;
    let dwt = problem.dwt;
    let y = problem.measurements;
    let has_box = problem.box_bounds.is_some();

    // Step sizes from the stacked operator norm ‖K‖² = ‖Φ‖² (+ 1 with box).
    let norm_a = a.norm_est();
    let norm_k = (norm_a * norm_a + if has_box { 1.0 } else { 0.0 })
        .sqrt()
        .max(1e-12);
    let gamma = 0.99 / norm_k;
    let tau = gamma * options.step_ratio;
    let dual_step = gamma / options.step_ratio;

    let mut x = ws.acquire(n);
    problem.initial_point_into(&mut x);
    let mut x_bar = ws.acquire(n);
    x_bar.copy_from_slice(&x);
    let mut z1 = ws.acquire(m);
    let mut z2 = ws.acquire(n); // unused without a box
    let mut ax = ws.acquire(m);
    let mut at_z1 = ws.acquire(n);
    let mut snapshot = ws.acquire(n);
    snapshot.copy_from_slice(&x);
    let mut ball_point = ws.acquire(m);
    let mut box_point = ws.acquire(n);
    let mut w = ws.acquire(n);
    let mut coeffs = ws.acquire(n);
    let mut x_new = ws.acquire(n);
    let mut dwt_scratch = ws.acquire(hybridcs_dsp::Dwt::scratch_len(n));
    let mut op_scratch = ws.acquire(a.scratch_len());

    let mut iterations = 0;
    let mut converged = false;
    let mut aborted = false;

    for iter in 1..=options.max_iterations {
        iterations = iter;

        // Dual ascent on the fidelity ball: z1 ← v − ς·Π_ball(v/ς).
        a.apply_into(&x_bar, &mut ax, &mut op_scratch);
        for (z, &axi) in z1.iter_mut().zip(&ax) {
            *z += dual_step * axi;
        }
        for (b, &z) in ball_point.iter_mut().zip(&z1) {
            *b = z / dual_step;
        }
        prox::project_l2_ball(&mut ball_point, y, problem.sigma);
        for (z, &p) in z1.iter_mut().zip(&ball_point) {
            *z -= dual_step * p;
        }

        // Dual ascent on the box: z2 ← v − ς·Π_box(v/ς).
        if let Some((lo, hi)) = problem.box_bounds {
            for (z, &xb) in z2.iter_mut().zip(&x_bar) {
                *z += dual_step * xb;
            }
            for (b, &z) in box_point.iter_mut().zip(&z2) {
                *b = z / dual_step;
            }
            prox::project_box(&mut box_point, lo, hi);
            for (z, &p) in z2.iter_mut().zip(&box_point) {
                *z -= dual_step * p;
            }
        }

        // Primal descent with the ℓ₁-in-Ψ prox.
        a.apply_adjoint_into(&z1, &mut at_z1, &mut op_scratch);
        w.copy_from_slice(&x);
        for i in 0..n {
            let grad = at_z1[i] + if has_box { z2[i] } else { 0.0 };
            w[i] -= tau * grad;
        }
        dwt.forward_into(&w, &mut coeffs, &mut dwt_scratch)
            .expect("length validated");
        match problem.coefficient_weights {
            Some(weights) => prox::soft_threshold_weighted(&mut coeffs, tau, weights),
            None => prox::soft_threshold_slice(&mut coeffs, tau),
        }
        dwt.inverse_into(&coeffs, &mut x_new, &mut dwt_scratch)
            .expect("length validated");

        // Over-relaxation (θ = 1) and shift.
        for i in 0..n {
            x_bar[i] = 2.0 * x_new[i] - x[i];
        }
        std::mem::swap(&mut x, &mut x_new);

        if observer.active() {
            // `ax` is recomputed from `x_bar` at the top of the loop, so it
            // is safe to reuse here for the fidelity residual.
            a.apply_into(&x, &mut ax, &mut op_scratch);
            observer.on_iteration(&IterationEvent {
                iteration: iter,
                objective: vector::norm1(&coeffs),
                residual: vector::dist2(&ax, y),
                step_size: Some(tau),
            });
        }

        if observer.should_abort() {
            aborted = true;
            break;
        }

        if iter % options.check_interval == 0 {
            let change = vector::dist2(&x, &snapshot);
            let scale = vector::norm2(&x).max(1e-12);
            snapshot.copy_from_slice(&x);
            if change <= options.tolerance * scale {
                converged = true;
                break;
            }
        }
    }

    // Enforce the bound exactly on the way out.
    if let Some((lo, hi)) = problem.box_bounds {
        prox::project_box(&mut x, lo, hi);
    }

    a.apply_into(&x, &mut ax, &mut op_scratch);
    let residual = vector::dist2(&ax, y);
    dwt.forward_into(&x, &mut coeffs, &mut dwt_scratch)
        .expect("length validated");
    let objective = vector::norm1(&coeffs);

    ws.release(x_bar);
    ws.release(z1);
    ws.release(z2);
    ws.release(ax);
    ws.release(at_z1);
    ws.release(snapshot);
    ws.release(ball_point);
    ws.release(box_point);
    ws.release(w);
    ws.release(coeffs);
    ws.release(x_new);
    ws.release(dwt_scratch);
    ws.release(op_scratch);

    observer.on_complete(&ConvergenceTrace {
        solver: "pdhg",
        iterations,
        stop_reason: if aborted {
            StopReason::Aborted
        } else if converged {
            StopReason::Converged
        } else {
            StopReason::MaxIterations
        },
        wall_time: started.elapsed(),
        converged,
        final_objective: objective,
        final_residual: residual,
    });

    Ok(RecoveryResult {
        signal: x,
        iterations,
        converged,
        residual,
        objective,
    })
}

pub(crate) fn validate_options(options: &PdhgOptions) -> Result<(), SolverError> {
    if options.max_iterations == 0 {
        return Err(SolverError::BadParameter {
            name: "max_iterations",
            value: 0.0,
        });
    }
    if !(options.tolerance > 0.0 && options.tolerance.is_finite()) {
        return Err(SolverError::BadParameter {
            name: "tolerance",
            value: options.tolerance,
        });
    }
    if options.check_interval == 0 {
        return Err(SolverError::BadParameter {
            name: "check_interval",
            value: 0.0,
        });
    }
    if !(options.step_ratio > 0.0 && options.step_ratio.is_finite()) {
        return Err(SolverError::BadParameter {
            name: "step_ratio",
            value: options.step_ratio,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DenseOperator;
    use hybridcs_dsp::{Dwt, Wavelet};
    use hybridcs_linalg::Matrix;

    /// Deterministic ±1/√n pseudo-Bernoulli sensing matrix.
    fn bernoulli_like(m: usize, n: usize, seed: u64) -> Matrix {
        let mut state = seed;
        Matrix::from_fn(m, n, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let bit = (state >> 62) & 1;
            if bit == 1 {
                1.0 / (n as f64).sqrt()
            } else {
                -1.0 / (n as f64).sqrt()
            }
        })
    }

    fn smooth_signal(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let t = i as f64 / n as f64;
                (2.0 * std::f64::consts::PI * 2.0 * t).sin()
                    + 0.4 * (2.0 * std::f64::consts::PI * 5.0 * t).cos()
            })
            .collect()
    }

    fn snr_db(truth: &[f64], estimate: &[f64]) -> f64 {
        let err = vector::dist2(truth, estimate);
        let sig = vector::norm2(truth);
        20.0 * (sig / err.max(1e-30)).log10()
    }

    #[test]
    fn identity_sensing_recovers_signal() {
        let n = 64;
        let x_true = smooth_signal(n);
        let op = DenseOperator::new(Matrix::identity(n));
        let dwt = Dwt::new(Wavelet::Db4, 2).unwrap();
        let problem = BpdnProblem {
            sensing: &op,
            dwt: &dwt,
            measurements: &x_true,
            sigma: 0.05,
            box_bounds: None,
            coefficient_weights: None,
        };
        let result = solve_pdhg(&problem, &PdhgOptions::default()).unwrap();
        assert!(snr_db(&x_true, &result.signal) > 30.0);
        // First-order feasibility: allow a generous slack over sigma.
        assert!(
            result.is_feasible(0.05, 1.0),
            "residual {}",
            result.residual
        );
    }

    #[test]
    fn undersampled_recovery_of_compressible_signal() {
        let n = 128;
        let m = 64;
        let x_true = smooth_signal(n);
        let phi = bernoulli_like(m, n, 1);
        let y = phi.matvec(&x_true);
        let op = DenseOperator::new(phi);
        let dwt = Dwt::new(Wavelet::Db4, 3).unwrap();
        let problem = BpdnProblem {
            sensing: &op,
            dwt: &dwt,
            measurements: &y,
            sigma: 1e-3,
            box_bounds: None,
            coefficient_weights: None,
        };
        let result = solve_pdhg(&problem, &PdhgOptions::default()).unwrap();
        let snr = snr_db(&x_true, &result.signal);
        assert!(snr > 15.0, "SNR {snr} dB");
    }

    #[test]
    fn box_constraint_rescues_severe_undersampling() {
        let n = 128;
        let m = 8; // hopeless for plain CS
        let x_true = smooth_signal(n);
        let phi = bernoulli_like(m, n, 2);
        let y = phi.matvec(&x_true);
        let op = DenseOperator::new(phi);
        let dwt = Dwt::new(Wavelet::Db4, 3).unwrap();

        // 4-bit-equivalent box around the truth.
        let d = 0.25;
        let lo: Vec<f64> = x_true.iter().map(|v| (v / d).floor() * d).collect();
        let hi: Vec<f64> = lo.iter().map(|v| v + d).collect();

        let plain = solve_pdhg(
            &BpdnProblem {
                sensing: &op,
                dwt: &dwt,
                measurements: &y,
                sigma: 1e-3,
                box_bounds: None,
                coefficient_weights: None,
            },
            &PdhgOptions::default(),
        )
        .unwrap();
        let hybrid = solve_pdhg(
            &BpdnProblem {
                sensing: &op,
                dwt: &dwt,
                measurements: &y,
                sigma: 1e-3,
                box_bounds: Some((&lo, &hi)),
                coefficient_weights: None,
            },
            &PdhgOptions::default(),
        )
        .unwrap();

        let snr_plain = snr_db(&x_true, &plain.signal);
        let snr_hybrid = snr_db(&x_true, &hybrid.signal);
        assert!(
            snr_hybrid > snr_plain + 6.0,
            "hybrid {snr_hybrid} dB vs plain {snr_plain} dB"
        );
        // The output must satisfy the bound exactly.
        for ((v, l), h) in hybrid.signal.iter().zip(&lo).zip(&hi) {
            assert!(*l <= *v && *v <= *h);
        }
    }

    #[test]
    fn result_reports_objective_and_residual() {
        let n = 64;
        let x_true = smooth_signal(n);
        let op = DenseOperator::new(Matrix::identity(n));
        let dwt = Dwt::new(Wavelet::Db4, 2).unwrap();
        let problem = BpdnProblem {
            sensing: &op,
            dwt: &dwt,
            measurements: &x_true,
            sigma: 1e-3,
            box_bounds: None,
            coefficient_weights: None,
        };
        let result = solve_pdhg(&problem, &PdhgOptions::default()).unwrap();
        assert!(result.objective > 0.0);
        assert!(result.residual >= 0.0);
        assert!(result.iterations > 0);
    }

    #[test]
    fn tiny_budget_reports_not_converged() {
        let n = 64;
        let x_true = smooth_signal(n);
        let phi = bernoulli_like(32, n, 3);
        let y = phi.matvec(&x_true);
        let op = DenseOperator::new(phi);
        let dwt = Dwt::new(Wavelet::Db4, 2).unwrap();
        let problem = BpdnProblem {
            sensing: &op,
            dwt: &dwt,
            measurements: &y,
            sigma: 1e-3,
            box_bounds: None,
            coefficient_weights: None,
        };
        let result = solve_pdhg(
            &problem,
            &PdhgOptions {
                max_iterations: 3,
                tolerance: 1e-12,
                ..PdhgOptions::default()
            },
        )
        .unwrap();
        assert!(!result.converged);
        assert_eq!(result.iterations, 3);
    }

    #[test]
    fn rejects_bad_options() {
        let n = 64;
        let op = DenseOperator::new(Matrix::identity(n));
        let dwt = Dwt::new(Wavelet::Db4, 2).unwrap();
        let y = vec![0.0; n];
        let problem = BpdnProblem {
            sensing: &op,
            dwt: &dwt,
            measurements: &y,
            sigma: 0.1,
            box_bounds: None,
            coefficient_weights: None,
        };
        for bad in [
            PdhgOptions {
                max_iterations: 0,
                ..PdhgOptions::default()
            },
            PdhgOptions {
                tolerance: -1.0,
                ..PdhgOptions::default()
            },
            PdhgOptions {
                check_interval: 0,
                ..PdhgOptions::default()
            },
            PdhgOptions {
                step_ratio: 0.0,
                ..PdhgOptions::default()
            },
        ] {
            assert!(solve_pdhg(&problem, &bad).is_err());
        }
    }

    #[test]
    fn solution_is_sparser_than_backprojection() {
        // The ℓ₁ objective should beat the adjoint initial point.
        let n = 128;
        let m = 48;
        let x_true = smooth_signal(n);
        let phi = bernoulli_like(m, n, 5);
        let y = phi.matvec(&x_true);
        let op = DenseOperator::new(phi);
        let dwt = Dwt::new(Wavelet::Db4, 3).unwrap();
        let problem = BpdnProblem {
            sensing: &op,
            dwt: &dwt,
            measurements: &y,
            sigma: 1e-3,
            box_bounds: None,
            coefficient_weights: None,
        };
        let x0 = problem.initial_point();
        let obj0 = vector::norm1(&dwt.forward(&x0).unwrap());
        let result = solve_pdhg(&problem, &PdhgOptions::default()).unwrap();
        assert!(result.objective < obj0, "{} vs {}", result.objective, obj0);
    }
}
