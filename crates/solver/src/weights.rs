use crate::SolverError;
use hybridcs_dsp::Dwt;

/// Builds scale-dependent ℓ₁ weights for a wavelet coefficient vector —
/// the standard "model-based" prior for ECG: approximation coefficients
/// carry the baseline and are barely penalized, while detail bands are
/// penalized progressively harder toward fine scales (where clean ECG has
/// little energy but noise lives).
///
/// * `approx_weight` — weight of the approximation band (e.g. `0.1`).
/// * `detail_growth` — multiplicative growth per finer detail level; the
///   coarsest detail band gets weight 1, the finest
///   `detail_growth^(levels−1)`.
///
/// # Errors
///
/// Returns [`SolverError`] when the transform rejects `len`, or a
/// parameter is negative/non-finite.
///
/// # Example
///
/// ```
/// use hybridcs_dsp::{Dwt, Wavelet};
/// use hybridcs_solver::band_weights;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let dwt = Dwt::new(Wavelet::Db4, 3)?;
/// let w = band_weights(&dwt, 64, 0.1, 1.5)?;
/// assert_eq!(w.len(), 64);
/// assert!(w[0] < w[63], "approximation weighted less than finest detail");
/// # Ok(())
/// # }
/// ```
pub fn band_weights(
    dwt: &Dwt,
    len: usize,
    approx_weight: f64,
    detail_growth: f64,
) -> Result<Vec<f64>, SolverError> {
    if !(approx_weight >= 0.0 && approx_weight.is_finite()) {
        return Err(SolverError::BadParameter {
            name: "approx_weight",
            value: approx_weight,
        });
    }
    if !(detail_growth > 0.0 && detail_growth.is_finite()) {
        return Err(SolverError::BadParameter {
            name: "detail_growth",
            value: detail_growth,
        });
    }
    let layout = dwt.layout(len)?;
    let mut weights = vec![0.0; len];
    for i in layout.approx_band() {
        weights[i] = approx_weight;
    }
    for level in 1..=layout.levels {
        // Coarsest detail level (== levels) gets 1.0; finer levels grow.
        let w = detail_growth.powi((layout.levels - level) as i32);
        for i in layout.detail_band(level) {
            weights[i] = w;
        }
    }
    Ok(weights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybridcs_dsp::Wavelet;

    #[test]
    fn structure_matches_bands() {
        let dwt = Dwt::new(Wavelet::Db4, 3).unwrap();
        let w = band_weights(&dwt, 64, 0.2, 2.0).unwrap();
        let layout = dwt.layout(64).unwrap();
        for i in layout.approx_band() {
            assert_eq!(w[i], 0.2);
        }
        for i in layout.detail_band(3) {
            assert_eq!(w[i], 1.0);
        }
        for i in layout.detail_band(2) {
            assert_eq!(w[i], 2.0);
        }
        for i in layout.detail_band(1) {
            assert_eq!(w[i], 4.0);
        }
    }

    #[test]
    fn rejects_bad_parameters() {
        let dwt = Dwt::new(Wavelet::Db4, 2).unwrap();
        assert!(band_weights(&dwt, 64, -1.0, 1.5).is_err());
        assert!(band_weights(&dwt, 64, 0.1, 0.0).is_err());
        assert!(band_weights(&dwt, 102, 0.1, 1.5).is_err()); // bad length (not /4)
    }

    #[test]
    fn flat_growth_gives_flat_details() {
        let dwt = Dwt::new(Wavelet::Haar, 2).unwrap();
        let w = band_weights(&dwt, 16, 1.0, 1.0).unwrap();
        assert!(w.iter().all(|&v| (v - 1.0).abs() < 1e-12));
    }
}
