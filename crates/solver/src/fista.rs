use crate::prox;
use crate::{BpdnProblem, RecoveryResult, SolverError, SolverWorkspace};
use hybridcs_linalg::vector;
use hybridcs_obs::{ConvergenceTrace, IterationEvent, IterationObserver, NoopObserver, StopReason};
use std::time::Instant;

/// Options for [`solve_fista`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FistaOptions {
    /// Iteration budget.
    pub max_iterations: usize,
    /// Relative-change stopping tolerance on the coefficient iterate.
    pub tolerance: f64,
    /// ℓ₁ regularization weight λ. `None` uses the data-driven scale
    /// `λ = 0.1·‖Aᵀy‖∞` (floored at `1e-12`): `‖Aᵀy‖∞` is the smallest λ
    /// for which the LASSO solution is exactly zero, so a fixed fraction of
    /// it tracks the measurement energy across windows.
    pub lambda: Option<f64>,
}

impl Default for FistaOptions {
    fn default() -> Self {
        FistaOptions {
            max_iterations: 1000,
            tolerance: 1e-6,
            lambda: None,
        }
    }
}

/// Solves the **unconstrained LASSO relaxation** of the recovery program
/// with FISTA (accelerated proximal gradient):
///
/// ```text
/// min_α ½‖ΦΨα − y‖₂² + λ‖α‖₁
/// ```
///
/// This is the classic digital-CS baseline decoder; the box constraint is
/// *not* representable here, which is exactly why it appears in the solver
/// ablation as a reference point. The result is returned in the signal
/// domain (`x = Ψα`).
///
/// # Errors
///
/// Returns [`SolverError`] on validation failure or non-positive `lambda` /
/// options out of range.
pub fn solve_fista(
    problem: &BpdnProblem<'_>,
    options: &FistaOptions,
) -> Result<RecoveryResult, SolverError> {
    solve_fista_observed(problem, options, &mut NoopObserver)
}

/// [`solve_fista`] with an [`IterationObserver`] hook: when the observer is
/// [active](IterationObserver::active), every iteration emits an
/// [`IterationEvent`] carrying the LASSO objective
/// `½‖Aα − y‖² + λ‖α‖₁` and the fidelity residual at the new iterate
/// (one extra `A`-application per iteration — skipped entirely for a
/// no-op observer), and completion emits a [`ConvergenceTrace`].
///
/// The observer never changes the arithmetic: results are bit-identical to
/// [`solve_fista`].
///
/// # Errors
///
/// Same conditions as [`solve_fista`].
pub fn solve_fista_observed(
    problem: &BpdnProblem<'_>,
    options: &FistaOptions,
    observer: &mut dyn IterationObserver,
) -> Result<RecoveryResult, SolverError> {
    solve_fista_workspace(problem, options, observer, &mut SolverWorkspace::new())
}

/// [`solve_fista_observed`] with every per-iteration buffer drawn from a
/// caller-owned [`SolverWorkspace`]: once the workspace has been warmed by
/// one solve of each size, the inner loop performs **zero heap allocations**.
/// Results are bit-identical to [`solve_fista`].
///
/// The returned `signal` is a workspace buffer; pass it back via
/// [`SolverWorkspace::release`] to keep the pool in steady state.
///
/// # Errors
///
/// Same conditions as [`solve_fista`].
pub fn solve_fista_workspace(
    problem: &BpdnProblem<'_>,
    options: &FistaOptions,
    observer: &mut dyn IterationObserver,
    ws: &mut SolverWorkspace,
) -> Result<RecoveryResult, SolverError> {
    let started = Instant::now();
    problem.validate()?;
    if options.max_iterations == 0 {
        return Err(SolverError::BadParameter {
            name: "max_iterations",
            value: 0.0,
        });
    }
    if !(options.tolerance > 0.0 && options.tolerance.is_finite()) {
        return Err(SolverError::BadParameter {
            name: "tolerance",
            value: options.tolerance,
        });
    }

    let n = problem.signal_len();
    let m = problem.measurement_len();
    let a = problem.sensing;
    let dwt = problem.dwt;
    let y = problem.measurements;

    // Lipschitz constant of the gradient: L = ‖ΦΨ‖² = ‖Φ‖² (Ψ orthonormal).
    let norm_a = a.norm_est().max(1e-12);
    let l = norm_a * norm_a;
    let step = 1.0 / (1.01 * l);

    // Hot-path buffers; `sig_tmp` carries the signal-domain intermediate of
    // both composed applications A = Φ∘Ψ and Aᵀ = Ψᵀ∘Φᵀ (uses never overlap).
    let mut sig_tmp = ws.acquire(n);
    let mut dwt_scratch = ws.acquire(hybridcs_dsp::Dwt::scratch_len(n));
    let mut op_scratch = ws.acquire(a.scratch_len());
    let mut aty = ws.acquire(n);
    let mut grad = ws.acquire(n);
    let mut alpha = ws.acquire(n);
    let mut momentum = ws.acquire(n);
    let mut alpha_new = ws.acquire(n);
    let mut res = ws.acquire(m);

    a.apply_adjoint_into(y, &mut sig_tmp, &mut op_scratch);
    dwt.forward_into(&sig_tmp, &mut aty, &mut dwt_scratch)
        .expect("length validated");
    let lambda = match options.lambda {
        Some(l) => {
            if !(l > 0.0 && l.is_finite()) {
                for buf in [
                    sig_tmp,
                    dwt_scratch,
                    op_scratch,
                    aty,
                    grad,
                    alpha,
                    momentum,
                    alpha_new,
                    res,
                ] {
                    ws.release(buf);
                }
                return Err(SolverError::BadParameter {
                    name: "lambda",
                    value: l,
                });
            }
            l
        }
        None => 0.1 * vector::norm_inf(&aty).max(1e-12),
    };

    let mut t = 1.0_f64;
    let mut iterations = 0;
    let mut converged = false;
    let mut aborted = false;

    for iter in 1..=options.max_iterations {
        iterations = iter;
        // Gradient step at the momentum point: res = A·momentum − y.
        dwt.inverse_into(&momentum, &mut sig_tmp, &mut dwt_scratch)
            .expect("length validated");
        a.apply_into(&sig_tmp, &mut res, &mut op_scratch);
        for (r, &yi) in res.iter_mut().zip(y) {
            *r -= yi;
        }
        a.apply_adjoint_into(&res, &mut sig_tmp, &mut op_scratch);
        dwt.forward_into(&sig_tmp, &mut grad, &mut dwt_scratch)
            .expect("length validated");
        alpha_new.copy_from_slice(&momentum);
        vector::axpy(-step, &grad, &mut alpha_new);
        match problem.coefficient_weights {
            Some(weights) => prox::soft_threshold_weighted(&mut alpha_new, step * lambda, weights),
            None => prox::soft_threshold_slice(&mut alpha_new, step * lambda),
        }

        // Nesterov momentum.
        let t_new = 0.5 * (1.0 + (1.0 + 4.0 * t * t).sqrt());
        let beta = (t - 1.0) / t_new;
        for i in 0..n {
            momentum[i] = alpha_new[i] + beta * (alpha_new[i] - alpha[i]);
        }
        let change = vector::dist2(&alpha_new, &alpha);
        let scale = vector::norm2(&alpha_new).max(1e-12);
        std::mem::swap(&mut alpha, &mut alpha_new);
        t = t_new;
        if observer.active() {
            // One extra A-application to report the objective at the new
            // iterate; skipped entirely on the no-op path.
            dwt.inverse_into(&alpha, &mut sig_tmp, &mut dwt_scratch)
                .expect("length validated");
            a.apply_into(&sig_tmp, &mut res, &mut op_scratch);
            for (r, &yi) in res.iter_mut().zip(y) {
                *r -= yi;
            }
            let fid = vector::norm2(&res);
            let l1 = match problem.coefficient_weights {
                Some(weights) => alpha
                    .iter()
                    .zip(weights)
                    .map(|(a, w)| w * a.abs())
                    .sum::<f64>(),
                None => vector::norm1(&alpha),
            };
            observer.on_iteration(&IterationEvent {
                iteration: iter,
                objective: 0.5 * fid * fid + lambda * l1,
                residual: fid,
                step_size: Some(step),
            });
        }
        if observer.should_abort() {
            aborted = true;
            break;
        }
        if change <= options.tolerance * scale {
            converged = true;
            break;
        }
    }

    let mut signal = ws.acquire(n);
    dwt.inverse_into(&alpha, &mut signal, &mut dwt_scratch)
        .expect("length validated");
    a.apply_into(&signal, &mut res, &mut op_scratch);
    let residual = vector::dist2(&res, y);
    let objective = vector::norm1(&alpha);
    for buf in [
        sig_tmp,
        dwt_scratch,
        op_scratch,
        aty,
        grad,
        alpha,
        momentum,
        alpha_new,
        res,
    ] {
        ws.release(buf);
    }
    observer.on_complete(&ConvergenceTrace {
        solver: "fista",
        iterations,
        stop_reason: if aborted {
            StopReason::Aborted
        } else if converged {
            StopReason::Converged
        } else {
            StopReason::MaxIterations
        },
        wall_time: started.elapsed(),
        converged,
        final_objective: objective,
        final_residual: residual,
    });
    Ok(RecoveryResult {
        residual,
        objective,
        signal,
        iterations,
        converged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DenseOperator;
    use hybridcs_dsp::{Dwt, Wavelet};
    use hybridcs_linalg::Matrix;

    fn bernoulli_like(m: usize, n: usize, seed: u64) -> Matrix {
        let mut state = seed;
        Matrix::from_fn(m, n, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if (state >> 62) & 1 == 1 {
                1.0 / (n as f64).sqrt()
            } else {
                -1.0 / (n as f64).sqrt()
            }
        })
    }

    fn smooth_signal(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let t = i as f64 / n as f64;
                (2.0 * std::f64::consts::PI * 2.0 * t).sin()
                    + 0.4 * (2.0 * std::f64::consts::PI * 5.0 * t).cos()
            })
            .collect()
    }

    fn snr_db(truth: &[f64], estimate: &[f64]) -> f64 {
        let err = vector::dist2(truth, estimate);
        20.0 * (vector::norm2(truth) / err.max(1e-30)).log10()
    }

    #[test]
    fn recovers_compressible_signal() {
        let n = 128;
        let m = 64;
        let x_true = smooth_signal(n);
        let phi = bernoulli_like(m, n, 21);
        let y = phi.matvec(&x_true);
        let op = DenseOperator::new(phi);
        let dwt = Dwt::new(Wavelet::Db4, 3).unwrap();
        let problem = BpdnProblem {
            sensing: &op,
            dwt: &dwt,
            measurements: &y,
            sigma: 1e-3,
            box_bounds: None,
            coefficient_weights: None,
        };
        let result = solve_fista(
            &problem,
            &FistaOptions {
                lambda: Some(0.003),
                max_iterations: 2000,
                ..FistaOptions::default()
            },
        )
        .unwrap();
        let snr = snr_db(&x_true, &result.signal);
        assert!(snr > 12.0, "SNR {snr} dB");
    }

    #[test]
    fn smaller_lambda_fits_measurements_tighter() {
        let n = 64;
        let m = 48;
        let x_true = smooth_signal(n);
        let phi = bernoulli_like(m, n, 23);
        let y = phi.matvec(&x_true);
        let op = DenseOperator::new(phi);
        let dwt = Dwt::new(Wavelet::Db4, 2).unwrap();
        let problem = BpdnProblem {
            sensing: &op,
            dwt: &dwt,
            measurements: &y,
            sigma: 1e-3,
            box_bounds: None,
            coefficient_weights: None,
        };
        let loose = solve_fista(
            &problem,
            &FistaOptions {
                lambda: Some(0.5),
                ..FistaOptions::default()
            },
        )
        .unwrap();
        let tight = solve_fista(
            &problem,
            &FistaOptions {
                lambda: Some(0.001),
                ..FistaOptions::default()
            },
        )
        .unwrap();
        assert!(tight.residual < loose.residual);
        assert!(tight.objective > loose.objective);
    }

    #[test]
    fn rejects_bad_lambda() {
        let n = 64;
        let op = DenseOperator::new(Matrix::identity(n));
        let dwt = Dwt::new(Wavelet::Db4, 2).unwrap();
        let y = vec![0.0; n];
        let problem = BpdnProblem {
            sensing: &op,
            dwt: &dwt,
            measurements: &y,
            sigma: 0.1,
            box_bounds: None,
            coefficient_weights: None,
        };
        assert!(solve_fista(
            &problem,
            &FistaOptions {
                lambda: Some(-1.0),
                ..FistaOptions::default()
            }
        )
        .is_err());
        assert!(solve_fista(
            &problem,
            &FistaOptions {
                max_iterations: 0,
                ..FistaOptions::default()
            }
        )
        .is_err());
    }

    #[test]
    fn workspace_path_bit_identical_and_pool_reused() {
        let n = 128;
        let m = 64;
        let x_true = smooth_signal(n);
        let phi = bernoulli_like(m, n, 29);
        let y = phi.matvec(&x_true);
        let op = DenseOperator::new(phi);
        let dwt = Dwt::new(Wavelet::Db4, 3).unwrap();
        let problem = BpdnProblem {
            sensing: &op,
            dwt: &dwt,
            measurements: &y,
            sigma: 1e-3,
            box_bounds: None,
            coefficient_weights: None,
        };
        let options = FistaOptions {
            max_iterations: 200,
            ..FistaOptions::default()
        };
        let plain = solve_fista(&problem, &options).unwrap();
        let mut ws = crate::SolverWorkspace::new();
        for _ in 0..2 {
            let pooled =
                solve_fista_workspace(&problem, &options, &mut NoopObserver, &mut ws).unwrap();
            assert_eq!(pooled.iterations, plain.iterations);
            assert_eq!(pooled.residual.to_bits(), plain.residual.to_bits());
            assert_eq!(pooled.objective.to_bits(), plain.objective.to_bits());
            for (a, b) in pooled.signal.iter().zip(&plain.signal) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            ws.release(pooled.signal);
        }
        assert!(ws.pooled() > 0, "buffers should return to the pool");
    }

    #[test]
    fn converges_on_identity() {
        let n = 64;
        let x_true = smooth_signal(n);
        let op = DenseOperator::new(Matrix::identity(n));
        let dwt = Dwt::new(Wavelet::Db4, 2).unwrap();
        let problem = BpdnProblem {
            sensing: &op,
            dwt: &dwt,
            measurements: &x_true,
            sigma: 1e-3,
            box_bounds: None,
            coefficient_weights: None,
        };
        let result = solve_fista(
            &problem,
            &FistaOptions {
                lambda: Some(1e-4),
                ..FistaOptions::default()
            },
        )
        .unwrap();
        assert!(result.converged);
        assert!(snr_db(&x_true, &result.signal) > 25.0);
    }
}
