use crate::{LinearOperator, SolverError};
use hybridcs_dsp::Dwt;

/// A box-constrained basis-pursuit-denoising instance — the paper's Eq. (1)
/// posed in the signal domain `x = Ψα`:
///
/// ```text
/// min ‖Ψᵀx‖₁   s.t.  ‖Φx − y‖₂ ≤ σ,   lo ≤ x ≤ hi (optional)
/// ```
///
/// With `box_bounds = None` this is plain BPDN — the "normal CS"
/// reconstruction the paper compares against.
pub struct BpdnProblem<'a> {
    /// The sensing operator `Φ: R^n → R^m`.
    pub sensing: &'a dyn LinearOperator,
    /// The sparsifying transform (orthonormal DWT).
    pub dwt: &'a Dwt,
    /// Measurements `y` (length `m`).
    pub measurements: &'a [f64],
    /// Fidelity radius `σ ≥ 0` (measurement-noise budget).
    pub sigma: f64,
    /// Optional per-sample box `lo ≤ x ≤ hi` from the low-resolution
    /// channel.
    pub box_bounds: Option<(&'a [f64], &'a [f64])>,
    /// Optional non-negative per-coefficient ℓ₁ weights `w` turning the
    /// objective into `‖w ⊙ Ψᵀx‖₁` — the weighted/model-based recovery
    /// the paper's introduction points to (Baraniuk et al.; the authors'
    /// own BioCAS 2011 structured-sparsity study). `None` means flat
    /// weights (plain BPDN). See [`band_weights`](crate::band_weights)
    /// for the standard scale-dependent weighting.
    pub coefficient_weights: Option<&'a [f64]>,
}

impl BpdnProblem<'_> {
    /// Signal length `n`.
    #[must_use]
    pub fn signal_len(&self) -> usize {
        self.sensing.cols()
    }

    /// Measurement count `m`.
    #[must_use]
    pub fn measurement_len(&self) -> usize {
        self.sensing.rows()
    }

    /// Validates all cross-component dimensions and parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::DimensionMismatch`] or
    /// [`SolverError::BadParameter`] describing the first inconsistency, or
    /// [`SolverError::Transform`] when the DWT cannot handle the signal
    /// length.
    pub fn validate(&self) -> Result<(), SolverError> {
        let n = self.signal_len();
        let m = self.measurement_len();
        if self.measurements.len() != m {
            return Err(SolverError::DimensionMismatch {
                what: "measurements vs sensing rows",
                expected: m,
                actual: self.measurements.len(),
            });
        }
        if let Some(index) = first_non_finite(self.measurements) {
            return Err(SolverError::NonFinite {
                what: "measurements",
                index,
            });
        }
        if !(self.sigma >= 0.0 && self.sigma.is_finite()) {
            return Err(SolverError::BadParameter {
                name: "sigma",
                value: self.sigma,
            });
        }
        self.dwt.validate_len(n)?;
        if let Some((lo, hi)) = self.box_bounds {
            if lo.len() != n {
                return Err(SolverError::DimensionMismatch {
                    what: "box lower bound vs signal",
                    expected: n,
                    actual: lo.len(),
                });
            }
            if hi.len() != n {
                return Err(SolverError::DimensionMismatch {
                    what: "box upper bound vs signal",
                    expected: n,
                    actual: hi.len(),
                });
            }
            if let Some(index) = first_non_finite(lo) {
                return Err(SolverError::NonFinite {
                    what: "box lower bound",
                    index,
                });
            }
            if let Some(index) = first_non_finite(hi) {
                return Err(SolverError::NonFinite {
                    what: "box upper bound",
                    index,
                });
            }
            if let Some(i) = lo.iter().zip(hi).position(|(l, h)| l > h) {
                return Err(SolverError::BadParameter {
                    name: "box (empty interval)",
                    value: i as f64,
                });
            }
        }
        if let Some(w) = self.coefficient_weights {
            if w.len() != n {
                return Err(SolverError::DimensionMismatch {
                    what: "coefficient weights vs signal",
                    expected: n,
                    actual: w.len(),
                });
            }
            if let Some(i) = w.iter().position(|v| !v.is_finite() || *v < 0.0) {
                return Err(SolverError::BadParameter {
                    name: "coefficient weight (must be finite, >= 0)",
                    value: i as f64,
                });
            }
        }
        Ok(())
    }

    /// A feasible-ish starting point: the box midpoint when bounds are
    /// available (it satisfies the box exactly and is close in fidelity),
    /// otherwise the adjoint back-projection `Φᵀy`.
    #[must_use]
    pub fn initial_point(&self) -> Vec<f64> {
        let mut x0 = vec![0.0; self.signal_len()];
        self.initial_point_into(&mut x0);
        x0
    }

    /// Allocation-free [`BpdnProblem::initial_point`]: writes the starting
    /// point into `out` (length `n`).
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != self.signal_len()`.
    pub fn initial_point_into(&self, out: &mut [f64]) {
        assert_eq!(out.len(), self.signal_len(), "initial point length");
        match self.box_bounds {
            Some((lo, hi)) => {
                for ((o, l), h) in out.iter_mut().zip(lo).zip(hi) {
                    *o = 0.5 * (l + h);
                }
            }
            None => self.sensing.apply_adjoint(self.measurements, out),
        }
    }
}

/// Index of the first NaN/infinite element, if any.
pub(crate) fn first_non_finite(values: &[f64]) -> Option<usize> {
    values.iter().position(|v| !v.is_finite())
}

/// Output of a recovery solver.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryResult {
    /// Reconstructed signal `x̃` (length `n`).
    pub signal: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Whether the stopping tolerance was met within the budget.
    pub converged: bool,
    /// Final fidelity residual `‖Φx̃ − y‖₂`.
    pub residual: f64,
    /// Final objective `‖Ψᵀx̃‖₁`.
    pub objective: f64,
}

impl RecoveryResult {
    /// Convenience: `residual ≤ sigma · (1 + slack)`.
    #[must_use]
    pub fn is_feasible(&self, sigma: f64, slack: f64) -> bool {
        self.residual <= sigma * (1.0 + slack) + f64::EPSILON
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DenseOperator;
    use hybridcs_dsp::Wavelet;
    use hybridcs_linalg::Matrix;

    fn dense_id(n: usize) -> DenseOperator {
        DenseOperator::new(Matrix::identity(n))
    }

    #[test]
    fn validate_accepts_consistent_problem() {
        let op = dense_id(64);
        let dwt = Dwt::new(Wavelet::Db4, 2).unwrap();
        let y = vec![0.0; 64];
        let lo = vec![-1.0; 64];
        let hi = vec![1.0; 64];
        let p = BpdnProblem {
            sensing: &op,
            dwt: &dwt,
            measurements: &y,
            sigma: 0.1,
            box_bounds: Some((&lo, &hi)),
            coefficient_weights: None,
        };
        assert!(p.validate().is_ok());
        assert_eq!(p.signal_len(), 64);
        assert_eq!(p.measurement_len(), 64);
    }

    #[test]
    fn validate_rejects_bad_measurement_len() {
        let op = dense_id(64);
        let dwt = Dwt::new(Wavelet::Db4, 2).unwrap();
        let y = vec![0.0; 10];
        let p = BpdnProblem {
            sensing: &op,
            dwt: &dwt,
            measurements: &y,
            sigma: 0.1,
            box_bounds: None,
            coefficient_weights: None,
        };
        assert!(matches!(
            p.validate(),
            Err(SolverError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn validate_rejects_negative_sigma_and_nan() {
        let op = dense_id(64);
        let dwt = Dwt::new(Wavelet::Db4, 2).unwrap();
        let y = vec![0.0; 64];
        for sigma in [-1.0, f64::NAN] {
            let p = BpdnProblem {
                sensing: &op,
                dwt: &dwt,
                measurements: &y,
                sigma,
                box_bounds: None,
                coefficient_weights: None,
            };
            assert!(matches!(
                p.validate(),
                Err(SolverError::BadParameter { .. })
            ));
        }
    }

    #[test]
    fn validate_rejects_non_finite_measurements_and_bounds() {
        let op = dense_id(64);
        let dwt = Dwt::new(Wavelet::Db4, 2).unwrap();
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let mut y = vec![0.0; 64];
            y[13] = bad;
            let p = BpdnProblem {
                sensing: &op,
                dwt: &dwt,
                measurements: &y,
                sigma: 0.1,
                box_bounds: None,
                coefficient_weights: None,
            };
            assert!(matches!(
                p.validate(),
                Err(SolverError::NonFinite {
                    what: "measurements",
                    index: 13
                })
            ));
        }
        let y = vec![0.0; 64];
        let mut lo = vec![-1.0; 64];
        lo[5] = f64::NAN;
        let hi = vec![1.0; 64];
        let p = BpdnProblem {
            sensing: &op,
            dwt: &dwt,
            measurements: &y,
            sigma: 0.1,
            box_bounds: Some((&lo, &hi)),
            coefficient_weights: None,
        };
        assert!(matches!(
            p.validate(),
            Err(SolverError::NonFinite {
                what: "box lower bound",
                index: 5
            })
        ));
    }

    #[test]
    fn validate_rejects_empty_box_interval() {
        let op = dense_id(64);
        let dwt = Dwt::new(Wavelet::Db4, 2).unwrap();
        let y = vec![0.0; 64];
        let lo = vec![1.0; 64];
        let hi = vec![-1.0; 64];
        let p = BpdnProblem {
            sensing: &op,
            dwt: &dwt,
            measurements: &y,
            sigma: 0.1,
            box_bounds: Some((&lo, &hi)),
            coefficient_weights: None,
        };
        assert!(matches!(
            p.validate(),
            Err(SolverError::BadParameter { .. })
        ));
    }

    #[test]
    fn validate_rejects_bad_dwt_length() {
        let op = dense_id(100);
        let dwt = Dwt::new(Wavelet::Db4, 3).unwrap();
        let y = vec![0.0; 100];
        let p = BpdnProblem {
            sensing: &op,
            dwt: &dwt,
            measurements: &y,
            sigma: 0.1,
            box_bounds: None,
            coefficient_weights: None,
        };
        assert!(matches!(p.validate(), Err(SolverError::Transform(_))));
    }

    #[test]
    fn initial_point_prefers_box_midpoint() {
        let op = dense_id(4);
        let dwt = Dwt::new(Wavelet::Haar, 1).unwrap();
        let y = vec![9.0; 4];
        let lo = vec![0.0; 4];
        let hi = vec![2.0; 4];
        let p = BpdnProblem {
            sensing: &op,
            dwt: &dwt,
            measurements: &y,
            sigma: 0.1,
            box_bounds: Some((&lo, &hi)),
            coefficient_weights: None,
        };
        assert_eq!(p.initial_point(), vec![1.0; 4]);
        let p2 = BpdnProblem {
            box_bounds: None,
            coefficient_weights: None,
            ..p
        };
        assert_eq!(p2.initial_point(), vec![9.0; 4]);
    }

    #[test]
    fn feasibility_helper() {
        let r = RecoveryResult {
            signal: vec![],
            iterations: 1,
            converged: true,
            residual: 1.04,
            objective: 0.0,
        };
        assert!(r.is_feasible(1.0, 0.05));
        assert!(!r.is_feasible(1.0, 0.01));
    }
}
