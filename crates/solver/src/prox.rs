//! Proximal operators and projections used by the first-order solvers.

/// Scalar soft-thresholding `sign(v)·max(|v| − t, 0)` — the proximal
/// operator of `t·|·|`.
///
/// # Example
///
/// ```
/// use hybridcs_solver::prox::soft_threshold;
///
/// assert_eq!(soft_threshold(3.0, 1.0), 2.0);
/// assert_eq!(soft_threshold(-3.0, 1.0), -2.0);
/// assert_eq!(soft_threshold(0.5, 1.0), 0.0);
/// ```
#[must_use]
pub fn soft_threshold(v: f64, t: f64) -> f64 {
    if v > t {
        v - t
    } else if v < -t {
        v + t
    } else {
        0.0
    }
}

/// In-place vector soft-thresholding.
pub fn soft_threshold_slice(v: &mut [f64], t: f64) {
    for x in v.iter_mut() {
        *x = soft_threshold(*x, t);
    }
}

/// In-place *weighted* soft-thresholding: element `i` is shrunk by
/// `t·w[i]` — the proximal operator of `t·‖w ⊙ ·‖₁`.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn soft_threshold_weighted(v: &mut [f64], t: f64, w: &[f64]) {
    assert_eq!(v.len(), w.len(), "weighted soft-threshold: length mismatch");
    for (x, &wi) in v.iter_mut().zip(w) {
        *x = soft_threshold(*x, t * wi);
    }
}

/// In-place projection of `v` onto the ℓ₂ ball of radius `radius` centred
/// at `center`: if `‖v − c‖ > r`, move `v` to the nearest ball-surface
/// point, otherwise leave it.
///
/// # Panics
///
/// Panics if the slices differ in length or `radius < 0`.
pub fn project_l2_ball(v: &mut [f64], center: &[f64], radius: f64) {
    assert_eq!(v.len(), center.len(), "project_l2_ball: length mismatch");
    assert!(radius >= 0.0, "radius must be non-negative");
    let dist = hybridcs_linalg::vector::dist2(v, center);
    if dist <= radius || dist == 0.0 {
        return;
    }
    let scale = radius / dist;
    for (vi, &ci) in v.iter_mut().zip(center) {
        *vi = ci + scale * (*vi - ci);
    }
}

/// In-place projection onto the box `[lo, hi]` (element-wise clamp).
///
/// # Panics
///
/// Panics if lengths differ or any interval is empty.
pub fn project_box(v: &mut [f64], lo: &[f64], hi: &[f64]) {
    hybridcs_linalg::vector::clamp_box(v, lo, hi);
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybridcs_linalg::vector;

    #[test]
    fn soft_threshold_shrinks_toward_zero() {
        assert_eq!(soft_threshold(5.0, 2.0), 3.0);
        assert_eq!(soft_threshold(-5.0, 2.0), -3.0);
        assert_eq!(soft_threshold(1.9, 2.0), 0.0);
        assert_eq!(soft_threshold(0.0, 0.0), 0.0);
    }

    #[test]
    fn soft_threshold_slice_matches_scalar() {
        let mut v = vec![3.0, -0.5, -4.0];
        soft_threshold_slice(&mut v, 1.0);
        assert_eq!(v, vec![2.0, 0.0, -3.0]);
    }

    #[test]
    fn ball_projection_inside_is_identity() {
        let mut v = vec![1.0, 0.0];
        let c = vec![0.5, 0.0];
        project_l2_ball(&mut v, &c, 1.0);
        assert_eq!(v, vec![1.0, 0.0]);
    }

    #[test]
    fn ball_projection_lands_on_surface() {
        let mut v = vec![10.0, 0.0];
        let c = vec![0.0, 0.0];
        project_l2_ball(&mut v, &c, 2.0);
        assert!((vector::norm2(&v) - 2.0).abs() < 1e-12);
        assert!((v[0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn ball_projection_is_idempotent() {
        let c = vec![1.0, -2.0, 0.5];
        let mut v = vec![9.0, 4.0, -3.0];
        project_l2_ball(&mut v, &c, 1.5);
        let once = v.clone();
        project_l2_ball(&mut v, &c, 1.5);
        for (a, b) in once.iter().zip(&v) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn ball_projection_zero_radius_returns_center() {
        let c = vec![1.0, 2.0];
        let mut v = vec![5.0, 5.0];
        project_l2_ball(&mut v, &c, 0.0);
        assert_eq!(v, c);
    }

    #[test]
    fn box_projection_clamps() {
        let mut v = vec![-2.0, 0.5, 3.0];
        project_box(&mut v, &[0.0, 0.0, 0.0], &[1.0, 1.0, 1.0]);
        assert_eq!(v, vec![0.0, 0.5, 1.0]);
    }
}
