//! Runtime-dispatched SIMD kernels for the batched solver inner loops.
//!
//! These are the solver-side companions to [`hybridcs_linalg::simd`]: the
//! element-wise update steps that dominate the batched PDHG/FISTA iteration
//! (soft-threshold prox, gradient step, over-relaxation, Nesterov momentum)
//! with an AVX2 tier selected at runtime and a scalar twin that is the
//! reference semantics.
//!
//! # 0-ULP contract
//!
//! Every kernel here is **element-wise**: output element `i` depends only on
//! input elements at the same position plus broadcast scalars. The AVX2
//! bodies use only `_mm256_{add,sub,mul,blendv,cmp,xor}_pd` — never FMA, so
//! no contraction — which makes each vector lane compute the *identical*
//! IEEE-754 operation sequence as the scalar twin. The per-element results
//! are therefore bit-identical across tiers, which is what lets the batched
//! solvers promise bit-identical results to their serial counterparts
//! regardless of the dispatch decision.
//!
//! Per-lane thresholds follow the batch panel layout of
//! [`hybridcs_linalg::simd`]: a panel stores element `i` of lane `l` at
//! `i * k + l`, and a threshold slice `t` holds one value per lane.

use hybridcs_linalg::simd::simd_enabled;

/// Panel soft-threshold with a per-lane threshold: for every row `i` and
/// lane `l`, applies [`crate::prox::soft_threshold`] with threshold `t[l]`
/// to `panel[i*k + l]` in place.
///
/// Matches the scalar [`crate::prox::soft_threshold_slice`] applied per
/// lane, bit for bit.
///
/// # Panics
///
/// Panics if `t.len() != k`, `k == 0`, or `panel.len()` is not a multiple
/// of `k`.
pub fn soft_threshold_lanes(panel: &mut [f64], t: &[f64], k: usize) {
    assert!(k > 0, "soft_threshold_lanes: k must be positive");
    assert_eq!(t.len(), k, "soft_threshold_lanes: t length mismatch");
    assert_eq!(
        panel.len() % k,
        0,
        "soft_threshold_lanes: panel not a multiple of k"
    );
    #[cfg(target_arch = "x86_64")]
    if simd_enabled() {
        // SAFETY: AVX2 availability is guaranteed by `simd_enabled()`.
        #[allow(unsafe_code)]
        unsafe {
            avx::soft_threshold_lanes_avx(panel, t, k)
        };
        return;
    }
    scalar::soft_threshold_lanes(panel, t, k);
}

/// Weighted panel soft-threshold: element `(i, l)` is thresholded at
/// `t[l] * w_panel[i*k + l]`, matching the scalar
/// [`crate::prox::soft_threshold_weighted`] applied per lane, bit for bit.
///
/// # Panics
///
/// Panics if `t.len() != k`, `k == 0`, `panel.len()` is not a multiple of
/// `k`, or `w_panel.len() != panel.len()`.
pub fn soft_threshold_weighted_lanes(panel: &mut [f64], t: &[f64], w_panel: &[f64], k: usize) {
    assert!(k > 0, "soft_threshold_weighted_lanes: k must be positive");
    assert_eq!(
        t.len(),
        k,
        "soft_threshold_weighted_lanes: t length mismatch"
    );
    assert_eq!(
        panel.len() % k,
        0,
        "soft_threshold_weighted_lanes: panel not a multiple of k"
    );
    assert_eq!(
        w_panel.len(),
        panel.len(),
        "soft_threshold_weighted_lanes: weight panel length mismatch"
    );
    #[cfg(target_arch = "x86_64")]
    if simd_enabled() {
        // SAFETY: AVX2 availability is guaranteed by `simd_enabled()`.
        #[allow(unsafe_code)]
        unsafe {
            avx::soft_threshold_weighted_lanes_avx(panel, t, w_panel, k)
        };
        return;
    }
    scalar::soft_threshold_weighted_lanes(panel, t, w_panel, k);
}

/// Proximal gradient step `out[i] = x[i] − τ·(at_z1[i] + z2[i])`.
///
/// This is the PDHG primal update written as one element-wise pass; the
/// `z2` slice must be zero-filled when the problem has no box constraint so
/// the arithmetic (`at + 0.0`) replicates the serial path exactly,
/// including its signed-zero behaviour.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn grad_step_lanes(x: &[f64], at_z1: &[f64], z2: &[f64], tau: f64, out: &mut [f64]) {
    assert_eq!(
        x.len(),
        at_z1.len(),
        "grad_step_lanes: at_z1 length mismatch"
    );
    assert_eq!(x.len(), z2.len(), "grad_step_lanes: z2 length mismatch");
    assert_eq!(x.len(), out.len(), "grad_step_lanes: out length mismatch");
    #[cfg(target_arch = "x86_64")]
    if simd_enabled() {
        // SAFETY: AVX2 availability is guaranteed by `simd_enabled()`.
        #[allow(unsafe_code)]
        unsafe {
            avx::grad_step_lanes_avx(x, at_z1, z2, tau, out)
        };
        return;
    }
    scalar::grad_step_lanes(x, at_z1, z2, tau, out);
}

/// Over-relaxation `out[i] = 2·x_new[i] − x[i]` (the PDHG extrapolation).
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn over_relax_lanes(x_new: &[f64], x: &[f64], out: &mut [f64]) {
    assert_eq!(x_new.len(), x.len(), "over_relax_lanes: x length mismatch");
    assert_eq!(
        x_new.len(),
        out.len(),
        "over_relax_lanes: out length mismatch"
    );
    #[cfg(target_arch = "x86_64")]
    if simd_enabled() {
        // SAFETY: AVX2 availability is guaranteed by `simd_enabled()`.
        #[allow(unsafe_code)]
        unsafe {
            avx::over_relax_lanes_avx(x_new, x, out)
        };
        return;
    }
    scalar::over_relax_lanes(x_new, x, out);
}

/// Nesterov momentum `out[i] = a_new[i] + β·(a_new[i] − a[i])` (the FISTA
/// extrapolation).
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn momentum_lanes(a_new: &[f64], a: &[f64], beta: f64, out: &mut [f64]) {
    assert_eq!(a_new.len(), a.len(), "momentum_lanes: a length mismatch");
    assert_eq!(
        a_new.len(),
        out.len(),
        "momentum_lanes: out length mismatch"
    );
    #[cfg(target_arch = "x86_64")]
    if simd_enabled() {
        // SAFETY: AVX2 availability is guaranteed by `simd_enabled()`.
        #[allow(unsafe_code)]
        unsafe {
            avx::momentum_lanes_avx(a_new, a, beta, out)
        };
        return;
    }
    scalar::momentum_lanes(a_new, a, beta, out);
}

/// Scalar twins: the reference semantics for every kernel above. Each body
/// is the exact operation sequence of the serial solver loop it replaces.
pub(crate) mod scalar {
    use crate::prox::soft_threshold;

    pub fn soft_threshold_lanes(panel: &mut [f64], t: &[f64], k: usize) {
        for (row, v) in panel.iter_mut().enumerate() {
            *v = soft_threshold(*v, t[row % k]);
        }
    }

    pub fn soft_threshold_weighted_lanes(panel: &mut [f64], t: &[f64], w_panel: &[f64], k: usize) {
        for (row, (v, &w)) in panel.iter_mut().zip(w_panel).enumerate() {
            *v = soft_threshold(*v, t[row % k] * w);
        }
    }

    pub fn grad_step_lanes(x: &[f64], at_z1: &[f64], z2: &[f64], tau: f64, out: &mut [f64]) {
        for (((o, &xi), &ai), &zi) in out.iter_mut().zip(x).zip(at_z1).zip(z2) {
            *o = xi - tau * (ai + zi);
        }
    }

    pub fn over_relax_lanes(x_new: &[f64], x: &[f64], out: &mut [f64]) {
        for ((o, &xn), &xi) in out.iter_mut().zip(x_new).zip(x) {
            *o = 2.0 * xn - xi;
        }
    }

    pub fn momentum_lanes(a_new: &[f64], a: &[f64], beta: f64, out: &mut [f64]) {
        for ((o, &an), &ai) in out.iter_mut().zip(a_new).zip(a) {
            *o = an + beta * (an - ai);
        }
    }
}

/// AVX2 twins. Marked `target_feature(enable = "avx2")`; callers must have
/// verified hardware support. Only non-contracting mul/add/sub/blend
/// intrinsics are used so each element matches its scalar twin bit for bit.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod avx {
    use std::arch::x86_64::*;

    /// Soft-threshold four lanes at once, honouring the scalar branch order
    /// (`v > t` wins over `v < −t`; everything else — including NaN — maps
    /// to `+0.0`).
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn soft4(v: __m256d, t: __m256d) -> __m256d {
        let sign = _mm256_set1_pd(-0.0);
        let neg_t = _mm256_xor_pd(t, sign);
        let gt = _mm256_cmp_pd::<_CMP_GT_OQ>(v, t);
        let lt = _mm256_cmp_pd::<_CMP_LT_OQ>(v, neg_t);
        let shrunk_down = _mm256_sub_pd(v, t);
        let shrunk_up = _mm256_add_pd(v, t);
        let r = _mm256_blendv_pd(_mm256_setzero_pd(), shrunk_up, lt);
        _mm256_blendv_pd(r, shrunk_down, gt)
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn soft_threshold_lanes_avx(panel: &mut [f64], t: &[f64], k: usize) {
        let rows = panel.len() / k;
        for i in 0..rows {
            let base = i * k;
            let mut l = 0;
            while l + 4 <= k {
                let v = _mm256_loadu_pd(panel.as_ptr().add(base + l));
                let tv = _mm256_loadu_pd(t.as_ptr().add(l));
                _mm256_storeu_pd(panel.as_mut_ptr().add(base + l), soft4(v, tv));
                l += 4;
            }
            while l < k {
                panel[base + l] = crate::prox::soft_threshold(panel[base + l], t[l]);
                l += 1;
            }
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn soft_threshold_weighted_lanes_avx(
        panel: &mut [f64],
        t: &[f64],
        w_panel: &[f64],
        k: usize,
    ) {
        let rows = panel.len() / k;
        for i in 0..rows {
            let base = i * k;
            let mut l = 0;
            while l + 4 <= k {
                let v = _mm256_loadu_pd(panel.as_ptr().add(base + l));
                let tv = _mm256_loadu_pd(t.as_ptr().add(l));
                let wv = _mm256_loadu_pd(w_panel.as_ptr().add(base + l));
                let tw = _mm256_mul_pd(tv, wv);
                _mm256_storeu_pd(panel.as_mut_ptr().add(base + l), soft4(v, tw));
                l += 4;
            }
            while l < k {
                panel[base + l] =
                    crate::prox::soft_threshold(panel[base + l], t[l] * w_panel[base + l]);
                l += 1;
            }
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn grad_step_lanes_avx(
        x: &[f64],
        at_z1: &[f64],
        z2: &[f64],
        tau: f64,
        out: &mut [f64],
    ) {
        let n = out.len();
        let tv = _mm256_set1_pd(tau);
        let mut i = 0;
        while i + 4 <= n {
            let xv = _mm256_loadu_pd(x.as_ptr().add(i));
            let av = _mm256_loadu_pd(at_z1.as_ptr().add(i));
            let zv = _mm256_loadu_pd(z2.as_ptr().add(i));
            let g = _mm256_mul_pd(tv, _mm256_add_pd(av, zv));
            _mm256_storeu_pd(out.as_mut_ptr().add(i), _mm256_sub_pd(xv, g));
            i += 4;
        }
        while i < n {
            out[i] = x[i] - tau * (at_z1[i] + z2[i]);
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn over_relax_lanes_avx(x_new: &[f64], x: &[f64], out: &mut [f64]) {
        let n = out.len();
        let two = _mm256_set1_pd(2.0);
        let mut i = 0;
        while i + 4 <= n {
            let xn = _mm256_loadu_pd(x_new.as_ptr().add(i));
            let xv = _mm256_loadu_pd(x.as_ptr().add(i));
            let r = _mm256_sub_pd(_mm256_mul_pd(two, xn), xv);
            _mm256_storeu_pd(out.as_mut_ptr().add(i), r);
            i += 4;
        }
        while i < n {
            out[i] = 2.0 * x_new[i] - x[i];
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn momentum_lanes_avx(a_new: &[f64], a: &[f64], beta: f64, out: &mut [f64]) {
        let n = out.len();
        let bv = _mm256_set1_pd(beta);
        let mut i = 0;
        while i + 4 <= n {
            let an = _mm256_loadu_pd(a_new.as_ptr().add(i));
            let av = _mm256_loadu_pd(a.as_ptr().add(i));
            let r = _mm256_add_pd(an, _mm256_mul_pd(bv, _mm256_sub_pd(an, av)));
            _mm256_storeu_pd(out.as_mut_ptr().add(i), r);
            i += 4;
        }
        while i < n {
            out[i] = a_new[i] + beta * (a_new[i] - a[i]);
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hybridcs_rand::{RngExt, SeedableRng};

    /// Mixed-magnitude noise with signed zeros and huge/tiny values so the
    /// pins exercise rounding, not just well-scaled data.
    fn noise(len: usize, seed: u64) -> Vec<f64> {
        let mut rng = hybridcs_rand::rngs::StdRng::seed_from_u64(seed);
        (0..len)
            .map(|i| {
                let v = rng.random::<f64>() * 2.0 - 1.0;
                match i % 7 {
                    0 => v * 1e12,
                    1 => v * 1e-12,
                    2 => -0.0,
                    _ => v,
                }
            })
            .collect()
    }

    /// Runs a closure under both dispatch tiers (via the process-global
    /// linalg override, serialized on its test mutex being absent here by
    /// simply comparing scalar and AVX twins directly instead).
    #[test]
    fn soft_threshold_lanes_pins_scalar_vs_avx() {
        #[cfg(target_arch = "x86_64")]
        if hybridcs_linalg::simd::simd_available() {
            for &(rows, k) in &[(1usize, 1usize), (5, 3), (8, 4), (13, 7), (16, 8), (3, 9)] {
                let mut a = noise(rows * k, 11 + (rows * k) as u64);
                let mut b = a.clone();
                let t: Vec<f64> = (0..k).map(|l| 0.1 * (l as f64 + 0.5)).collect();
                scalar::soft_threshold_lanes(&mut a, &t, k);
                // SAFETY: guarded by simd_available().
                #[allow(unsafe_code)]
                unsafe {
                    avx::soft_threshold_lanes_avx(&mut b, &t, k)
                };
                for (x, y) in a.iter().zip(&b) {
                    assert_eq!(x.to_bits(), y.to_bits());
                }
            }
        }
    }

    #[test]
    fn soft_threshold_weighted_lanes_pins_scalar_vs_avx() {
        #[cfg(target_arch = "x86_64")]
        if hybridcs_linalg::simd::simd_available() {
            for &(rows, k) in &[(1usize, 1usize), (5, 3), (8, 4), (13, 7), (16, 8)] {
                let mut a = noise(rows * k, 23 + rows as u64);
                let mut b = a.clone();
                let w: Vec<f64> = noise(rows * k, 29 + k as u64)
                    .iter()
                    .map(|v| v.abs())
                    .collect();
                let t: Vec<f64> = (0..k).map(|l| 0.05 * (l as f64 + 1.0)).collect();
                scalar::soft_threshold_weighted_lanes(&mut a, &t, &w, k);
                // SAFETY: guarded by simd_available().
                #[allow(unsafe_code)]
                unsafe {
                    avx::soft_threshold_weighted_lanes_avx(&mut b, &t, &w, k)
                };
                for (x, y) in a.iter().zip(&b) {
                    assert_eq!(x.to_bits(), y.to_bits());
                }
            }
        }
    }

    #[test]
    fn elementwise_kernels_pin_scalar_vs_avx() {
        #[cfg(target_arch = "x86_64")]
        if hybridcs_linalg::simd::simd_available() {
            for &len in &[1usize, 3, 4, 7, 8, 31, 64, 97] {
                let x = noise(len, 31);
                let at = noise(len, 37);
                let z2 = noise(len, 41);
                let mut a = vec![0.0; len];
                let mut b = vec![0.0; len];
                scalar::grad_step_lanes(&x, &at, &z2, 0.37, &mut a);
                // SAFETY: guarded by simd_available().
                #[allow(unsafe_code)]
                unsafe {
                    avx::grad_step_lanes_avx(&x, &at, &z2, 0.37, &mut b)
                };
                for (p, q) in a.iter().zip(&b) {
                    assert_eq!(p.to_bits(), q.to_bits());
                }

                scalar::over_relax_lanes(&x, &at, &mut a);
                // SAFETY: guarded by simd_available().
                #[allow(unsafe_code)]
                unsafe {
                    avx::over_relax_lanes_avx(&x, &at, &mut b)
                };
                for (p, q) in a.iter().zip(&b) {
                    assert_eq!(p.to_bits(), q.to_bits());
                }

                scalar::momentum_lanes(&x, &at, 0.83, &mut a);
                // SAFETY: guarded by simd_available().
                #[allow(unsafe_code)]
                unsafe {
                    avx::momentum_lanes_avx(&x, &at, 0.83, &mut b)
                };
                for (p, q) in a.iter().zip(&b) {
                    assert_eq!(p.to_bits(), q.to_bits());
                }
            }
        }
    }

    #[test]
    fn soft_threshold_lanes_matches_serial_prox_per_lane() {
        // The dispatcher (whatever tier it picks) must equal running the
        // serial prox on each gathered lane.
        for &(rows, k) in &[(7usize, 1usize), (9, 3), (8, 4), (5, 7), (4, 8)] {
            let panel0 = noise(rows * k, 47);
            let t: Vec<f64> = (0..k).map(|l| 0.2 + 0.01 * l as f64).collect();
            let mut panel = panel0.clone();
            soft_threshold_lanes(&mut panel, &t, k);
            for l in 0..k {
                let mut lane = vec![0.0; rows];
                hybridcs_linalg::simd::gather_lane(&panel0, k, l, &mut lane);
                crate::prox::soft_threshold_slice(&mut lane, t[l]);
                for (i, want) in lane.iter().enumerate() {
                    assert_eq!(panel[i * k + l].to_bits(), want.to_bits());
                }
            }
        }
    }

    #[test]
    fn grad_step_zero_z2_matches_serial_signed_zero() {
        // Serial PDHG computes `at + 0.0` even without a box; -0.0 inputs
        // must round to +0.0 identically through the panel kernel.
        let at = [-0.0, 0.0, -1.5, 2.5];
        let x = [0.0; 4];
        let z2 = [0.0; 4];
        let mut out = [0.0; 4];
        scalar::grad_step_lanes(&x, &at, &z2, 1.0, &mut out);
        for (o, &a) in out.iter().zip(&at) {
            let want = 0.0 - 1.0 * (a + 0.0);
            assert_eq!(o.to_bits(), want.to_bits());
        }
    }
}
