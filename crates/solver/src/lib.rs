//! Sparse-recovery solvers for the hybrid compressed-sensing decoder.
//!
//! The paper's Eq. (1) is the convex program
//!
//! ```text
//! min ‖α‖₁   s.t.   ‖ΦΨα − y‖₂ ≤ σ   and   ẋ ≤ Ψα ≤ ẋ + d
//! ```
//!
//! which the authors solve with the MATLAB conic toolbox SDPT3. No such
//! toolbox exists in the Rust ecosystem, so this crate implements the
//! program from scratch with two independent first-order methods plus a
//! family of classic CS baselines:
//!
//! * [`solve_pdhg`] — Chambolle–Pock primal–dual splitting with the stacked
//!   operator `K = [Φ; I]`; the workhorse decoder.
//! * [`solve_admm`] — ADMM with three splits (ℓ₂-ball, box, ℓ₁), solving
//!   its x-subproblem by conjugate gradient; cross-checks PDHG in tests and
//!   powers the solver ablation.
//! * [`solve_fista`] — accelerated proximal gradient on the unconstrained
//!   LASSO form (a digital-CS baseline).
//! * [`solve_omp`], [`solve_cosamp`], [`solve_iht`] — greedy baselines over
//!   an explicit `ΦΨ` matrix.
//!
//! Working in the *signal* domain `x = Ψα` with an **orthonormal** wavelet
//! `Ψ` (from [`hybridcs_dsp`]) keeps every proximal step cheap:
//! `prox(τ‖Ψᵀ·‖₁)(v) = Ψ·soft(Ψᵀv, τ)` costs two fast transforms.
//!
//! # Example
//!
//! ```
//! use hybridcs_dsp::{Dwt, Wavelet};
//! use hybridcs_linalg::Matrix;
//! use hybridcs_solver::{solve_pdhg, BpdnProblem, DenseOperator, PdhgOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Tiny smoke problem: recover a smooth signal from 3/4 of its samples.
//! let n = 64;
//! let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.2).sin()).collect();
//! let phi = Matrix::from_fn(48, n, |i, j| if j == i { 1.0 } else { 0.0 });
//! let y = phi.matvec(&x_true);
//! let problem = BpdnProblem {
//!     sensing: &DenseOperator::new(phi),
//!     dwt: &Dwt::new(Wavelet::Db4, 2)?,
//!     measurements: &y,
//!     sigma: 1e-3,
//!     box_bounds: None,
//!     coefficient_weights: None,
//! };
//! let result = solve_pdhg(&problem, &PdhgOptions::default())?;
//! assert!(result.iterations > 0);
//! # Ok(())
//! # }
//! ```

// `deny` rather than `forbid`: `simd` scopes a single `allow(unsafe_code)`
// around its runtime-dispatched AVX2 twins of the batched update kernels;
// everything else still refuses unsafe at compile time.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod admm;
mod batch;
mod error;
mod fista;
mod greedy;
mod operator;
mod pdhg;
mod problem;
pub mod prox;
mod reweighted;
pub mod simd;
mod watchdog;
mod weights;
mod workspace;

pub use admm::{solve_admm, solve_admm_observed, solve_admm_workspace, AdmmOptions};
pub use batch::{
    solve_fista_batch_workspace, solve_iht_batch_workspace, solve_pdhg_batch_workspace,
    solve_reweighted_batch_workspace, BatchProblem,
};
pub use error::SolverError;
pub use fista::{solve_fista, solve_fista_observed, solve_fista_workspace, FistaOptions};
pub use greedy::{
    solve_cosamp, solve_cosamp_observed, solve_iht, solve_iht_observed, solve_iht_workspace,
    solve_omp, solve_omp_observed, GreedyOptions,
};
pub use operator::{ComposedOperator, DenseOperator, LinearOperator, SynthesisOperator};
pub use pdhg::{solve_pdhg, solve_pdhg_observed, solve_pdhg_workspace, PdhgOptions};
pub use problem::{BpdnProblem, RecoveryResult};
pub use reweighted::{
    solve_reweighted, solve_reweighted_observed, solve_reweighted_workspace, ReweightedOptions,
};
pub use watchdog::{SolverWatchdog, WatchdogConfig, WatchdogTrip};
pub use weights::band_weights;
pub use workspace::SolverWorkspace;

// Observability vocabulary re-exported so downstream crates can drive the
// `*_observed` entry points without depending on `hybridcs-obs` directly.
pub use hybridcs_obs::{
    ConvergenceTrace, IterationEvent, IterationObserver, NoopObserver, RecordingObserver,
    StopReason,
};
