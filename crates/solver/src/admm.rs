use crate::prox;
use crate::{BpdnProblem, RecoveryResult, SolverError, SolverWorkspace};
use hybridcs_linalg::{cg_scratch_len, conjugate_gradient_into, vector, CgOptions};
use hybridcs_obs::{ConvergenceTrace, IterationEvent, IterationObserver, NoopObserver, StopReason};
use std::time::Instant;

/// Options for [`solve_admm`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmmOptions {
    /// Outer iteration budget.
    pub max_iterations: usize,
    /// Stopping tolerance on the primal and dual residual norms (relative
    /// to the problem scale).
    pub tolerance: f64,
    /// Penalty parameter ρ.
    pub rho: f64,
    /// Iteration budget of the inner conjugate-gradient solve.
    pub cg_iterations: usize,
    /// Relative tolerance of the inner conjugate-gradient solve.
    pub cg_tolerance: f64,
}

impl Default for AdmmOptions {
    fn default() -> Self {
        AdmmOptions {
            max_iterations: 600,
            tolerance: 1e-5,
            rho: 1.0,
            cg_iterations: 40,
            cg_tolerance: 1e-8,
        }
    }
}

/// Solves the same (optionally box-constrained) BPDN program as
/// [`solve_pdhg`](crate::solve_pdhg) with a three-way ADMM splitting:
///
/// ```text
/// min ‖z₃‖₁ + 𝟙ball(z₁) + 𝟙box(z₂)
/// s.t. z₁ = Φx,  z₂ = x,  z₃ = Ψᵀx
/// ```
///
/// The x-subproblem is the SPD system `(ΦᵀΦ + cI)x = rhs`, where `c`
/// counts one unit for the ℓ₁ split (since `ΨΨᵀ = I`) plus one more when
/// the box is present. It is solved matrix-free by conjugate gradient
/// with a warm start from the previous iterate.
///
/// ADMM exists alongside PDHG for two reasons: (a) two independent
/// implementations of the paper's Eq. (1) cross-validate each other in the
/// integration tests, and (b) the solver ablation
/// (`ablation_solvers`) compares their iteration/runtime profiles.
///
/// # Errors
///
/// Returns [`SolverError`] on validation failure or out-of-range options.
/// Budget exhaustion is reported via `converged = false`.
pub fn solve_admm(
    problem: &BpdnProblem<'_>,
    options: &AdmmOptions,
) -> Result<RecoveryResult, SolverError> {
    solve_admm_observed(problem, options, &mut NoopObserver)
}

/// [`solve_admm`] with an [`IterationObserver`] hook: when the observer is
/// [active](IterationObserver::active), every outer iteration emits an
/// [`IterationEvent`] with the ℓ₁ objective `‖Ψᵀx‖₁` and the fidelity
/// residual `‖Φx − y‖₂` — both free, since `Ψᵀx` and `Φx` are already
/// computed by the z-updates — and completion emits a
/// [`ConvergenceTrace`]. `step_size` reports the penalty parameter ρ.
///
/// The observer never changes the arithmetic: results are bit-identical to
/// [`solve_admm`].
///
/// # Errors
///
/// Same conditions as [`solve_admm`].
pub fn solve_admm_observed(
    problem: &BpdnProblem<'_>,
    options: &AdmmOptions,
    observer: &mut dyn IterationObserver,
) -> Result<RecoveryResult, SolverError> {
    solve_admm_workspace(problem, options, observer, &mut SolverWorkspace::new())
}

/// [`solve_admm_observed`] with every per-iteration buffer — including the
/// inner conjugate-gradient scratch — drawn from a caller-owned
/// [`SolverWorkspace`]: once the workspace has been warmed by one solve of
/// each size, the inner loop performs **zero heap allocations**. Results are
/// bit-identical to [`solve_admm`].
///
/// The returned `signal` is a workspace buffer; pass it back via
/// [`SolverWorkspace::release`] to keep the pool in steady state.
///
/// # Errors
///
/// Same conditions as [`solve_admm`].
pub fn solve_admm_workspace(
    problem: &BpdnProblem<'_>,
    options: &AdmmOptions,
    observer: &mut dyn IterationObserver,
    ws: &mut SolverWorkspace,
) -> Result<RecoveryResult, SolverError> {
    let started = Instant::now();
    problem.validate()?;
    validate_options(options)?;

    let n = problem.signal_len();
    let m = problem.measurement_len();
    let a = problem.sensing;
    let dwt = problem.dwt;
    let y = problem.measurements;
    let has_box = problem.box_bounds.is_some();
    let rho = options.rho;

    let mut dwt_scratch = ws.acquire(hybridcs_dsp::Dwt::scratch_len(n));
    let mut op_scratch = ws.acquire(a.scratch_len());

    // Splits and duals.
    let mut x = ws.acquire(n);
    problem.initial_point_into(&mut x);
    let mut ax = ws.acquire(m);
    a.apply_into(&x, &mut ax, &mut op_scratch);
    let mut z1 = ws.acquire(m);
    z1.copy_from_slice(&ax);
    let mut u1 = ws.acquire(m);
    let mut z2 = ws.acquire(n);
    z2.copy_from_slice(&x);
    let mut u2 = ws.acquire(n);
    let mut z3 = ws.acquire(n);
    dwt.forward_into(&x, &mut z3, &mut dwt_scratch)
        .expect("length validated");
    let mut u3 = ws.acquire(n);

    // Per-iteration buffers, hoisted out of the loop.
    let mut rhs = ws.acquire(n);
    let mut t1 = ws.acquire(m);
    let mut t3 = ws.acquire(n);
    let mut psi_t3 = ws.acquire(n);
    let mut z1_old = ws.acquire(m);
    let mut z2_old = ws.acquire(n);
    let mut z3_old = ws.acquire(n);
    let mut wx = ws.acquire(n);
    let mut x_cg = ws.acquire(n);
    let mut cg_scratch = ws.acquire(cg_scratch_len(n));
    let mut cg_av = ws.acquire(m);

    // Multiplicity of identity-like splits in the x-subproblem operator:
    // Ψ split always contributes ΨΨᵀ = I; the box split adds another I.
    let identity_weight = if has_box { 2.0 } else { 1.0 };

    let mut iterations = 0;
    let mut converged = false;
    let mut aborted = false;
    let scale = vector::norm2(y).max(1.0);

    for iter in 1..=options.max_iterations {
        iterations = iter;

        // --- x-update: (ΦᵀΦ + cI) x = Φᵀ(z1−u1) + (z2−u2) + Ψ(z3−u3) ---
        for (t, (z, u)) in t1.iter_mut().zip(z1.iter().zip(&u1)) {
            *t = z - u;
        }
        a.apply_adjoint_into(&t1, &mut rhs, &mut op_scratch);
        if has_box {
            for (r, (z, u)) in rhs.iter_mut().zip(z2.iter().zip(&u2)) {
                *r += z - u;
            }
        }
        for (t, (z, u)) in t3.iter_mut().zip(z3.iter().zip(&u3)) {
            *t = z - u;
        }
        dwt.inverse_into(&t3, &mut psi_t3, &mut dwt_scratch)
            .expect("length validated");
        for (r, p) in rhs.iter_mut().zip(&psi_t3) {
            *r += p;
        }

        x_cg.copy_from_slice(&x);
        let cg_result = conjugate_gradient_into(
            |v: &[f64], out: &mut [f64]| {
                a.apply_into(v, &mut cg_av, &mut op_scratch);
                a.apply_adjoint_into(&cg_av, out, &mut op_scratch);
                for (o, vi) in out.iter_mut().zip(v) {
                    *o += identity_weight * vi;
                }
            },
            &rhs,
            &mut x_cg,
            &mut cg_scratch,
            CgOptions {
                max_iterations: options.cg_iterations,
                tolerance: options.cg_tolerance,
            },
        );
        // An inexact inner solve is acceptable; keep the best iterate. On CG
        // breakdown, `x_cg` is discarded and the previous `x` stands — the
        // same policy as the allocating path.
        if cg_result.is_ok() {
            std::mem::swap(&mut x, &mut x_cg);
        }

        // --- z-updates (projections / shrinkage) ---
        a.apply_into(&x, &mut ax, &mut op_scratch);
        let mut primal_sq = 0.0;
        let mut dual_sq = 0.0;

        z1_old.copy_from_slice(&z1);
        for i in 0..m {
            z1[i] = ax[i] + u1[i];
        }
        prox::project_l2_ball(&mut z1, y, problem.sigma);
        for i in 0..m {
            let r = ax[i] - z1[i];
            u1[i] += r;
            primal_sq += r * r;
            let d = z1[i] - z1_old[i];
            dual_sq += rho * rho * d * d;
        }

        if let Some((lo, hi)) = problem.box_bounds {
            z2_old.copy_from_slice(&z2);
            for i in 0..n {
                z2[i] = x[i] + u2[i];
            }
            prox::project_box(&mut z2, lo, hi);
            for i in 0..n {
                let r = x[i] - z2[i];
                u2[i] += r;
                primal_sq += r * r;
                let d = z2[i] - z2_old[i];
                dual_sq += rho * rho * d * d;
            }
        }

        dwt.forward_into(&x, &mut wx, &mut dwt_scratch)
            .expect("length validated");
        z3_old.copy_from_slice(&z3);
        for i in 0..n {
            z3[i] = wx[i] + u3[i];
        }
        match problem.coefficient_weights {
            Some(weights) => prox::soft_threshold_weighted(&mut z3, 1.0 / rho, weights),
            None => prox::soft_threshold_slice(&mut z3, 1.0 / rho),
        }
        for i in 0..n {
            let r = wx[i] - z3[i];
            u3[i] += r;
            primal_sq += r * r;
            let d = z3[i] - z3_old[i];
            dual_sq += rho * rho * d * d;
        }

        if observer.active() {
            // `wx = Ψᵀx` and `ax = Φx` are both live from the z-updates.
            observer.on_iteration(&IterationEvent {
                iteration: iter,
                objective: vector::norm1(&wx),
                residual: vector::dist2(&ax, y),
                step_size: Some(rho),
            });
        }

        if observer.should_abort() {
            aborted = true;
            break;
        }

        if primal_sq.sqrt() <= options.tolerance * scale
            && dual_sq.sqrt() <= options.tolerance * scale
        {
            converged = true;
            break;
        }
    }

    if let Some((lo, hi)) = problem.box_bounds {
        prox::project_box(&mut x, lo, hi);
    }
    a.apply_into(&x, &mut ax, &mut op_scratch);
    let residual = vector::dist2(&ax, y);
    dwt.forward_into(&x, &mut wx, &mut dwt_scratch)
        .expect("length validated");
    let objective = vector::norm1(&wx);

    for buf in [
        dwt_scratch,
        op_scratch,
        ax,
        z1,
        u1,
        z2,
        u2,
        z3,
        u3,
        rhs,
        t1,
        t3,
        psi_t3,
        z1_old,
        z2_old,
        z3_old,
        wx,
        x_cg,
        cg_scratch,
        cg_av,
    ] {
        ws.release(buf);
    }

    observer.on_complete(&ConvergenceTrace {
        solver: "admm",
        iterations,
        stop_reason: if aborted {
            StopReason::Aborted
        } else if converged {
            StopReason::Converged
        } else {
            StopReason::MaxIterations
        },
        wall_time: started.elapsed(),
        converged,
        final_objective: objective,
        final_residual: residual,
    });

    Ok(RecoveryResult {
        signal: x,
        iterations,
        converged,
        residual,
        objective,
    })
}

fn validate_options(options: &AdmmOptions) -> Result<(), SolverError> {
    if options.max_iterations == 0 {
        return Err(SolverError::BadParameter {
            name: "max_iterations",
            value: 0.0,
        });
    }
    if !(options.tolerance > 0.0 && options.tolerance.is_finite()) {
        return Err(SolverError::BadParameter {
            name: "tolerance",
            value: options.tolerance,
        });
    }
    if !(options.rho > 0.0 && options.rho.is_finite()) {
        return Err(SolverError::BadParameter {
            name: "rho",
            value: options.rho,
        });
    }
    if options.cg_iterations == 0 {
        return Err(SolverError::BadParameter {
            name: "cg_iterations",
            value: 0.0,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{solve_pdhg, DenseOperator, PdhgOptions};
    use hybridcs_dsp::{Dwt, Wavelet};
    use hybridcs_linalg::Matrix;

    fn bernoulli_like(m: usize, n: usize, seed: u64) -> Matrix {
        let mut state = seed;
        Matrix::from_fn(m, n, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if (state >> 62) & 1 == 1 {
                1.0 / (n as f64).sqrt()
            } else {
                -1.0 / (n as f64).sqrt()
            }
        })
    }

    fn smooth_signal(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let t = i as f64 / n as f64;
                (2.0 * std::f64::consts::PI * 2.0 * t).sin()
                    + 0.4 * (2.0 * std::f64::consts::PI * 5.0 * t).cos()
            })
            .collect()
    }

    fn snr_db(truth: &[f64], estimate: &[f64]) -> f64 {
        let err = vector::dist2(truth, estimate);
        20.0 * (vector::norm2(truth) / err.max(1e-30)).log10()
    }

    #[test]
    fn recovers_compressible_signal() {
        let n = 128;
        let m = 64;
        let x_true = smooth_signal(n);
        let phi = bernoulli_like(m, n, 7);
        let y = phi.matvec(&x_true);
        let op = DenseOperator::new(phi);
        let dwt = Dwt::new(Wavelet::Db4, 3).unwrap();
        let problem = BpdnProblem {
            sensing: &op,
            dwt: &dwt,
            measurements: &y,
            sigma: 1e-3,
            box_bounds: None,
            coefficient_weights: None,
        };
        let result = solve_admm(&problem, &AdmmOptions::default()).unwrap();
        let snr = snr_db(&x_true, &result.signal);
        assert!(snr > 15.0, "SNR {snr} dB");
    }

    #[test]
    fn agrees_with_pdhg() {
        // Two independent algorithms on the same convex program must land on
        // reconstructions of comparable quality.
        let n = 128;
        let m = 48;
        let x_true = smooth_signal(n);
        let phi = bernoulli_like(m, n, 9);
        let y = phi.matvec(&x_true);
        let op = DenseOperator::new(phi);
        let dwt = Dwt::new(Wavelet::Db4, 3).unwrap();
        let d = 0.25;
        let lo: Vec<f64> = x_true.iter().map(|v| (v / d).floor() * d).collect();
        let hi: Vec<f64> = lo.iter().map(|v| v + d).collect();
        let problem = BpdnProblem {
            sensing: &op,
            dwt: &dwt,
            measurements: &y,
            sigma: 1e-3,
            box_bounds: Some((&lo, &hi)),
            coefficient_weights: None,
        };
        let admm = solve_admm(&problem, &AdmmOptions::default()).unwrap();
        let pdhg = solve_pdhg(&problem, &PdhgOptions::default()).unwrap();
        let snr_a = snr_db(&x_true, &admm.signal);
        let snr_p = snr_db(&x_true, &pdhg.signal);
        assert!(snr_a > 15.0, "ADMM SNR {snr_a}");
        assert!((snr_a - snr_p).abs() < 6.0, "ADMM {snr_a} vs PDHG {snr_p}");
    }

    #[test]
    fn box_is_satisfied_exactly() {
        let n = 64;
        let m = 8;
        let x_true = smooth_signal(n);
        let phi = bernoulli_like(m, n, 11);
        let y = phi.matvec(&x_true);
        let op = DenseOperator::new(phi);
        let dwt = Dwt::new(Wavelet::Db4, 2).unwrap();
        let d = 0.5;
        let lo: Vec<f64> = x_true.iter().map(|v| (v / d).floor() * d).collect();
        let hi: Vec<f64> = lo.iter().map(|v| v + d).collect();
        let problem = BpdnProblem {
            sensing: &op,
            dwt: &dwt,
            measurements: &y,
            sigma: 1e-3,
            box_bounds: Some((&lo, &hi)),
            coefficient_weights: None,
        };
        let result = solve_admm(&problem, &AdmmOptions::default()).unwrap();
        for ((v, l), h) in result.signal.iter().zip(&lo).zip(&hi) {
            assert!(*l <= *v && *v <= *h);
        }
    }

    #[test]
    fn workspace_path_bit_identical_and_pool_reused() {
        let n = 128;
        let m = 48;
        let x_true = smooth_signal(n);
        let phi = bernoulli_like(m, n, 31);
        let y = phi.matvec(&x_true);
        let op = DenseOperator::new(phi);
        let dwt = Dwt::new(Wavelet::Db4, 3).unwrap();
        let d = 0.25;
        let lo: Vec<f64> = x_true.iter().map(|v| (v / d).floor() * d).collect();
        let hi: Vec<f64> = lo.iter().map(|v| v + d).collect();
        let problem = BpdnProblem {
            sensing: &op,
            dwt: &dwt,
            measurements: &y,
            sigma: 1e-3,
            box_bounds: Some((&lo, &hi)),
            coefficient_weights: None,
        };
        let options = AdmmOptions {
            max_iterations: 150,
            ..AdmmOptions::default()
        };
        let plain = solve_admm(&problem, &options).unwrap();
        let mut ws = crate::SolverWorkspace::new();
        for _ in 0..2 {
            let pooled =
                solve_admm_workspace(&problem, &options, &mut hybridcs_obs::NoopObserver, &mut ws)
                    .unwrap();
            assert_eq!(pooled.iterations, plain.iterations);
            assert_eq!(pooled.residual.to_bits(), plain.residual.to_bits());
            assert_eq!(pooled.objective.to_bits(), plain.objective.to_bits());
            for (a, b) in pooled.signal.iter().zip(&plain.signal) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            ws.release(pooled.signal);
        }
        assert!(ws.pooled() > 0, "buffers should return to the pool");
    }

    #[test]
    fn rejects_bad_options() {
        let n = 64;
        let op = DenseOperator::new(Matrix::identity(n));
        let dwt = Dwt::new(Wavelet::Db4, 2).unwrap();
        let y = vec![0.0; n];
        let problem = BpdnProblem {
            sensing: &op,
            dwt: &dwt,
            measurements: &y,
            sigma: 0.1,
            box_bounds: None,
            coefficient_weights: None,
        };
        for bad in [
            AdmmOptions {
                max_iterations: 0,
                ..AdmmOptions::default()
            },
            AdmmOptions {
                rho: -1.0,
                ..AdmmOptions::default()
            },
            AdmmOptions {
                tolerance: f64::NAN,
                ..AdmmOptions::default()
            },
            AdmmOptions {
                cg_iterations: 0,
                ..AdmmOptions::default()
            },
        ] {
            assert!(solve_admm(&problem, &bad).is_err());
        }
    }

    #[test]
    fn identity_sensing_near_perfect() {
        let n = 64;
        let x_true = smooth_signal(n);
        let op = DenseOperator::new(Matrix::identity(n));
        let dwt = Dwt::new(Wavelet::Db4, 2).unwrap();
        let problem = BpdnProblem {
            sensing: &op,
            dwt: &dwt,
            measurements: &x_true,
            sigma: 1e-4,
            box_bounds: None,
            coefficient_weights: None,
        };
        let result = solve_admm(&problem, &AdmmOptions::default()).unwrap();
        assert!(snr_db(&x_true, &result.signal) > 30.0);
    }
}
