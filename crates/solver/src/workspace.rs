//! Reusable buffer arena for the decode hot path.
//!
//! Every solver in this crate has a `*_workspace` entry point that borrows a
//! [`SolverWorkspace`] for all per-iteration vectors (residuals, gradients,
//! DWT scratch, dual variables, …). Buffers are acquired at solve entry and
//! released back to the pool on exit, so a workspace that is reused across
//! windows reaches a steady state where the solver inner loop performs **zero
//! heap allocations** — the invariant enforced by the counting-allocator gate
//! in `examples/decode_throughput.rs` / `scripts/ci.sh`.
//!
//! The pool is deliberately simple: a flat list of `Vec<f64>` buffers with
//! best-fit-by-capacity reuse. Solvers acquire a handful of buffers with a
//! small set of distinct lengths, so the pool stays tiny (≈ a dozen entries)
//! and lookup cost is negligible next to one operator application.

/// A pool of reusable `f64` buffers shared by the solver entry points.
///
/// Not thread-safe by design — the gateway keeps one workspace per shard and
/// each shard is owned by exactly one worker per flush, so no synchronization
/// is needed on the hot path.
///
/// # Example
///
/// ```
/// use hybridcs_solver::SolverWorkspace;
///
/// let mut ws = SolverWorkspace::new();
/// let buf = ws.acquire(512);
/// assert!(buf.iter().all(|&v| v == 0.0));
/// ws.release(buf);
/// // The next acquire of any length ≤ 512 reuses that capacity.
/// let again = ws.acquire(96);
/// assert_eq!(again.len(), 96);
/// assert!(again.capacity() >= 512);
/// ```
#[derive(Debug, Default)]
pub struct SolverWorkspace {
    pool: Vec<Vec<f64>>,
    idx_pool: Vec<Vec<usize>>,
}

impl SolverWorkspace {
    /// Creates an empty workspace; buffers are pooled as solvers release
    /// them.
    #[must_use]
    pub fn new() -> Self {
        SolverWorkspace::default()
    }

    /// Takes a zeroed buffer of exactly `len` elements.
    ///
    /// Reuses the pooled buffer with the smallest sufficient capacity when
    /// one exists; otherwise allocates (this is the warm-up cost — once every
    /// length a solver needs has been released back, acquire never
    /// allocates).
    #[must_use]
    pub fn acquire(&mut self, len: usize) -> Vec<f64> {
        if len == 0 {
            return Vec::new();
        }
        let mut best: Option<usize> = None;
        for (i, buf) in self.pool.iter().enumerate() {
            if buf.capacity() >= len
                && best.is_none_or(|j: usize| self.pool[j].capacity() > buf.capacity())
            {
                best = Some(i);
            }
        }
        let mut buf = match best {
            Some(i) => self.pool.swap_remove(i),
            None => Vec::with_capacity(len),
        };
        buf.clear();
        buf.resize(len, 0.0);
        buf
    }

    /// Returns a buffer to the pool for later reuse. Contents are discarded;
    /// only the capacity matters.
    pub fn release(&mut self, buf: Vec<f64>) {
        if buf.capacity() > 0 {
            self.pool.push(buf);
        }
    }

    /// Takes a zeroed `rows × cols` panel (column-major over lanes: element
    /// `i` of lane `l` lives at `i * cols + l`) for the batched solvers.
    ///
    /// This is [`acquire`](SolverWorkspace::acquire)`(rows * cols)` — panels
    /// share the same capacity classes as plain vectors, so a pool warmed by
    /// K-wide batch solves also serves serial solves of compatible sizes and
    /// vice versa, keeping the zero-allocation steady state across mixed
    /// batch sizes.
    #[must_use]
    pub fn acquire_panel(&mut self, rows: usize, cols: usize) -> Vec<f64> {
        self.acquire(rows * cols)
    }

    /// Takes an **empty** index buffer with capacity at least `cap` (used by
    /// the greedy solvers for support selection). Mirrors
    /// [`acquire`](SolverWorkspace::acquire) but for `Vec<usize>`.
    #[must_use]
    pub fn acquire_indices(&mut self, cap: usize) -> Vec<usize> {
        if cap == 0 {
            return Vec::new();
        }
        let mut best: Option<usize> = None;
        for (i, buf) in self.idx_pool.iter().enumerate() {
            if buf.capacity() >= cap
                && best.is_none_or(|j: usize| self.idx_pool[j].capacity() > buf.capacity())
            {
                best = Some(i);
            }
        }
        let mut buf = match best {
            Some(i) => self.idx_pool.swap_remove(i),
            None => Vec::with_capacity(cap),
        };
        buf.clear();
        buf
    }

    /// Returns an index buffer to the pool for later reuse.
    pub fn release_indices(&mut self, buf: Vec<usize>) {
        if buf.capacity() > 0 {
            self.idx_pool.push(buf);
        }
    }

    /// Number of buffers currently pooled (diagnostic; used by tests and the
    /// throughput bench to verify steady state).
    #[must_use]
    pub fn pooled(&self) -> usize {
        self.pool.len() + self.idx_pool.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_zeroes_and_reuses_capacity() {
        let mut ws = SolverWorkspace::new();
        let mut buf = ws.acquire(100);
        buf.iter_mut().for_each(|v| *v = 7.0);
        let ptr = buf.as_ptr();
        ws.release(buf);
        let again = ws.acquire(64);
        assert_eq!(again.len(), 64);
        assert!(again.iter().all(|&v| v == 0.0), "buffer not re-zeroed");
        assert_eq!(again.as_ptr(), ptr, "capacity was not reused");
        assert_eq!(ws.pooled(), 0);
    }

    #[test]
    fn best_fit_prefers_smallest_sufficient() {
        let mut ws = SolverWorkspace::new();
        let small = ws.acquire(10);
        let big = ws.acquire(1000);
        let small_ptr = small.as_ptr();
        ws.release(big);
        ws.release(small);
        // A 10-element request must take the 10-capacity buffer, not the
        // 1000-capacity one.
        let got = ws.acquire(10);
        assert_eq!(got.as_ptr(), small_ptr);
        assert_eq!(ws.pooled(), 1);
    }

    #[test]
    fn zero_len_and_empty_release() {
        let mut ws = SolverWorkspace::new();
        let empty = ws.acquire(0);
        assert!(empty.is_empty());
        ws.release(empty);
        assert_eq!(ws.pooled(), 0, "zero-capacity buffers are not pooled");
    }
}
