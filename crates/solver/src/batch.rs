//! Batched multi-window decode: lockstep solvers over K same-shape windows.
//!
//! A gateway shard flush typically holds many pending windows that share one
//! [`DecodeLadder`-style configuration]: the same sensing operator, the same
//! wavelet, the same solver options — only the measurement vectors (and
//! per-window boxes/weights) differ. [`BatchProblem`] captures that shape and
//! the `solve_*_batch_workspace` entry points iterate all K windows in
//! lockstep over **column-major panels**: element `i` of window-lane `l`
//! lives at `i * k + l`, so one SIMD vector spans 4 adjacent lanes of the
//! same row and the per-window accumulation order is *exactly* the serial
//! scalar order.
//!
//! # Bit-identity contract
//!
//! For every window, batch solve results (`signal`, `iterations`,
//! `converged`, `residual`, `objective`) and the observer event stream are
//! **bit-identical** to the corresponding serial `solve_*_workspace` call,
//! for any batch size and any SIMD tier (`wall_time` in the completion trace
//! is telemetry and may differ). This holds because:
//!
//! * panel kernels ([`hybridcs_linalg::simd`], [`crate::simd`], the DWT
//!   panel transforms, the batched sensing operators) vectorize across
//!   *lanes* only — per-lane operation order never changes — and each AVX2
//!   tier is pinned 0-ULP against its scalar twin;
//! * per-lane reductions (norms, distances) are scalar strided replicas of
//!   the [`hybridcs_linalg::vector`] fold orders;
//! * converged/aborted windows **retire**: their lane is repacked out of
//!   every persistent panel ([`hybridcs_linalg::simd::drop_lane`]) so
//!   surviving windows keep iterating on the exact values they would have
//!   had serially, with a shrinking stride.
//!
//! Windows may stop at different iterations (per-window stopping masks);
//! retirement happens the same iteration the serial solver would break.

use crate::pdhg;
use crate::reweighted::OffsetForward;
use crate::{
    BpdnProblem, FistaOptions, GreedyOptions, PdhgOptions, RecoveryResult, ReweightedOptions,
    SolverError, SolverWorkspace,
};
use hybridcs_linalg::{simd, vector, Matrix};
use hybridcs_obs::{ConvergenceTrace, IterationEvent, IterationObserver, StopReason};
use std::time::Instant;

// Retirement marks encode `lane * 4 + reason` so one `Vec<usize>` carries
// both; marks are pushed in ascending lane order and processed in reverse so
// each `drop_lane` repack leaves lower (still-pending) lane indices valid.
const RETIRE_CONVERGED: usize = 0;
const RETIRE_ABORTED: usize = 1;
const RETIRE_STAGNATED: usize = 2;

fn retire_outcome(reason: usize) -> (StopReason, bool) {
    match reason {
        RETIRE_ABORTED => (StopReason::Aborted, false),
        RETIRE_STAGNATED => (StopReason::Stagnated, true),
        _ => (StopReason::Converged, true),
    }
}

/// A batch of [`BpdnProblem`] windows that share one decode configuration
/// and may therefore be solved in lockstep.
///
/// Construction validates every window and enforces uniformity: all windows
/// must reference the *same* sensing operator and DWT (by address — shapes
/// follow), and must agree on the presence of box bounds and coefficient
/// weights (their per-window contents are free to differ). Mixed batches are
/// rejected so the lockstep loop never branches per lane.
pub struct BatchProblem<'a, 'p> {
    problems: &'p [BpdnProblem<'a>],
}

impl<'a, 'p> BatchProblem<'a, 'p> {
    /// Validates every window and the batch-uniformity invariants.
    ///
    /// An empty batch is valid (batch solves return immediately).
    ///
    /// # Errors
    ///
    /// Returns the first window's [`BpdnProblem::validate`] error, or
    /// [`SolverError::BadParameter`] naming the mixed aspect (with the
    /// offending window index as the value) when windows disagree on the
    /// sensing operator, the wavelet, box presence, or weight presence.
    pub fn new(problems: &'p [BpdnProblem<'a>]) -> Result<Self, SolverError> {
        for p in problems {
            p.validate()?;
        }
        if let Some(first) = problems.first() {
            for (i, p) in problems.iter().enumerate().skip(1) {
                if !std::ptr::addr_eq(p.sensing, first.sensing) {
                    return Err(SolverError::BadParameter {
                        name: "batch (mixed sensing operators)",
                        value: i as f64,
                    });
                }
                if !std::ptr::eq(p.dwt, first.dwt) {
                    return Err(SolverError::BadParameter {
                        name: "batch (mixed wavelet transforms)",
                        value: i as f64,
                    });
                }
                if p.box_bounds.is_some() != first.box_bounds.is_some() {
                    return Err(SolverError::BadParameter {
                        name: "batch (mixed box presence)",
                        value: i as f64,
                    });
                }
                if p.coefficient_weights.is_some() != first.coefficient_weights.is_some() {
                    return Err(SolverError::BadParameter {
                        name: "batch (mixed weight presence)",
                        value: i as f64,
                    });
                }
            }
        }
        Ok(BatchProblem { problems })
    }

    /// Number of windows in the batch.
    #[must_use]
    pub fn len(&self) -> usize {
        self.problems.len()
    }

    /// Whether the batch holds no windows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.problems.is_empty()
    }

    /// The validated windows, in batch order.
    #[must_use]
    pub fn problems(&self) -> &'p [BpdnProblem<'a>] {
        self.problems
    }
}

fn check_observers(
    observers: &[&mut dyn IterationObserver],
    windows: usize,
) -> Result<(), SolverError> {
    if observers.len() != windows {
        return Err(SolverError::DimensionMismatch {
            what: "observers vs batch windows",
            expected: windows,
            actual: observers.len(),
        });
    }
    Ok(())
}

/// [`crate::prox::project_l2_ball`] on one strided lane of a panel, against
/// a contiguous center — the same dist/scale arithmetic element for element.
fn project_l2_ball_lane(v: &mut [f64], center: &[f64], radius: f64, k: usize, lane: usize) {
    let dist = simd::dist2_lane_vs(v, center, k, lane);
    if dist <= radius || dist == 0.0 {
        return;
    }
    let scale = radius / dist;
    for (i, &ci) in center.iter().enumerate() {
        let idx = i * k + lane;
        v[idx] = ci + scale * (v[idx] - ci);
    }
}

/// [`crate::prox::project_box`] on one strided lane of a panel.
fn clamp_box_lane(v: &mut [f64], lo: &[f64], hi: &[f64], k: usize, lane: usize) {
    for (i, (&l, &h)) in lo.iter().zip(hi).enumerate() {
        let idx = i * k + lane;
        v[idx] = v[idx].clamp(l, h);
    }
}

/// The serial weighted-ℓ₁ sum `Σ wᵢ·|αᵢ|` over one strided lane.
fn weighted_norm1_lane(panel: &[f64], w: &[f64], k: usize, lane: usize) -> f64 {
    w.iter()
        .enumerate()
        .map(|(i, &wi)| wi * panel[i * k + lane].abs())
        .sum()
}

/// Copies lane `lane` of `src` into the same lane of `dst` (both `len × k`
/// panels) — the per-lane snapshot update of the PDHG convergence check.
fn copy_lane(src: &[f64], dst: &mut [f64], k: usize, lane: usize, len: usize) {
    for i in 0..len {
        dst[i * k + lane] = src[i * k + lane];
    }
}

#[allow(clippy::too_many_arguments)]
fn finalize_pdhg_lane(
    p: &BpdnProblem<'_>,
    observer: &mut dyn IterationObserver,
    x_panel: &[f64],
    k: usize,
    lane: usize,
    iterations: usize,
    stop: StopReason,
    converged: bool,
    started: Instant,
    fin_sig: &mut [f64],
    fin_ax: &mut [f64],
    fin_coeffs: &mut [f64],
    fin_dwt_scratch: &mut [f64],
    fin_op_scratch: &mut [f64],
    ws: &mut SolverWorkspace,
) -> RecoveryResult {
    // Gather to a contiguous vector and run the exact serial epilogue.
    simd::gather_lane(x_panel, k, lane, fin_sig);
    if let Some((lo, hi)) = p.box_bounds {
        crate::prox::project_box(fin_sig, lo, hi);
    }
    p.sensing.apply_into(fin_sig, fin_ax, fin_op_scratch);
    let residual = vector::dist2(fin_ax, p.measurements);
    p.dwt
        .forward_into(fin_sig, fin_coeffs, fin_dwt_scratch)
        .expect("length validated");
    let objective = vector::norm1(fin_coeffs);
    let mut signal = ws.acquire(fin_sig.len());
    signal.copy_from_slice(fin_sig);
    observer.on_complete(&ConvergenceTrace {
        solver: "pdhg",
        iterations,
        stop_reason: stop,
        wall_time: started.elapsed(),
        converged,
        final_objective: objective,
        final_residual: residual,
    });
    RecoveryResult {
        signal,
        iterations,
        converged,
        residual,
        objective,
    }
}

/// Lockstep batched [`solve_pdhg_workspace`](crate::solve_pdhg_workspace):
/// solves every window of `batch` simultaneously over K-wide panels, filling
/// `out[w]` with window `w`'s result. Per window, the result and the
/// observer event stream are **bit-identical** to the serial solve — see the
/// [module docs](self) for why. `observers[w]` observes window `w`.
///
/// `out` is an out-parameter (cleared and refilled) so a caller looping over
/// shard flushes reuses its capacity; returned signals are workspace buffers
/// to hand back via [`SolverWorkspace::release`]. With a warmed workspace
/// the whole batch solve performs zero heap allocations.
///
/// # Errors
///
/// Returns [`SolverError`] on bad options or when `observers` does not match
/// the batch width. (Window validation happened in [`BatchProblem::new`].)
pub fn solve_pdhg_batch_workspace(
    batch: &BatchProblem<'_, '_>,
    options: &PdhgOptions,
    observers: &mut [&mut dyn IterationObserver],
    ws: &mut SolverWorkspace,
    out: &mut Vec<Option<RecoveryResult>>,
) -> Result<(), SolverError> {
    let started = Instant::now();
    pdhg::validate_options(options)?;
    check_observers(observers, batch.len())?;
    out.clear();
    out.resize_with(batch.len(), || None);
    let Some(first) = batch.problems().first() else {
        return Ok(());
    };

    let n = first.signal_len();
    let m = first.measurement_len();
    let a = first.sensing;
    let dwt = first.dwt;
    let has_box = first.box_bounds.is_some();
    let has_weights = first.coefficient_weights.is_some();
    let k0 = batch.len();

    let norm_a = a.norm_est();
    let norm_k = (norm_a * norm_a + if has_box { 1.0 } else { 0.0 })
        .sqrt()
        .max(1e-12);
    let gamma = 0.99 / norm_k;
    let tau = gamma * options.step_ratio;
    let dual_step = gamma / options.step_ratio;

    // Persistent panels — repacked with `drop_lane` when a window retires.
    let mut x = ws.acquire_panel(n, k0);
    let mut x_bar = ws.acquire_panel(n, k0);
    let mut z1 = ws.acquire_panel(m, k0);
    // `z2` stays zero-filled without a box so the primal gradient computes
    // `at + 0.0` exactly like the serial loop (signed zeros included).
    let mut z2 = ws.acquire_panel(n, k0);
    let mut snapshot = ws.acquire_panel(n, k0);
    let mut weight_panel = ws.acquire_panel(if has_weights { n } else { 0 }, k0);
    // Transient panels — fully rewritten every iteration, never repacked;
    // the live region is always the `rows * k` prefix.
    let mut ax = ws.acquire_panel(m, k0);
    let mut at_z1 = ws.acquire_panel(n, k0);
    let mut ball_point = ws.acquire_panel(m, k0);
    let mut box_point = ws.acquire_panel(n, k0);
    let mut w = ws.acquire_panel(n, k0);
    let mut coeffs = ws.acquire_panel(n, k0);
    let mut x_new = ws.acquire_panel(n, k0);
    let mut dwt_scratch = ws.acquire(hybridcs_dsp::Dwt::panel_scratch_len(n, k0));
    let mut op_scratch = ws.acquire(a.batch_scratch_len(k0));
    // Serial-shape scratch for per-window init and finalisation.
    let mut fin_sig = ws.acquire(n);
    let mut fin_ax = ws.acquire(m);
    let mut fin_coeffs = ws.acquire(n);
    let mut fin_dwt_scratch = ws.acquire(hybridcs_dsp::Dwt::scratch_len(n));
    let mut fin_op_scratch = ws.acquire(a.scratch_len());
    let mut tau_lane = ws.acquire(k0);
    tau_lane.iter_mut().for_each(|t| *t = tau);
    let mut lane2win = ws.acquire_indices(k0);
    lane2win.extend(0..k0);
    let mut retire = ws.acquire_indices(k0);

    for (lane, p) in batch.problems().iter().enumerate() {
        p.initial_point_into(&mut fin_sig);
        simd::scatter_lane(&fin_sig, k0, lane, &mut x);
        if let Some(wc) = p.coefficient_weights {
            simd::scatter_lane(wc, k0, lane, &mut weight_panel);
        }
    }
    x_bar.copy_from_slice(&x);
    snapshot.copy_from_slice(&x);

    let mut k = k0;
    let mut iter = 0;
    while iter < options.max_iterations && k > 0 {
        iter += 1;
        let (nk, mk) = (n * k, m * k);

        // Dual ascent on the fidelity ball: z1 ← v − ς·Π_ball(v/ς).
        a.apply_batch_into(&x_bar[..nk], k, &mut ax[..mk], &mut op_scratch);
        simd::axpy(dual_step, &ax[..mk], &mut z1[..mk]);
        simd::div_by(&z1[..mk], dual_step, &mut ball_point[..mk]);
        for (lane, &win) in lane2win.iter().enumerate() {
            let p = &batch.problems()[win];
            project_l2_ball_lane(&mut ball_point[..mk], p.measurements, p.sigma, k, lane);
        }
        simd::sub_scaled(dual_step, &ball_point[..mk], &mut z1[..mk]);

        // Dual ascent on the box: z2 ← v − ς·Π_box(v/ς).
        if has_box {
            simd::axpy(dual_step, &x_bar[..nk], &mut z2[..nk]);
            simd::div_by(&z2[..nk], dual_step, &mut box_point[..nk]);
            for (lane, &win) in lane2win.iter().enumerate() {
                let (lo, hi) = batch.problems()[win]
                    .box_bounds
                    .expect("uniform box presence");
                clamp_box_lane(&mut box_point[..nk], lo, hi, k, lane);
            }
            simd::sub_scaled(dual_step, &box_point[..nk], &mut z2[..nk]);
        }

        // Primal descent with the ℓ₁-in-Ψ prox.
        a.apply_adjoint_batch_into(&z1[..mk], k, &mut at_z1[..nk], &mut op_scratch);
        crate::simd::grad_step_lanes(&x[..nk], &at_z1[..nk], &z2[..nk], tau, &mut w[..nk]);
        dwt.forward_panel_into(&w[..nk], k, &mut coeffs[..nk], &mut dwt_scratch)
            .expect("length validated");
        if has_weights {
            crate::simd::soft_threshold_weighted_lanes(
                &mut coeffs[..nk],
                &tau_lane[..k],
                &weight_panel[..nk],
                k,
            );
        } else {
            crate::simd::soft_threshold_lanes(&mut coeffs[..nk], &tau_lane[..k], k);
        }
        dwt.inverse_panel_into(&coeffs[..nk], k, &mut x_new[..nk], &mut dwt_scratch)
            .expect("length validated");
        crate::simd::over_relax_lanes(&x_new[..nk], &x[..nk], &mut x_bar[..nk]);
        std::mem::swap(&mut x, &mut x_new);

        if lane2win.iter().any(|&win| observers[win].active()) {
            // `ax` is recomputed from `x_bar` at the top of the loop, so it
            // is safe to reuse here for the fidelity residuals.
            a.apply_batch_into(&x[..nk], k, &mut ax[..mk], &mut op_scratch);
            for (lane, &win) in lane2win.iter().enumerate() {
                if observers[win].active() {
                    let p = &batch.problems()[win];
                    observers[win].on_iteration(&IterationEvent {
                        iteration: iter,
                        objective: simd::norm1_lane(&coeffs[..nk], k, lane, n),
                        residual: simd::dist2_lane_vs(&ax[..mk], p.measurements, k, lane),
                        step_size: Some(tau),
                    });
                }
            }
        }

        retire.clear();
        for (lane, &win) in lane2win.iter().enumerate() {
            if observers[win].should_abort() {
                retire.push(lane * 4 + RETIRE_ABORTED);
                continue;
            }
            if iter % options.check_interval == 0 {
                let change = simd::dist2_lane(&x[..nk], &snapshot[..nk], k, lane, n);
                let scale = simd::norm2_lane(&x[..nk], k, lane, n).max(1e-12);
                copy_lane(&x[..nk], &mut snapshot[..nk], k, lane, n);
                if change <= options.tolerance * scale {
                    retire.push(lane * 4 + RETIRE_CONVERGED);
                }
            }
        }
        for &mark in retire.iter().rev() {
            let (lane, reason) = (mark / 4, mark % 4);
            let win = lane2win[lane];
            let (stop, converged) = retire_outcome(reason);
            out[win] = Some(finalize_pdhg_lane(
                &batch.problems()[win],
                &mut *observers[win],
                &x[..n * k],
                k,
                lane,
                iter,
                stop,
                converged,
                started,
                &mut fin_sig,
                &mut fin_ax,
                &mut fin_coeffs,
                &mut fin_dwt_scratch,
                &mut fin_op_scratch,
                ws,
            ));
            simd::drop_lane(&mut x, k, lane, n);
            simd::drop_lane(&mut x_bar, k, lane, n);
            simd::drop_lane(&mut z1, k, lane, m);
            simd::drop_lane(&mut z2, k, lane, n);
            simd::drop_lane(&mut snapshot, k, lane, n);
            if has_weights {
                simd::drop_lane(&mut weight_panel, k, lane, n);
            }
            tau_lane.remove(lane);
            lane2win.remove(lane);
            k -= 1;
        }
    }

    // Budget exhausted: remaining lanes report MaxIterations, like serial.
    for (lane, &win) in lane2win.iter().enumerate() {
        out[win] = Some(finalize_pdhg_lane(
            &batch.problems()[win],
            &mut *observers[win],
            &x[..n * k],
            k,
            lane,
            iter,
            StopReason::MaxIterations,
            false,
            started,
            &mut fin_sig,
            &mut fin_ax,
            &mut fin_coeffs,
            &mut fin_dwt_scratch,
            &mut fin_op_scratch,
            ws,
        ));
    }

    for buf in [
        x,
        x_bar,
        z1,
        z2,
        snapshot,
        weight_panel,
        ax,
        at_z1,
        ball_point,
        box_point,
        w,
        coeffs,
        x_new,
        dwt_scratch,
        op_scratch,
        fin_sig,
        fin_ax,
        fin_coeffs,
        fin_dwt_scratch,
        fin_op_scratch,
        tau_lane,
    ] {
        ws.release(buf);
    }
    ws.release_indices(lane2win);
    ws.release_indices(retire);
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn finalize_fista_lane(
    p: &BpdnProblem<'_>,
    observer: &mut dyn IterationObserver,
    alpha_panel: &[f64],
    k: usize,
    lane: usize,
    iterations: usize,
    stop: StopReason,
    converged: bool,
    started: Instant,
    fin_coeffs: &mut [f64],
    fin_ax: &mut [f64],
    fin_dwt_scratch: &mut [f64],
    fin_op_scratch: &mut [f64],
    ws: &mut SolverWorkspace,
) -> RecoveryResult {
    simd::gather_lane(alpha_panel, k, lane, fin_coeffs);
    let mut signal = ws.acquire(fin_coeffs.len());
    p.dwt
        .inverse_into(fin_coeffs, &mut signal, fin_dwt_scratch)
        .expect("length validated");
    p.sensing.apply_into(&signal, fin_ax, fin_op_scratch);
    let residual = vector::dist2(fin_ax, p.measurements);
    let objective = vector::norm1(fin_coeffs);
    observer.on_complete(&ConvergenceTrace {
        solver: "fista",
        iterations,
        stop_reason: stop,
        wall_time: started.elapsed(),
        converged,
        final_objective: objective,
        final_residual: residual,
    });
    RecoveryResult {
        signal,
        iterations,
        converged,
        residual,
        objective,
    }
}

/// Lockstep batched [`solve_fista_workspace`](crate::solve_fista_workspace)
/// with the same out-parameter and bit-identity contract as
/// [`solve_pdhg_batch_workspace`]. The data-driven λ (when
/// [`FistaOptions::lambda`] is `None`) is computed per lane from that
/// window's own `‖Aᵀy‖∞`, exactly as the serial solver does.
///
/// # Errors
///
/// Same conditions as [`solve_pdhg_batch_workspace`], plus non-positive
/// `lambda`.
pub fn solve_fista_batch_workspace(
    batch: &BatchProblem<'_, '_>,
    options: &FistaOptions,
    observers: &mut [&mut dyn IterationObserver],
    ws: &mut SolverWorkspace,
    out: &mut Vec<Option<RecoveryResult>>,
) -> Result<(), SolverError> {
    let started = Instant::now();
    if options.max_iterations == 0 {
        return Err(SolverError::BadParameter {
            name: "max_iterations",
            value: 0.0,
        });
    }
    if !(options.tolerance > 0.0 && options.tolerance.is_finite()) {
        return Err(SolverError::BadParameter {
            name: "tolerance",
            value: options.tolerance,
        });
    }
    if let Some(l) = options.lambda {
        if !(l > 0.0 && l.is_finite()) {
            return Err(SolverError::BadParameter {
                name: "lambda",
                value: l,
            });
        }
    }
    check_observers(observers, batch.len())?;
    out.clear();
    out.resize_with(batch.len(), || None);
    let Some(first) = batch.problems().first() else {
        return Ok(());
    };

    let n = first.signal_len();
    let m = first.measurement_len();
    let a = first.sensing;
    let dwt = first.dwt;
    let has_weights = first.coefficient_weights.is_some();
    let k0 = batch.len();

    let norm_a = a.norm_est().max(1e-12);
    let l = norm_a * norm_a;
    let step = 1.0 / (1.01 * l);

    // Persistent panels (repacked on retirement).
    let mut alpha = ws.acquire_panel(n, k0);
    let mut momentum = ws.acquire_panel(n, k0);
    let mut y_panel = ws.acquire_panel(m, k0);
    let mut weight_panel = ws.acquire_panel(if has_weights { n } else { 0 }, k0);
    // Transient panels.
    let mut sig_tmp = ws.acquire_panel(n, k0);
    let mut aty = ws.acquire_panel(n, k0);
    let mut grad = ws.acquire_panel(n, k0);
    let mut alpha_new = ws.acquire_panel(n, k0);
    let mut res = ws.acquire_panel(m, k0);
    let mut dwt_scratch = ws.acquire(hybridcs_dsp::Dwt::panel_scratch_len(n, k0));
    let mut op_scratch = ws.acquire(a.batch_scratch_len(k0));
    // Serial-shape finalisation scratch.
    let mut fin_coeffs = ws.acquire(n);
    let mut fin_ax = ws.acquire(m);
    let mut fin_dwt_scratch = ws.acquire(hybridcs_dsp::Dwt::scratch_len(n));
    let mut fin_op_scratch = ws.acquire(a.scratch_len());
    // Per-lane state: λ and the prox threshold step·λ retire with their
    // lane; change/scale are recomputed every iteration.
    let mut lambda_lane = ws.acquire(k0);
    let mut thr_lane = ws.acquire(k0);
    let mut change_lane = ws.acquire(k0);
    let mut scale_lane = ws.acquire(k0);
    let mut lane2win = ws.acquire_indices(k0);
    lane2win.extend(0..k0);
    let mut retire = ws.acquire_indices(k0);

    for (lane, p) in batch.problems().iter().enumerate() {
        simd::scatter_lane(p.measurements, k0, lane, &mut y_panel);
        if let Some(wc) = p.coefficient_weights {
            simd::scatter_lane(wc, k0, lane, &mut weight_panel);
        }
    }
    // Per-lane λ from Aᵀy, exactly like the serial data-driven scale.
    a.apply_adjoint_batch_into(&y_panel, k0, &mut sig_tmp, &mut op_scratch);
    dwt.forward_panel_into(&sig_tmp, k0, &mut aty, &mut dwt_scratch)
        .expect("length validated");
    for lane in 0..k0 {
        lambda_lane[lane] = match options.lambda {
            Some(l) => l,
            None => 0.1 * simd::norm_inf_lane(&aty, k0, lane, n).max(1e-12),
        };
        thr_lane[lane] = step * lambda_lane[lane];
    }

    let mut t = 1.0_f64;
    let mut k = k0;
    let mut iter = 0;
    while iter < options.max_iterations && k > 0 {
        iter += 1;
        let (nk, mk) = (n * k, m * k);

        // Gradient step at the momentum point: res = A·momentum − y.
        dwt.inverse_panel_into(&momentum[..nk], k, &mut sig_tmp[..nk], &mut dwt_scratch)
            .expect("length validated");
        a.apply_batch_into(&sig_tmp[..nk], k, &mut res[..mk], &mut op_scratch);
        // `r − 1.0·y` is IEEE-identical to the serial `r −= y`.
        simd::sub_scaled(1.0, &y_panel[..mk], &mut res[..mk]);
        a.apply_adjoint_batch_into(&res[..mk], k, &mut sig_tmp[..nk], &mut op_scratch);
        dwt.forward_panel_into(&sig_tmp[..nk], k, &mut grad[..nk], &mut dwt_scratch)
            .expect("length validated");
        alpha_new[..nk].copy_from_slice(&momentum[..nk]);
        simd::axpy(-step, &grad[..nk], &mut alpha_new[..nk]);
        if has_weights {
            crate::simd::soft_threshold_weighted_lanes(
                &mut alpha_new[..nk],
                &thr_lane[..k],
                &weight_panel[..nk],
                k,
            );
        } else {
            crate::simd::soft_threshold_lanes(&mut alpha_new[..nk], &thr_lane[..k], k);
        }

        // Nesterov momentum (t is iteration-only state, shared by lanes).
        let t_new = 0.5 * (1.0 + (1.0 + 4.0 * t * t).sqrt());
        let beta = (t - 1.0) / t_new;
        crate::simd::momentum_lanes(&alpha_new[..nk], &alpha[..nk], beta, &mut momentum[..nk]);
        for lane in 0..k {
            change_lane[lane] = simd::dist2_lane(&alpha_new[..nk], &alpha[..nk], k, lane, n);
            scale_lane[lane] = simd::norm2_lane(&alpha_new[..nk], k, lane, n).max(1e-12);
        }
        std::mem::swap(&mut alpha, &mut alpha_new);
        t = t_new;

        if lane2win.iter().any(|&win| observers[win].active()) {
            dwt.inverse_panel_into(&alpha[..nk], k, &mut sig_tmp[..nk], &mut dwt_scratch)
                .expect("length validated");
            a.apply_batch_into(&sig_tmp[..nk], k, &mut res[..mk], &mut op_scratch);
            simd::sub_scaled(1.0, &y_panel[..mk], &mut res[..mk]);
            for (lane, &win) in lane2win.iter().enumerate() {
                if observers[win].active() {
                    let fid = simd::norm2_lane(&res[..mk], k, lane, m);
                    let l1 = match batch.problems()[win].coefficient_weights {
                        Some(weights) => weighted_norm1_lane(&alpha[..nk], weights, k, lane),
                        None => simd::norm1_lane(&alpha[..nk], k, lane, n),
                    };
                    observers[win].on_iteration(&IterationEvent {
                        iteration: iter,
                        objective: 0.5 * fid * fid + lambda_lane[lane] * l1,
                        residual: fid,
                        step_size: Some(step),
                    });
                }
            }
        }

        retire.clear();
        for (lane, &win) in lane2win.iter().enumerate() {
            if observers[win].should_abort() {
                retire.push(lane * 4 + RETIRE_ABORTED);
            } else if change_lane[lane] <= options.tolerance * scale_lane[lane] {
                retire.push(lane * 4 + RETIRE_CONVERGED);
            }
        }
        for &mark in retire.iter().rev() {
            let (lane, reason) = (mark / 4, mark % 4);
            let win = lane2win[lane];
            let (stop, converged) = retire_outcome(reason);
            out[win] = Some(finalize_fista_lane(
                &batch.problems()[win],
                &mut *observers[win],
                &alpha[..n * k],
                k,
                lane,
                iter,
                stop,
                converged,
                started,
                &mut fin_coeffs,
                &mut fin_ax,
                &mut fin_dwt_scratch,
                &mut fin_op_scratch,
                ws,
            ));
            simd::drop_lane(&mut alpha, k, lane, n);
            simd::drop_lane(&mut momentum, k, lane, n);
            simd::drop_lane(&mut y_panel, k, lane, m);
            if has_weights {
                simd::drop_lane(&mut weight_panel, k, lane, n);
            }
            lambda_lane.remove(lane);
            thr_lane.remove(lane);
            lane2win.remove(lane);
            k -= 1;
        }
    }

    for (lane, &win) in lane2win.iter().enumerate() {
        out[win] = Some(finalize_fista_lane(
            &batch.problems()[win],
            &mut *observers[win],
            &alpha[..n * k],
            k,
            lane,
            iter,
            StopReason::MaxIterations,
            false,
            started,
            &mut fin_coeffs,
            &mut fin_ax,
            &mut fin_dwt_scratch,
            &mut fin_op_scratch,
            ws,
        ));
    }

    for buf in [
        alpha,
        momentum,
        y_panel,
        weight_panel,
        sig_tmp,
        aty,
        grad,
        alpha_new,
        res,
        dwt_scratch,
        op_scratch,
        fin_coeffs,
        fin_ax,
        fin_dwt_scratch,
        fin_op_scratch,
        lambda_lane,
        thr_lane,
        change_lane,
        scale_lane,
    ] {
        ws.release(buf);
    }
    ws.release_indices(lane2win);
    ws.release_indices(retire);
    Ok(())
}

/// `out[i*k + lane] = Σ_j a[i][j]·x[j*k + lane]` — the batched dense
/// matvec, per lane exactly [`Matrix::matvec_into`] (row dot products in
/// ascending order).
fn matvec_panel(a: &Matrix, x_panel: &[f64], k: usize, out_panel: &mut [f64]) {
    for i in 0..a.nrows() {
        simd::dot_lanes(x_panel, a.row(i), k, &mut out_panel[i * k..(i + 1) * k]);
    }
}

/// `residual = y − ax`, element-wise over same-shape panels.
fn residual_panel(y_panel: &[f64], ax: &[f64], residual: &mut [f64]) {
    for ((r, &yi), &axi) in residual.iter_mut().zip(y_panel).zip(ax) {
        *r = yi - axi;
    }
}

#[allow(clippy::too_many_arguments)]
fn finalize_iht_lane(
    a: &Matrix,
    y: &[f64],
    observer: &mut dyn IterationObserver,
    alpha_panel: &[f64],
    k: usize,
    lane: usize,
    iterations: usize,
    stop: StopReason,
    converged: bool,
    started: Instant,
    fin_ax: &mut [f64],
    fin_res: &mut [f64],
    ws: &mut SolverWorkspace,
) -> RecoveryResult {
    let mut signal = ws.acquire(a.ncols());
    simd::gather_lane(alpha_panel, k, lane, &mut signal);
    a.matvec_into(&signal, fin_ax);
    for (r, (&yi, &axi)) in fin_res.iter_mut().zip(y.iter().zip(fin_ax.iter())) {
        *r = yi - axi;
    }
    let res_norm = vector::norm2(fin_res);
    let objective = vector::norm1(&signal);
    observer.on_complete(&ConvergenceTrace {
        solver: "iht",
        iterations,
        stop_reason: stop,
        wall_time: started.elapsed(),
        converged,
        final_objective: objective,
        final_residual: res_norm,
    });
    RecoveryResult {
        signal,
        iterations,
        converged,
        residual: res_norm,
        objective,
    }
}

/// Lockstep batched [`solve_iht_workspace`](crate::solve_iht_workspace):
/// iterative hard thresholding over K measurement windows of one explicit
/// `A = ΦΨ` matrix, with the same out-parameter and bit-identity contract as
/// [`solve_pdhg_batch_workspace`]. The returned signals hold coefficient
/// vectors, like the serial greedy solvers.
///
/// # Errors
///
/// Same conditions as [`solve_iht_workspace`] (validated per window), plus
/// an observer-count mismatch.
pub fn solve_iht_batch_workspace(
    a: &Matrix,
    measurements: &[&[f64]],
    options: &GreedyOptions,
    observers: &mut [&mut dyn IterationObserver],
    ws: &mut SolverWorkspace,
    out: &mut Vec<Option<RecoveryResult>>,
) -> Result<(), SolverError> {
    let started = Instant::now();
    for y in measurements {
        crate::greedy::validate(a, y, options)?;
    }
    check_observers(observers, measurements.len())?;
    let step = match options.step {
        Some(mu) => {
            if !(mu > 0.0 && mu.is_finite()) {
                return Err(SolverError::BadParameter {
                    name: "step",
                    value: mu,
                });
            }
            mu
        }
        None => {
            let (norm, _) = hybridcs_linalg::operator_norm_est(
                a.ncols(),
                a.nrows(),
                |x, out| a.matvec_into(x, out),
                |v, out| a.matvec_transpose_into(v, out),
                hybridcs_linalg::PowerIterationOptions::default(),
            );
            1.0 / (norm * norm).max(1e-12)
        }
    };
    out.clear();
    out.resize_with(measurements.len(), || None);
    if measurements.is_empty() {
        return Ok(());
    }

    let n = a.ncols();
    let m = a.nrows();
    let s = options.max_sparsity;
    let k0 = measurements.len();

    // Persistent panels.
    let mut alpha = ws.acquire_panel(n, k0);
    let mut y_panel = ws.acquire_panel(m, k0);
    // Transient panels and serial-shape scratch.
    let mut ax = ws.acquire_panel(m, k0);
    let mut residual = ws.acquire_panel(m, k0);
    let mut grad = ws.acquire_panel(n, k0);
    let mut next = ws.acquire_panel(n, k0);
    let mut thresholded = ws.acquire_panel(n, k0);
    let mut tmp_next = ws.acquire(n);
    let mut fin_ax = ws.acquire(m);
    let mut fin_res = ws.acquire(m);
    let mut change_lane = ws.acquire(k0);
    let mut keep = ws.acquire_indices(n);
    let mut lane2win = ws.acquire_indices(k0);
    lane2win.extend(0..k0);
    let mut retire = ws.acquire_indices(k0);

    for (lane, y) in measurements.iter().enumerate() {
        simd::scatter_lane(y, k0, lane, &mut y_panel);
    }

    let mut k = k0;
    let mut iter = 0;
    'outer: while iter < options.max_iterations && k > 0 {
        iter += 1;
        let (nk, mk) = (n * k, m * k);

        matvec_panel(a, &alpha[..nk], k, &mut ax[..mk]);
        residual_panel(&y_panel[..mk], &ax[..mk], &mut residual[..mk]);

        // The serial solver breaks on a small residual before the gradient
        // step: retire those lanes now, then recompute the residual panel at
        // the reduced stride for the survivors (identical values — only the
        // layout changed).
        retire.clear();
        for lane in 0..k {
            if simd::norm2_lane(&residual[..mk], k, lane, m) <= options.residual_tolerance {
                retire.push(lane * 4 + RETIRE_CONVERGED);
            }
        }
        if !retire.is_empty() {
            for &mark in retire.iter().rev() {
                let lane = mark / 4;
                let win = lane2win[lane];
                out[win] = Some(finalize_iht_lane(
                    a,
                    measurements[win],
                    &mut *observers[win],
                    &alpha[..n * k],
                    k,
                    lane,
                    iter,
                    StopReason::Converged,
                    true,
                    started,
                    &mut fin_ax,
                    &mut fin_res,
                    ws,
                ));
                simd::drop_lane(&mut alpha, k, lane, n);
                simd::drop_lane(&mut y_panel, k, lane, m);
                lane2win.remove(lane);
                k -= 1;
            }
            if k == 0 {
                break 'outer;
            }
            let (nk, mk) = (n * k, m * k);
            matvec_panel(a, &alpha[..nk], k, &mut ax[..mk]);
            residual_panel(&y_panel[..mk], &ax[..mk], &mut residual[..mk]);
        }
        let (nk, mk) = (n * k, m * k);

        // Gradient: grad = Aᵀ·residual, row-accumulated like the serial
        // transpose matvec.
        grad[..nk].fill(0.0);
        for i in 0..m {
            simd::rank1_lanes(&residual[i * k..(i + 1) * k], a.row(i), k, &mut grad[..nk]);
        }
        next[..nk].copy_from_slice(&alpha[..nk]);
        simd::axpy(step, &grad[..nk], &mut next[..nk]);
        // Hard threshold to the s largest entries, per lane.
        thresholded[..nk].fill(0.0);
        for lane in 0..k {
            simd::gather_lane(&next[..nk], k, lane, &mut tmp_next);
            vector::top_k_abs_indices_into(&tmp_next, s, &mut keep);
            for &i in &keep {
                thresholded[i * k + lane] = next[i * k + lane];
            }
            change_lane[lane] = simd::dist2_lane(&thresholded[..nk], &alpha[..nk], k, lane, n);
        }
        std::mem::swap(&mut alpha, &mut thresholded);

        if lane2win.iter().any(|&win| observers[win].active()) {
            matvec_panel(a, &alpha[..nk], k, &mut ax[..mk]);
            residual_panel(&y_panel[..mk], &ax[..mk], &mut residual[..mk]);
            for (lane, &win) in lane2win.iter().enumerate() {
                if observers[win].active() {
                    observers[win].on_iteration(&IterationEvent {
                        iteration: iter,
                        objective: simd::norm1_lane(&alpha[..nk], k, lane, n),
                        residual: simd::norm2_lane(&residual[..mk], k, lane, m),
                        step_size: Some(step),
                    });
                }
            }
        }

        retire.clear();
        for (lane, &win) in lane2win.iter().enumerate() {
            if observers[win].should_abort() {
                retire.push(lane * 4 + RETIRE_ABORTED);
            } else if change_lane[lane]
                <= 1e-10 * simd::norm2_lane(&alpha[..nk], k, lane, n).max(1.0)
            {
                retire.push(lane * 4 + RETIRE_STAGNATED);
            }
        }
        for &mark in retire.iter().rev() {
            let (lane, reason) = (mark / 4, mark % 4);
            let win = lane2win[lane];
            let (stop, converged) = retire_outcome(reason);
            out[win] = Some(finalize_iht_lane(
                a,
                measurements[win],
                &mut *observers[win],
                &alpha[..n * k],
                k,
                lane,
                iter,
                stop,
                converged,
                started,
                &mut fin_ax,
                &mut fin_res,
                ws,
            ));
            simd::drop_lane(&mut alpha, k, lane, n);
            simd::drop_lane(&mut y_panel, k, lane, m);
            lane2win.remove(lane);
            k -= 1;
        }
    }

    for (lane, &win) in lane2win.iter().enumerate() {
        out[win] = Some(finalize_iht_lane(
            a,
            measurements[win],
            &mut *observers[win],
            &alpha[..n * k],
            k,
            lane,
            iter,
            StopReason::MaxIterations,
            false,
            started,
            &mut fin_ax,
            &mut fin_res,
            ws,
        ));
    }

    for buf in [
        alpha,
        y_panel,
        ax,
        residual,
        grad,
        next,
        thresholded,
        tmp_next,
        fin_ax,
        fin_res,
        change_lane,
    ] {
        ws.release(buf);
    }
    ws.release_indices(keep);
    ws.release_indices(lane2win);
    ws.release_indices(retire);
    Ok(())
}

/// Lockstep batched
/// [`solve_reweighted_workspace`](crate::solve_reweighted_workspace):
/// iteratively-reweighted ℓ₁ where every reweighting round runs **one**
/// batched PDHG solve over the windows still active (a window leaves the
/// round rotation only when its observer aborts, exactly like the serial
/// outer loop). Per window, results and forwarded iteration events are
/// bit-identical to the serial solve.
///
/// The outer loop allocates per round (round-problem marshalling); the hot
/// inner iterations are the allocation-free batched PDHG.
///
/// # Errors
///
/// Same conditions as [`solve_pdhg_batch_workspace`], plus out-of-range
/// outer options.
pub fn solve_reweighted_batch_workspace(
    batch: &BatchProblem<'_, '_>,
    options: &ReweightedOptions,
    observers: &mut [&mut dyn IterationObserver],
    ws: &mut SolverWorkspace,
    out: &mut Vec<Option<RecoveryResult>>,
) -> Result<(), SolverError> {
    let started = Instant::now();
    if options.outer_iterations == 0 {
        return Err(SolverError::BadParameter {
            name: "outer_iterations",
            value: 0.0,
        });
    }
    if !(options.epsilon_rel > 0.0 && options.epsilon_rel.is_finite()) {
        return Err(SolverError::BadParameter {
            name: "epsilon_rel",
            value: options.epsilon_rel,
        });
    }
    check_observers(observers, batch.len())?;
    out.clear();
    out.resize_with(batch.len(), || None);
    let Some(first) = batch.problems().first() else {
        return Ok(());
    };

    let n = first.signal_len();
    let dwt = first.dwt;
    let kw = batch.len();
    let mut dwt_scratch = ws.acquire(hybridcs_dsp::Dwt::scratch_len(n));
    let mut coeffs = ws.acquire(n);

    let mut weights_store: Vec<Vec<f64>> = (0..kw).map(|_| vec![0.0; n]).collect();
    let mut totals = vec![0usize; kw];
    let mut results: Vec<Option<RecoveryResult>> = (0..kw).map(|_| None).collect();
    let mut round_out: Vec<Option<RecoveryResult>> = Vec::new();
    let mut aborted = vec![false; kw];
    let mut active: Vec<usize> = (0..kw).collect();
    // Presence stays batch-uniform: round 0 uses every window's original
    // weights (uniform by construction), later rounds all use reweighted.
    let mut have_weights = false;

    for _round in 0..options.outer_iterations {
        if active.is_empty() {
            break;
        }
        {
            let round_problems: Vec<BpdnProblem<'_>> = active
                .iter()
                .map(|&wi| {
                    let p = &batch.problems()[wi];
                    BpdnProblem {
                        sensing: p.sensing,
                        dwt: p.dwt,
                        measurements: p.measurements,
                        sigma: p.sigma,
                        box_bounds: p.box_bounds,
                        coefficient_weights: if have_weights {
                            Some(weights_store[wi].as_slice())
                        } else {
                            p.coefficient_weights
                        },
                    }
                })
                .collect();
            let round_batch = BatchProblem::new(&round_problems)?;
            // Distinct `&mut` borrows for the active windows' observers,
            // each wrapped to offset iteration numbers by rounds so far.
            let mut forwards: Vec<OffsetForward<'_>> = Vec::with_capacity(active.len());
            let mut ai = 0;
            for (wi, obs) in observers.iter_mut().enumerate() {
                if ai < active.len() && active[ai] == wi {
                    forwards.push(OffsetForward {
                        inner: &mut **obs,
                        offset: totals[wi],
                    });
                    ai += 1;
                }
            }
            let mut fw_refs: Vec<&mut dyn IterationObserver> = forwards
                .iter_mut()
                .map(|f| f as &mut dyn IterationObserver)
                .collect();
            solve_pdhg_batch_workspace(
                &round_batch,
                &options.inner,
                &mut fw_refs,
                ws,
                &mut round_out,
            )?;
        }

        let round_windows = std::mem::take(&mut active);
        for (ai, &wi) in round_windows.iter().enumerate() {
            let result = round_out[ai].take().expect("batch PDHG fills every window");
            totals[wi] += result.iterations;

            // Next round's weights from this round's coefficients.
            dwt.forward_into(&result.signal, &mut coeffs, &mut dwt_scratch)
                .expect("length validated");
            let max = coeffs.iter().fold(0.0_f64, |m, c| m.max(c.abs()));
            let eps = (options.epsilon_rel * max).max(f64::MIN_POSITIVE);
            for (w, c) in weights_store[wi].iter_mut().zip(&coeffs) {
                *w = eps / (c.abs() + eps);
            }

            if let Some(prev) = results[wi].take() {
                ws.release(prev.signal);
            }
            results[wi] = Some(result);
            if observers[wi].should_abort() {
                aborted[wi] = true;
            } else {
                active.push(wi);
            }
        }
        have_weights = true;
    }

    for wi in 0..kw {
        let mut result = results[wi].take().expect("outer_iterations >= 1");
        result.iterations = totals[wi];
        observers[wi].on_complete(&ConvergenceTrace {
            solver: "reweighted",
            iterations: totals[wi],
            stop_reason: if aborted[wi] {
                StopReason::Aborted
            } else if result.converged {
                StopReason::Converged
            } else {
                StopReason::MaxIterations
            },
            wall_time: started.elapsed(),
            converged: result.converged,
            final_objective: result.objective,
            final_residual: result.residual,
        });
        out[wi] = Some(result);
    }

    ws.release(dwt_scratch);
    ws.release(coeffs);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        solve_fista_workspace, solve_iht_workspace, solve_pdhg_workspace,
        solve_reweighted_workspace, DenseOperator, NoopObserver, RecordingObserver,
    };
    use hybridcs_dsp::{Dwt, Wavelet};
    use hybridcs_linalg::simd::{set_override, simd_available};
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// Serializes tests that flip the global SIMD dispatch override.
    fn tier_lock() -> MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    fn bernoulli_like(m: usize, n: usize, seed: u64) -> Matrix {
        let mut state = seed;
        Matrix::from_fn(m, n, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if (state >> 62) & 1 == 1 {
                1.0 / (n as f64).sqrt()
            } else {
                -1.0 / (n as f64).sqrt()
            }
        })
    }

    /// Per-window smooth signal with a window-dependent mix so stopping
    /// iterations genuinely differ across the batch.
    fn smooth_signal(n: usize, w: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let t = i as f64 / n as f64;
                let f = 2.0 + w as f64;
                (2.0 * std::f64::consts::PI * f * t).sin()
                    + 0.4 * (2.0 * std::f64::consts::PI * (f + 3.0) * t).cos()
                    + 0.05 * w as f64
            })
            .collect()
    }

    fn assert_result_bits(serial: &RecoveryResult, batch: &RecoveryResult, label: &str) {
        assert_eq!(serial.iterations, batch.iterations, "{label}: iterations");
        assert_eq!(serial.converged, batch.converged, "{label}: converged");
        assert_eq!(
            serial.residual.to_bits(),
            batch.residual.to_bits(),
            "{label}: residual bits"
        );
        assert_eq!(
            serial.objective.to_bits(),
            batch.objective.to_bits(),
            "{label}: objective bits"
        );
        assert_eq!(serial.signal.len(), batch.signal.len(), "{label}: length");
        for (i, (a, b)) in serial.signal.iter().zip(&batch.signal).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "{label}: signal[{i}] {a} vs {b}");
        }
    }

    fn assert_observer_bits(serial: &RecordingObserver, batch: &RecordingObserver, label: &str) {
        let se = serial.events();
        let be = batch.events();
        assert_eq!(se.len(), be.len(), "{label}: event count");
        for (i, (s, b)) in se.iter().zip(be).enumerate() {
            assert_eq!(s.iteration, b.iteration, "{label}: event[{i}] iteration");
            assert_eq!(
                s.objective.to_bits(),
                b.objective.to_bits(),
                "{label}: event[{i}] objective"
            );
            assert_eq!(
                s.residual.to_bits(),
                b.residual.to_bits(),
                "{label}: event[{i}] residual"
            );
            assert_eq!(s.step_size, b.step_size, "{label}: event[{i}] step");
        }
        let st = serial.trace().expect("serial trace");
        let bt = batch.trace().expect("batch trace");
        assert_eq!(st.solver, bt.solver, "{label}: trace solver");
        assert_eq!(st.iterations, bt.iterations, "{label}: trace iterations");
        assert_eq!(st.stop_reason, bt.stop_reason, "{label}: trace stop");
        assert_eq!(st.converged, bt.converged, "{label}: trace converged");
        assert_eq!(
            st.final_objective.to_bits(),
            bt.final_objective.to_bits(),
            "{label}: trace objective"
        );
        assert_eq!(
            st.final_residual.to_bits(),
            bt.final_residual.to_bits(),
            "{label}: trace residual"
        );
    }

    /// Runs `body` under scalar dispatch and, when the host supports it,
    /// again under forced AVX2.
    fn for_each_tier(body: impl Fn(&str)) {
        let _guard = tier_lock();
        set_override(Some(false));
        body("scalar");
        if simd_available() {
            set_override(Some(true));
            body("avx2");
        }
        set_override(None);
    }

    #[test]
    fn batch_problem_rejects_mixed_batches() {
        let n = 32;
        let op1 = DenseOperator::new(Matrix::identity(n));
        let op2 = DenseOperator::new(Matrix::identity(n));
        let dwt1 = Dwt::new(Wavelet::Haar, 2).unwrap();
        let dwt2 = Dwt::new(Wavelet::Haar, 2).unwrap();
        let y = vec![0.0; n];
        let lo = vec![-1.0; n];
        let hi = vec![1.0; n];
        let w = vec![1.0; n];
        let p = |sensing, dwt, boxed: bool, weighted: bool| BpdnProblem {
            sensing,
            dwt,
            measurements: &y,
            sigma: 0.1,
            box_bounds: if boxed {
                Some((&lo[..], &hi[..]))
            } else {
                None
            },
            coefficient_weights: if weighted { Some(&w[..]) } else { None },
        };

        // Mixed sensing operator.
        let mixed_op = [p(&op1, &dwt1, false, false), p(&op2, &dwt1, false, false)];
        assert!(matches!(
            BatchProblem::new(&mixed_op),
            Err(SolverError::BadParameter {
                name: "batch (mixed sensing operators)",
                ..
            })
        ));
        // Mixed wavelet.
        let mixed_dwt = [p(&op1, &dwt1, false, false), p(&op1, &dwt2, false, false)];
        assert!(matches!(
            BatchProblem::new(&mixed_dwt),
            Err(SolverError::BadParameter {
                name: "batch (mixed wavelet transforms)",
                ..
            })
        ));
        // Mixed box presence.
        let mixed_box = [p(&op1, &dwt1, true, false), p(&op1, &dwt1, false, false)];
        assert!(matches!(
            BatchProblem::new(&mixed_box),
            Err(SolverError::BadParameter {
                name: "batch (mixed box presence)",
                ..
            })
        ));
        // Mixed weight presence.
        let mixed_w = [p(&op1, &dwt1, false, true), p(&op1, &dwt1, false, false)];
        assert!(matches!(
            BatchProblem::new(&mixed_w),
            Err(SolverError::BadParameter {
                name: "batch (mixed weight presence)",
                ..
            })
        ));
        // Uniform batch and empty batch are fine.
        let uniform = [p(&op1, &dwt1, true, true), p(&op1, &dwt1, true, true)];
        assert!(BatchProblem::new(&uniform).is_ok());
        assert!(BatchProblem::new(&[]).is_ok());
        // Invalid window surfaces its own validation error.
        let bad_y = vec![f64::NAN; n];
        let bad = [BpdnProblem {
            sensing: &op1,
            dwt: &dwt1,
            measurements: &bad_y,
            sigma: 0.1,
            box_bounds: None,
            coefficient_weights: None,
        }];
        assert!(matches!(
            BatchProblem::new(&bad),
            Err(SolverError::NonFinite { .. })
        ));
    }

    #[test]
    fn empty_batch_solves_to_empty_out() {
        let batch = BatchProblem::new(&[]).unwrap();
        let mut ws = SolverWorkspace::new();
        let mut out = vec![Some(RecoveryResult {
            signal: vec![],
            iterations: 1,
            converged: true,
            residual: 0.0,
            objective: 0.0,
        })];
        solve_pdhg_batch_workspace(&batch, &PdhgOptions::default(), &mut [], &mut ws, &mut out)
            .unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn observer_count_mismatch_is_rejected() {
        let n = 32;
        let op = DenseOperator::new(Matrix::identity(n));
        let dwt = Dwt::new(Wavelet::Haar, 2).unwrap();
        let y = vec![0.0; n];
        let problems = [BpdnProblem {
            sensing: &op,
            dwt: &dwt,
            measurements: &y,
            sigma: 0.1,
            box_bounds: None,
            coefficient_weights: None,
        }];
        let batch = BatchProblem::new(&problems).unwrap();
        let mut ws = SolverWorkspace::new();
        let mut out = Vec::new();
        assert!(matches!(
            solve_pdhg_batch_workspace(&batch, &PdhgOptions::default(), &mut [], &mut ws, &mut out),
            Err(SolverError::DimensionMismatch {
                what: "observers vs batch windows",
                ..
            })
        ));
    }

    /// Builds K heterogeneous BPDN windows over one shared operator/DWT.
    struct PdhgFixture {
        op: DenseOperator,
        dwt: Dwt,
        ys: Vec<Vec<f64>>,
        los: Vec<Vec<f64>>,
        his: Vec<Vec<f64>>,
        weights: Vec<Vec<f64>>,
    }

    impl PdhgFixture {
        fn new(n: usize, m: usize, k: usize, seed: u64) -> Self {
            let phi = bernoulli_like(m, n, seed);
            let mut ys = Vec::new();
            let mut los = Vec::new();
            let mut his = Vec::new();
            let mut weights = Vec::new();
            for w in 0..k {
                let x = smooth_signal(n, w);
                ys.push(phi.matvec(&x));
                let d = 0.25;
                los.push(x.iter().map(|v| (v / d).floor() * d).collect());
                his.push(x.iter().map(|v| (v / d).floor() * d + d).collect());
                weights.push((0..n).map(|i| 0.5 + ((i + w) % 5) as f64 * 0.25).collect());
            }
            PdhgFixture {
                op: DenseOperator::new(phi),
                dwt: Dwt::new(Wavelet::Db4, 3).unwrap(),
                ys,
                los,
                his,
                weights,
            }
        }

        fn problems(&self, boxed: bool, weighted: bool) -> Vec<BpdnProblem<'_>> {
            (0..self.ys.len())
                .map(|w| BpdnProblem {
                    sensing: &self.op,
                    dwt: &self.dwt,
                    measurements: &self.ys[w],
                    sigma: 1e-3 * (1.0 + w as f64),
                    box_bounds: if boxed {
                        Some((&self.los[w][..], &self.his[w][..]))
                    } else {
                        None
                    },
                    coefficient_weights: if weighted {
                        Some(&self.weights[w][..])
                    } else {
                        None
                    },
                })
                .collect()
        }
    }

    fn run_pdhg_equivalence(boxed: bool, weighted: bool, k: usize, label: &str) {
        let fixture = PdhgFixture::new(64, 32, k, 7 + k as u64);
        let problems = fixture.problems(boxed, weighted);
        let options = PdhgOptions {
            max_iterations: 3000,
            tolerance: 1e-4,
            ..PdhgOptions::default()
        };

        let mut ws = SolverWorkspace::new();
        let serial: Vec<RecoveryResult> = problems
            .iter()
            .map(|p| {
                let r = solve_pdhg_workspace(p, &options, &mut NoopObserver, &mut ws).unwrap();
                RecoveryResult {
                    signal: r.signal.clone(),
                    ..r
                }
            })
            .collect();
        if k >= 3 {
            assert!(
                serial.iter().any(|r| r.iterations != serial[0].iterations),
                "{label}: fixture too homogeneous — stopping masks unexercised"
            );
        }

        let batch = BatchProblem::new(&problems).unwrap();
        let mut noops: Vec<NoopObserver> = (0..k).map(|_| NoopObserver).collect();
        let mut obs: Vec<&mut dyn IterationObserver> = noops
            .iter_mut()
            .map(|o| o as &mut dyn IterationObserver)
            .collect();
        let mut out = Vec::new();
        solve_pdhg_batch_workspace(&batch, &options, &mut obs, &mut ws, &mut out).unwrap();
        for (w, (s, b)) in serial.iter().zip(&out).enumerate() {
            let b = b.as_ref().expect("filled");
            assert_result_bits(s, b, &format!("{label} k={k} w={w}"));
        }
    }

    #[test]
    fn pdhg_batch_bit_identical_to_serial_all_k() {
        for_each_tier(|tier| {
            for k in [1, 2, 3, 4, 7, 8] {
                run_pdhg_equivalence(false, false, k, &format!("pdhg/{tier}"));
            }
        });
    }

    #[test]
    fn pdhg_batch_bit_identical_with_box_and_weights() {
        for_each_tier(|tier| {
            run_pdhg_equivalence(true, false, 5, &format!("pdhg-box/{tier}"));
            run_pdhg_equivalence(false, true, 5, &format!("pdhg-weights/{tier}"));
            run_pdhg_equivalence(true, true, 5, &format!("pdhg-box-weights/{tier}"));
        });
    }

    #[test]
    fn pdhg_batch_observer_stream_matches_serial() {
        let _guard = tier_lock();
        set_override(None);
        let k = 4;
        let fixture = PdhgFixture::new(64, 32, k, 11);
        let problems = fixture.problems(true, true);
        let options = PdhgOptions {
            max_iterations: 120,
            tolerance: 1e-4,
            ..PdhgOptions::default()
        };
        let mut ws = SolverWorkspace::new();
        let serial_obs: Vec<RecordingObserver> = problems
            .iter()
            .map(|p| {
                let mut rec = RecordingObserver::new();
                let r = solve_pdhg_workspace(p, &options, &mut rec, &mut ws).unwrap();
                ws.release(r.signal);
                rec
            })
            .collect();

        let batch = BatchProblem::new(&problems).unwrap();
        let mut batch_obs: Vec<RecordingObserver> =
            (0..k).map(|_| RecordingObserver::new()).collect();
        let mut obs: Vec<&mut dyn IterationObserver> = batch_obs
            .iter_mut()
            .map(|o| o as &mut dyn IterationObserver)
            .collect();
        let mut out = Vec::new();
        solve_pdhg_batch_workspace(&batch, &options, &mut obs, &mut ws, &mut out).unwrap();
        for (w, (s, b)) in serial_obs.iter().zip(&batch_obs).enumerate() {
            assert_observer_bits(s, b, &format!("pdhg-obs w={w}"));
        }
    }

    #[test]
    fn fista_batch_bit_identical_to_serial() {
        for_each_tier(|tier| {
            for (lambda, weighted, k) in [
                (None, false, 1),
                (None, false, 4),
                (None, true, 5),
                (Some(0.02), false, 3),
                (Some(0.02), true, 7),
            ] {
                let fixture = PdhgFixture::new(64, 32, k, 23 + k as u64);
                let problems = fixture.problems(false, weighted);
                let options = FistaOptions {
                    max_iterations: 300,
                    tolerance: 1e-6,
                    lambda,
                };
                let mut ws = SolverWorkspace::new();
                let serial: Vec<RecoveryResult> = problems
                    .iter()
                    .map(|p| {
                        let r =
                            solve_fista_workspace(p, &options, &mut NoopObserver, &mut ws).unwrap();
                        RecoveryResult {
                            signal: r.signal.clone(),
                            ..r
                        }
                    })
                    .collect();
                let batch = BatchProblem::new(&problems).unwrap();
                let mut noops: Vec<NoopObserver> = (0..k).map(|_| NoopObserver).collect();
                let mut obs: Vec<&mut dyn IterationObserver> = noops
                    .iter_mut()
                    .map(|o| o as &mut dyn IterationObserver)
                    .collect();
                let mut out = Vec::new();
                solve_fista_batch_workspace(&batch, &options, &mut obs, &mut ws, &mut out).unwrap();
                for (w, (s, b)) in serial.iter().zip(&out).enumerate() {
                    let b = b.as_ref().expect("filled");
                    assert_result_bits(s, b, &format!("fista/{tier} k={k} w={w}"));
                }
            }
        });
    }

    #[test]
    fn iht_batch_bit_identical_to_serial() {
        for_each_tier(|tier| {
            for k in [1, 3, 6] {
                let n = 64;
                let m = 40;
                let a = bernoulli_like(m, n, 31 + k as u64);
                // Sparse truths with window-dependent supports so stopping
                // iterations differ.
                let ys: Vec<Vec<f64>> = (0..k)
                    .map(|w| {
                        let mut x = vec![0.0; n];
                        for j in 0..4 {
                            x[(w * 7 + j * 11) % n] = 1.0 + 0.3 * j as f64 - 0.2 * w as f64;
                        }
                        a.matvec(&x)
                    })
                    .collect();
                let options = GreedyOptions {
                    max_sparsity: 6,
                    max_iterations: 200,
                    ..GreedyOptions::default()
                };
                let mut ws = SolverWorkspace::new();
                let serial: Vec<RecoveryResult> = ys
                    .iter()
                    .map(|y| {
                        let r = solve_iht_workspace(&a, y, &options, &mut NoopObserver, &mut ws)
                            .unwrap();
                        RecoveryResult {
                            signal: r.signal.clone(),
                            ..r
                        }
                    })
                    .collect();
                let y_refs: Vec<&[f64]> = ys.iter().map(|y| y.as_slice()).collect();
                let mut noops: Vec<NoopObserver> = (0..k).map(|_| NoopObserver).collect();
                let mut obs: Vec<&mut dyn IterationObserver> = noops
                    .iter_mut()
                    .map(|o| o as &mut dyn IterationObserver)
                    .collect();
                let mut out = Vec::new();
                solve_iht_batch_workspace(&a, &y_refs, &options, &mut obs, &mut ws, &mut out)
                    .unwrap();
                for (w, (s, b)) in serial.iter().zip(&out).enumerate() {
                    let b = b.as_ref().expect("filled");
                    assert_result_bits(s, b, &format!("iht/{tier} k={k} w={w}"));
                }
            }
        });
    }

    #[test]
    fn reweighted_batch_bit_identical_to_serial() {
        for_each_tier(|tier| {
            let k = 4;
            let fixture = PdhgFixture::new(64, 28, k, 47);
            let problems = fixture.problems(true, false);
            let options = ReweightedOptions {
                outer_iterations: 3,
                epsilon_rel: 0.05,
                inner: PdhgOptions {
                    max_iterations: 150,
                    tolerance: 1e-4,
                    ..PdhgOptions::default()
                },
            };
            let mut ws = SolverWorkspace::new();
            let serial: Vec<RecoveryResult> = problems
                .iter()
                .map(|p| {
                    let r = solve_reweighted_workspace(p, &options, &mut NoopObserver, &mut ws)
                        .unwrap();
                    RecoveryResult {
                        signal: r.signal.clone(),
                        ..r
                    }
                })
                .collect();
            let batch = BatchProblem::new(&problems).unwrap();
            let mut noops: Vec<NoopObserver> = (0..k).map(|_| NoopObserver).collect();
            let mut obs: Vec<&mut dyn IterationObserver> = noops
                .iter_mut()
                .map(|o| o as &mut dyn IterationObserver)
                .collect();
            let mut out = Vec::new();
            solve_reweighted_batch_workspace(&batch, &options, &mut obs, &mut ws, &mut out)
                .unwrap();
            for (w, (s, b)) in serial.iter().zip(&out).enumerate() {
                let b = b.as_ref().expect("filled");
                assert_result_bits(s, b, &format!("reweighted/{tier} w={w}"));
            }
        });
    }

    #[test]
    fn batch_solve_is_allocation_free_after_warmup() {
        // The pool reaches steady state: a second identical batch solve
        // acquires every buffer from the pool (pooled count returns to the
        // same level, and no pool growth occurs).
        let _guard = tier_lock();
        set_override(None);
        let k = 4;
        let fixture = PdhgFixture::new(64, 32, k, 91);
        let problems = fixture.problems(false, false);
        let options = PdhgOptions {
            max_iterations: 60,
            tolerance: 1e-4,
            ..PdhgOptions::default()
        };
        let batch = BatchProblem::new(&problems).unwrap();
        let mut ws = SolverWorkspace::new();
        let mut out = Vec::new();
        for _ in 0..2 {
            let mut noops: Vec<NoopObserver> = (0..k).map(|_| NoopObserver).collect();
            let mut obs: Vec<&mut dyn IterationObserver> = noops
                .iter_mut()
                .map(|o| o as &mut dyn IterationObserver)
                .collect();
            solve_pdhg_batch_workspace(&batch, &options, &mut obs, &mut ws, &mut out).unwrap();
            for r in out.iter_mut() {
                ws.release(r.take().unwrap().signal);
            }
        }
        let pooled = ws.pooled();
        let mut noops: Vec<NoopObserver> = (0..k).map(|_| NoopObserver).collect();
        let mut obs: Vec<&mut dyn IterationObserver> = noops
            .iter_mut()
            .map(|o| o as &mut dyn IterationObserver)
            .collect();
        solve_pdhg_batch_workspace(&batch, &options, &mut obs, &mut ws, &mut out).unwrap();
        for r in out.iter_mut() {
            ws.release(r.take().unwrap().signal);
        }
        assert_eq!(ws.pooled(), pooled, "pool grew after warm-up");
    }
}
